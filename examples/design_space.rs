//! Design space exploration: the §I claim that SpecHD's near-storage +
//! FPGA composition was "guided by design space exploration".
//!
//! Sweeps encoder/clustering-kernel counts, MSAS channel counts and the
//! P2P toggle on the PXD000561 workload, printing every feasible point
//! and the time/energy Pareto front.
//!
//! ```bash
//! cargo run --release --example design_space
//! ```

use spechd_fpga::dse::{explore, pareto_front, DseSweep};
use spechd_fpga::WorkloadShape;

fn main() {
    let shape = WorkloadShape::pxd000561();
    let sweep = DseSweep::default();
    let points = explore(&shape, &sweep);

    println!("== All design points (PXD000561) ==");
    println!(
        "{:>4} {:>6} {:>9} {:>6} {:>10} {:>12} {:>9}",
        "enc", "clust", "channels", "p2p", "total(s)", "energy(J)", "feasible"
    );
    for p in &points {
        println!(
            "{:>4} {:>6} {:>9} {:>6} {:>10.1} {:>12.0} {:>9}",
            p.encoders, p.cluster_kernels, p.msas_channels, p.p2p, p.total_s, p.total_j, p.feasible
        );
    }

    let front = pareto_front(&points);
    println!("\n== Pareto front (time vs energy, feasible only) ==");
    for p in &front {
        println!(
            "{} encoder(s) + {} clustering kernel(s), {} MSAS channels, p2p={} -> {:.1} s, {:.0} J",
            p.encoders, p.cluster_kernels, p.msas_channels, p.p2p, p.total_s, p.total_j
        );
    }

    // The paper's deployed point: 1 encoder + 5 clustering kernels, P2P on.
    let deployed = points
        .iter()
        .find(|p| p.encoders == 1 && p.cluster_kernels == 5 && p.msas_channels == 8 && p.p2p)
        .expect("deployed point is part of the sweep");
    println!(
        "\npaper's deployed configuration: {:.1} s / {:.0} J (feasible: {})",
        deployed.total_s, deployed.total_j, deployed.feasible
    );
}
