//! Quality sweep: regenerates a Fig.-10-style curve — clustered spectra
//! ratio versus incorrect clustering ratio — for SpecHD and the
//! comparator tools on one labelled synthetic dataset.
//!
//! ```bash
//! cargo run --release --example quality_sweep
//! ```

use spechd_baselines::{
    ClusteringTool, Falcon, Gleams, HyperSpecDbscan, HyperSpecHac, MaRaCluster, MsCrush,
};
use spechd_core::{ClusteringEval, SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

fn main() {
    let dataset = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 1_500,
        num_peptides: 300,
        seed: 11,
        ..SyntheticConfig::default()
    })
    .generate();
    println!("dataset: {}", dataset.stats());
    println!(
        "\n{:<22} {:>10} {:>14} {:>10} {:>13}",
        "tool", "threshold", "clustered(%)", "ICR(%)", "completeness"
    );

    // SpecHD across thresholds (the paper's tuning axis).
    for threshold in [0.20, 0.24, 0.28, 0.32, 0.36, 0.40] {
        let config = SpecHdConfig::builder()
            .distance_threshold_fraction(threshold)
            .build();
        let outcome = SpecHd::new(config).run(&dataset);
        let eval = outcome.evaluate(&dataset);
        print_row("SpecHD", &format!("{threshold:.2}"), &eval);
    }

    // Comparator tools at a few operating points each.
    for t in [0.24, 0.32, 0.40] {
        let tool = HyperSpecHac {
            threshold_fraction: t,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{t:.2}"), &eval);
    }
    for eps in [0.22, 0.28, 0.34] {
        let tool = HyperSpecDbscan {
            eps_fraction: eps,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{eps:.2}"), &eval);
    }
    for eps in [0.15, 0.25, 0.35] {
        let tool = Falcon {
            eps,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{eps:.2}"), &eval);
    }
    for sim in [0.85, 0.75, 0.65] {
        let tool = MsCrush {
            min_similarity: sim,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{sim:.2}"), &eval);
    }
    for thr in [0.005, 0.02, 0.08] {
        let tool = MaRaCluster {
            threshold: thr,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{thr:.3}"), &eval);
    }
    for thr in [0.45, 0.62, 0.80] {
        let tool = Gleams {
            threshold: thr,
            ..Default::default()
        };
        let eval = run(&tool, &dataset);
        print_row(tool.name(), &format!("{thr:.2}"), &eval);
    }
}

fn run(tool: &dyn ClusteringTool, dataset: &spechd_ms::SpectrumDataset) -> ClusteringEval {
    let assignment = tool.cluster(dataset);
    ClusteringEval::compute(assignment.labels(), dataset.labels())
}

fn print_row(name: &str, threshold: &str, eval: &ClusteringEval) {
    println!(
        "{:<22} {:>10} {:>14.1} {:>10.2} {:>13.3}",
        name,
        threshold,
        eval.clustered_ratio * 100.0,
        eval.incorrect_ratio * 100.0,
        eval.completeness
    );
}
