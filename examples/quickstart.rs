//! Quickstart: cluster a synthetic MS/MS run with SpecHD and inspect the
//! outcome.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

fn main() {
    // 1. A labelled synthetic dataset standing in for an MGF/mzML run
    //    (every spectrum knows which peptide generated it).
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 2_000,
        num_peptides: 400,
        seed: 42,
        ..SyntheticConfig::default()
    });
    let dataset = generator.generate();
    println!("dataset: {}", dataset.stats());

    // 2. The SpecHD pipeline with the paper's defaults: D=2048 ID-Level
    //    encoding, 1-Da precursor buckets, complete-linkage NN-chain HAC.
    let spechd = SpecHd::new(SpecHdConfig::default());
    let outcome = spechd.run(&dataset);

    // 3. What happened?
    let stats = outcome.stats();
    println!(
        "preprocess: {} -> {} spectra ({} peaks removed)",
        stats.preprocess.spectra_in, stats.preprocess.spectra_out, stats.preprocess.peaks_removed
    );
    println!(
        "buckets: {} (largest {}, mean {:.1})",
        stats.buckets.count, stats.buckets.max_size, stats.buckets.mean_size
    );
    println!(
        "clusters: {} over {} spectra ({} merges, {} distance comparisons)",
        outcome.assignment().num_clusters(),
        outcome.assignment().len(),
        stats.hac.merges,
        stats.hac.comparisons,
    );
    println!("compression: {}", outcome.compression());
    println!(
        "host timings: preprocess {:.3}s, encode {:.3}s, cluster {:.3}s",
        stats.preprocess_s, stats.encode_s, stats.cluster_s
    );

    // 4. Quality against ground truth.
    let eval = outcome.evaluate(&dataset);
    println!(
        "quality: clustered ratio {:.1}%, incorrect ratio {:.2}%, completeness {:.3}",
        eval.clustered_ratio * 100.0,
        eval.incorrect_ratio * 100.0,
        eval.completeness
    );

    // 5. Consensus spectra (medoids) represent clusters downstream.
    let first_consensus = outcome.consensus()[0];
    println!(
        "first consensus spectrum: {}",
        dataset.spectrum(first_consensus).title()
    );
}
