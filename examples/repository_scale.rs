//! Repository-scale projection: what the paper's headline numbers look
//! like through the analytic FPGA system model.
//!
//! Reproduces the "cluster a 131 GB human proteome dataset in just 5
//! minutes" claim (§I) and the per-stage breakdown for all five Table-I
//! datasets, plus the energy story of Fig. 9.
//!
//! ```bash
//! cargo run --release --example repository_scale
//! ```

use spechd_baselines::perf::ToolPerfModel;
use spechd_fpga::{SystemConfig, SystemModel, WorkloadShape};
use spechd_ms::profiles::TABLE1;

fn main() {
    let model = SystemModel::new(SystemConfig::default());

    println!("== SpecHD end-to-end projection (1 encoder + 5 clustering kernels) ==");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "prep(s)", "xfer(s)", "enc(s)", "clust(s)", "host(s)", "total(s)"
    );
    for (profile, shape) in TABLE1.iter().zip(WorkloadShape::table1()) {
        let t = model.end_to_end(&shape);
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            profile.pride_id,
            t.preprocess_s,
            t.transfer_s,
            t.encode_s,
            t.cluster_s,
            t.host_s,
            t.total_s
        );
    }

    let human = WorkloadShape::pxd000561();
    let t = model.end_to_end(&human);
    println!(
        "\nPXD000561 (131 GB, 21.1M spectra): {:.1} s end-to-end (paper: ~5 minutes)",
        t.total_s
    );
    println!(
        "standalone clustering: {:.1} s (paper Fig. 8: 80 s)",
        model.standalone_clustering_time(&human)
    );

    println!("\n== Speedups over comparison tools (PXD000561) ==");
    let spechd_e2e = t.total_s;
    let spechd_cluster = model.standalone_clustering_time(&human);
    for tool in ToolPerfModel::fig7_tools() {
        println!(
            "{:<18} end-to-end {:>8.0}s ({:>5.1}x)   clustering {:>8.0}s ({:>6.1}x)",
            tool.name,
            tool.end_to_end_s(&human),
            tool.end_to_end_s(&human) / spechd_e2e,
            tool.clustering_s(&human),
            tool.clustering_s(&human) / spechd_cluster,
        );
    }

    println!("\n== Energy (PXD000561) ==");
    let e = model.end_to_end_energy(&human);
    println!(
        "SpecHD: {:.0} J total (MSAS {:.0} J, FPGA {:.0} J, host {:.0} J)",
        e.total_j, e.msas_j, e.fpga_j, e.host_j
    );
    for tool in [
        ToolPerfModel::hyperspec_hac(),
        ToolPerfModel::hyperspec_dbscan(),
    ] {
        let tool_j = tool.end_to_end_energy_j(&human);
        println!(
            "{:<18} {:>10.0} J -> SpecHD is {:>5.1}x more energy-efficient",
            tool.name,
            tool_j,
            tool_j / e.total_j
        );
    }

    println!("\n== Feasibility ==");
    let problems = model.feasibility(&human);
    if problems.is_empty() {
        println!("configuration fits the Alveo U280 and the HBM working set");
    } else {
        for p in problems {
            println!("violation: {p}");
        }
    }
}
