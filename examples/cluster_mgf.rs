//! End-to-end file workflow: write an MGF run, read it back, cluster it
//! with SpecHD, and write the consensus spectra as a new MGF — the shape
//! of a real deployment where SpecHD sits between the instrument output
//! and the database search engine.
//!
//! ```bash
//! cargo run --release --example cluster_mgf [input.mgf]
//! ```
//!
//! Without an argument, a synthetic MGF is generated under the system
//! temp directory first.

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::formats::mgf;
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn Error>> {
    let tmp = std::env::temp_dir();
    let input_path = match std::env::args().nth(1) {
        Some(path) => path.into(),
        None => {
            // Generate a small run and persist it as MGF.
            let dataset = SyntheticGenerator::new(SyntheticConfig {
                num_spectra: 1_000,
                num_peptides: 200,
                seed: 7,
                ..SyntheticConfig::default()
            })
            .generate();
            let path = tmp.join("spechd_example_input.mgf");
            mgf::write(BufWriter::new(File::create(&path)?), dataset.spectra())?;
            println!("generated {}", path.display());
            path
        }
    };

    // Parse the MGF (titles, precursors, peaks).
    let spectra = mgf::read(BufReader::new(File::open(&input_path)?))?;
    println!(
        "parsed {} spectra from {}",
        spectra.len(),
        input_path.display()
    );
    let dataset = SpectrumDataset::from_spectra(spectra);

    // Cluster.
    let spechd = SpecHd::new(SpecHdConfig::default());
    let outcome = spechd.run(&dataset);
    println!(
        "{} clusters, clustered ratio {:.1}%, {} consensus spectra",
        outcome.assignment().num_clusters(),
        outcome.assignment().clustered_ratio() * 100.0,
        outcome.consensus().len()
    );

    // Write consensus (medoid) spectra of all non-singleton clusters: the
    // reduced peak list a search engine would consume.
    let sizes = outcome.assignment().sizes();
    let consensus_spectra: Vec<_> = outcome
        .consensus()
        .iter()
        .enumerate()
        .filter(|&(cluster, _)| sizes[cluster] > 1)
        .map(|(_, &original_index)| dataset.spectrum(original_index).clone())
        .collect();
    let out_path = tmp.join("spechd_example_consensus.mgf");
    mgf::write(BufWriter::new(File::create(&out_path)?), &consensus_spectra)?;
    println!(
        "wrote {} consensus spectra to {} ({}x search reduction over clustered spectra)",
        consensus_spectra.len(),
        out_path.display(),
        if consensus_spectra.is_empty() {
            0
        } else {
            sizes.iter().filter(|&&s| s > 1).sum::<usize>() / consensus_spectra.len().max(1)
        }
    );
    Ok(())
}
