//! # SpecHD — the full stack, one crate.
//!
//! Umbrella crate for the SpecHD reproduction (DATE 2024). It re-exports
//! every workspace layer under a stable module name and lifts the handful
//! of types a quickstart needs to the root, so downstream code can depend
//! on `spechd` alone:
//!
//! | Module | Crate | Layer |
//! |---|---|---|
//! | [`rng`] | `spechd-rng` | deterministic randomness |
//! | [`ms`] | `spechd-ms` | spectra, formats, synthetic data |
//! | [`preprocess`] | `spechd-preprocess` | filtering, top-k, bucketing |
//! | [`hdc`] | `spechd-hdc` | binary hypervector core |
//! | [`cluster`] | `spechd-cluster` | NN-chain HAC, DBSCAN, medoids |
//! | [`metrics`] | `spechd-metrics` | clustering quality measures |
//! | [`fpga`] | `spechd-fpga` | FPGA / near-storage system model |
//! | [`search`] | `spechd-search` | database search + FDR |
//! | [`baselines`] | `spechd-baselines` | comparator tools |
//! | [`store`] | `spechd-store` | persistent versioned cluster store |
//! | [`core`] | `spechd-core` | the end-to-end pipeline |
//!
//! # Quickstart
//!
//! ```
//! use spechd::ms::synth::{SyntheticConfig, SyntheticGenerator};
//! use spechd::{SpecHd, SpecHdConfig};
//!
//! let dataset = SyntheticGenerator::new(SyntheticConfig {
//!     num_spectra: 300,
//!     num_peptides: 60,
//!     seed: 7,
//!     ..SyntheticConfig::default()
//! })
//! .generate();
//!
//! let outcome = SpecHd::new(SpecHdConfig::default()).run(&dataset);
//! let eval = outcome.evaluate(&dataset);
//! assert!(eval.clustered_ratio > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spechd_baselines as baselines;
pub use spechd_cluster as cluster;
pub use spechd_core as core;
pub use spechd_fpga as fpga;
pub use spechd_hdc as hdc;
pub use spechd_metrics as metrics;
pub use spechd_ms as ms;
pub use spechd_preprocess as preprocess;
pub use spechd_rng as rng;
pub use spechd_search as search;
pub use spechd_store as store;

pub use spechd_core::{
    ClusterStore, ConfigError, SpecHd, SpecHdConfig, SpecHdConfigBuilder, SpecHdError,
    SpecHdOutcome, StoreError, StreamConfig, StreamOutcome,
};
