//! PR 7 equivalence suite: the packed search engine — standard and
//! open-modification mode — must be **bit-identical** to the scalar
//! per-spectrum reference scorer at every dimensionality, library
//! size, and thread count, including tie-breaks. A second layer pins
//! the served path: searching through `spechd-server` over TCP must
//! return exactly the hits of a local library search over the same
//! entries.

use spechd_hdc::BinaryHypervector;
use spechd_rng::{Rng, Xoshiro256StarStar};
use spechd_search::{
    scalar_search_window, HvLibrary, HvLibraryBuilder, PackedSearchConfig, PackedSearchEngine,
};
use spechd_server::{LibraryEntryWire, QueryWire, SearchClient, Server, ServerConfig};

fn build_library(n: usize, dim: usize, seed: u64) -> HvLibrary {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut b = HvLibraryBuilder::new(dim);
    for i in 0..n {
        let hv = BinaryHypervector::random(dim, &mut rng);
        let mass = rng.range_f64(500.0, 3500.0);
        // Alternate targets and shuffled decoys so hits carry both
        // provenances.
        if i % 3 == 0 {
            b.push_with_shuffled_decoy(&hv, mass, 2, &format!("p{i}"), seed.wrapping_add(i as u64));
        } else {
            b.push_hypervector(&hv, mass, 2, format!("p{i}"), false);
        }
    }
    b.build()
}

fn queries(n: usize, dim: usize, seed: u64) -> Vec<(BinaryHypervector, f64)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                BinaryHypervector::random(dim, &mut rng),
                rng.range_f64(500.0, 3500.0),
            )
        })
        .collect()
}

/// The tentpole guarantee: packed standard + OMS search match the
/// scalar oracle — same hit ids, same u16 distances, same tie-break —
/// across dims {63, 64, 2048} × library sizes {0, 1, 257} × 1/2/4
/// threads.
#[test]
fn packed_search_matches_scalar_reference_everywhere() {
    for &dim in &[63usize, 64, 2048] {
        for &size in &[0usize, 1, 257] {
            let lib = build_library(size, dim, 0x5EED ^ (dim * 1000 + size) as u64);
            let qs = queries(8, dim, 0xFACE ^ dim as u64);
            for &threads in &[1usize, 2, 4] {
                let engine = PackedSearchEngine::new(PackedSearchConfig {
                    precursor_tol_da: 50.0, // wide enough to catch candidates
                    open_window_da: 800.0,
                    top_k: 5,
                    batch_rows: 13, // force multi-batch sweeps over the window
                    threads,
                });
                for (qi, (q, mass)) in qs.iter().enumerate() {
                    let std_hits = engine.search_standard(&lib, q, *mass, qi);
                    let oms_hits = engine.search_open(&lib, q, *mass, qi);
                    assert_eq!(
                        std_hits,
                        scalar_search_window(&lib, q, *mass, qi, 50.0, 5),
                        "standard mismatch: dim {dim} size {size} threads {threads} query {qi}"
                    );
                    assert_eq!(
                        oms_hits,
                        scalar_search_window(&lib, q, *mass, qi, 800.0, 5),
                        "OMS mismatch: dim {dim} size {size} threads {threads} query {qi}"
                    );
                }
            }
        }
    }
}

/// Tie-breaks are part of the contract: duplicate rows at one mass
/// must come back in ascending library-index order from packed and
/// scalar alike, at every thread count.
#[test]
fn tie_breaks_are_deterministic_across_thread_counts() {
    let dim = 192;
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let hv = BinaryHypervector::random(dim, &mut rng);
    let mut b = HvLibraryBuilder::new(dim);
    for i in 0..12 {
        // Three distinct rows, each duplicated four times, same mass.
        let mut row = hv.clone();
        row.flip_random_bits(
            (i % 3) * 7,
            &mut Xoshiro256StarStar::seed_from_u64(i as u64 % 3),
        );
        b.push_hypervector(&row, 1000.0, 2, format!("d{i}"), false);
    }
    let lib = b.build();
    let mut reference = None;
    for &threads in &[1usize, 2, 4] {
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            top_k: 7,
            batch_rows: 5,
            threads,
            ..PackedSearchConfig::default()
        });
        let hits = engine.search_standard(&lib, &hv, 1000.0, 0);
        assert_eq!(
            hits,
            scalar_search_window(&lib, &hv, 1000.0, 0, 0.05, 7),
            "threads {threads}"
        );
        assert!(
            hits.windows(2)
                .all(|w| (w[0].distance, w[0].library_index) < (w[1].distance, w[1].library_index)),
            "strict (distance, index) order at threads {threads}"
        );
        match &reference {
            None => reference = Some(hits),
            Some(r) => assert_eq!(&hits, r, "thread count changed results"),
        }
    }
}

fn wire_entries(lib: &HvLibrary) -> Vec<LibraryEntryWire> {
    (0..lib.len())
        .map(|i| LibraryEntryWire {
            mass: lib.mass(i),
            charge: lib.charge(i),
            is_decoy: lib.is_decoy(i),
            id: lib.id(i).to_string(),
            words: lib.pack().row(i).to_vec(),
        })
        .collect()
}

/// The served path — library loaded over TCP, queries scored by the
/// server — must return exactly the hits of a local
/// `PackedSearchEngine` run over the same entries, for both a narrow
/// (standard) and a wide (OMS) window.
#[test]
fn served_search_is_bit_identical_to_library_path() {
    let dim = 256;
    let lib = build_library(120, dim, 0xBEEF);
    let qs = queries(17, dim, 0xCAFE);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: std::time::Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let running = server.spawn().expect("spawn");

    let mut client = SearchClient::connect(running.addr(), 77, dim as u32).expect("connect");
    let stats = client.load(&wire_entries(&lib)).expect("load");
    assert_eq!(stats.entries as usize, lib.len());
    assert_eq!(stats.targets as usize, lib.target_count());
    assert_eq!(stats.decoys as usize, lib.decoy_count());
    assert_eq!(stats.sealed, 0);

    let wire_queries: Vec<QueryWire> = qs
        .iter()
        .map(|(hv, mass)| QueryWire {
            mass: *mass,
            words: hv.words().to_vec(),
        })
        .collect();

    for &(window_da, top_k) in &[(0.5f64, 3u32), (400.0, 5)] {
        let (served, stats) = client
            .search(&wire_queries, window_da, top_k)
            .expect("search");
        assert_eq!(stats.sealed, 1);
        assert_eq!(served.len(), qs.len());
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            top_k: top_k as usize,
            ..PackedSearchConfig::default()
        });
        for (qi, ((hv, mass), result)) in qs.iter().zip(&served).enumerate() {
            let local = engine.search_window(&lib, hv, *mass, qi, window_da);
            assert_eq!(
                result.hits.len(),
                local.len(),
                "hit count: window {window_da} query {qi}"
            );
            for (h, p) in result.hits.iter().zip(&local) {
                assert_eq!(h.library_index, p.library_index as u64, "query {qi}");
                assert_eq!(h.distance, p.distance, "query {qi}");
                assert_eq!(h.mass_delta, p.mass_delta, "query {qi}");
                assert_eq!(h.is_decoy, p.is_decoy, "query {qi}");
                assert_eq!(h.id, lib.id(p.library_index), "query {qi}");
            }
        }
    }

    // Sealed: further loads must be rejected server-side.
    assert!(client.load(&wire_entries(&lib)).is_err());
    running.shutdown();
}

/// Two participants share one search job: entries loaded by either are
/// visible to both, and query indices are job-global.
#[test]
fn search_job_is_shared_between_participants() {
    let dim = 64;
    let lib = build_library(30, dim, 0xABBA);
    let entries = wire_entries(&lib);
    let (first, second) = entries.split_at(entries.len() / 2);

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let running = server.spawn().expect("spawn");

    let mut a = SearchClient::connect(running.addr(), 5, dim as u32).expect("connect a");
    let mut b = SearchClient::connect(running.addr(), 5, dim as u32).expect("connect b");
    a.load(first).expect("load a");
    let stats = b.load(second).expect("load b");
    assert_eq!(stats.entries as usize, lib.len(), "loads are pooled");
    assert_eq!(stats.participants, 2);

    let q = QueryWire {
        mass: lib.mass(0),
        words: lib.pack().row(0).to_vec(),
    };
    let (hits_a, _) = a
        .search(std::slice::from_ref(&q), 1000.0, 4)
        .expect("search a");
    let (hits_b, _) = b
        .search(std::slice::from_ref(&q), 1000.0, 4)
        .expect("search b");
    assert_eq!(hits_a[0].hits, hits_b[0].hits, "same job, same library");
    assert_eq!(hits_a[0].query_index, 0);
    assert_eq!(hits_b[0].query_index, 1, "query indices are job-global");

    // A third participant with a different dim is turned away.
    assert!(SearchClient::connect(running.addr(), 5, 128).is_err());
    running.shutdown();
}
