//! Downstream database-search integration: the Fig. 11 peptide-overlap
//! experiment and the consensus-search speedup claim.

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_search::{filter_at_fdr, PeptideDatabase, SearchConfig, SearchEngine};

#[test]
fn fig11_overlap_shape() {
    let (generator, dataset) = spechd_bench::hard_dataset(1_500, 401);
    let outcomes = spechd_bench::fig11_overlap(&generator, &dataset);
    assert_eq!(outcomes.len(), 2, "charges 2+ and 3+");
    for o in &outcomes {
        let a = o.venn.total_a();
        let b = o.venn.total_b();
        let c = o.venn.total_c();
        assert!(a > 0 && b > 0 && c > 0, "every tool identifies peptides");
        // The three tools must substantially agree: the triple overlap is
        // the dominant region (Fig. 11's visual message).
        assert!(
            o.venn.abc * 2 > o.venn.union(),
            "charge {}: triple overlap {} of union {}",
            o.charge,
            o.venn.abc,
            o.venn.union()
        );
        // SpecHD within 25% of either competitor (paper: within ~7%).
        assert!(
            (a as f64 - b as f64).abs() / b as f64 <= 0.25,
            "charge {}: SpecHD {a} vs GLEAMS {b}",
            o.charge
        );
        assert!(
            (a as f64 - c as f64).abs() / c as f64 <= 0.25,
            "charge {}: SpecHD {a} vs HyperSpec {c}",
            o.charge
        );
    }
}

#[test]
fn consensus_search_reduces_work_with_small_id_loss() {
    // §IV-E1: "1.5-2x speedup in spectra searching by skipping redundant
    // searches for similar spectra". Searching consensus spectra only must
    // cut the searched-spectrum count substantially while recovering most
    // peptides.
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 1_200,
        num_peptides: 150,
        noise_spectrum_fraction: 0.10,
        seed: 402,
        ..SyntheticConfig::default()
    });
    let dataset = generator.generate();
    let engine = SearchEngine::new(
        PeptideDatabase::build(generator.peptide_library()),
        SearchConfig::default(),
    );

    // Full search.
    let full_psms: Vec<_> = engine
        .search_dataset(dataset.spectra())
        .into_iter()
        .flatten()
        .collect();
    let full_accepted = filter_at_fdr(&full_psms, 0.01);
    let full_peptides: std::collections::BTreeSet<&str> = full_accepted
        .iter()
        .map(|&i| full_psms[i].peptide.sequence())
        .collect();

    // Consensus-only search.
    let outcome = SpecHd::new(SpecHdConfig::default()).run(&dataset);
    let consensus: Vec<_> = outcome
        .consensus()
        .iter()
        .map(|&i| dataset.spectrum(i).clone())
        .collect();
    let searched_reduction = dataset.len() as f64 / consensus.len() as f64;
    assert!(
        searched_reduction > 1.4,
        "consensus search should skip >=1.4x spectra, got {searched_reduction:.2}"
    );
    let psms: Vec<_> = engine
        .search_dataset(&consensus)
        .into_iter()
        .flatten()
        .collect();
    let accepted = filter_at_fdr(&psms, 0.01);
    let peptides: std::collections::BTreeSet<&str> = accepted
        .iter()
        .map(|&i| psms[i].peptide.sequence())
        .collect();
    let recovered = peptides.intersection(&full_peptides).count();
    assert!(
        recovered * 10 >= full_peptides.len() * 8,
        "consensus search should recover >=80% of peptides ({recovered}/{})",
        full_peptides.len()
    );
}

#[test]
fn fdr_control_is_effective_end_to_end() {
    // With decoys present, accepted identifications at 1% FDR should be
    // overwhelmingly correct against ground truth.
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 600,
        num_peptides: 120,
        noise_spectrum_fraction: 0.3,
        hidden_label_fraction: 0.0,
        seed: 403,
        ..SyntheticConfig::default()
    });
    let dataset = generator.generate();
    let engine = SearchEngine::new(
        PeptideDatabase::build(generator.peptide_library()),
        SearchConfig::default(),
    );
    let psms: Vec<_> = engine
        .search_dataset(dataset.spectra())
        .into_iter()
        .flatten()
        .collect();
    let accepted = filter_at_fdr(&psms, 0.01);
    assert!(!accepted.is_empty());
    let mut correct = 0usize;
    let mut wrong = 0usize;
    for &i in &accepted {
        let psm = &psms[i];
        match dataset.labels()[psm.spectrum_index] {
            Some(label)
                if generator.peptide_library()[label as usize].sequence()
                    == psm.peptide.sequence() =>
            {
                correct += 1
            }
            Some(_) => wrong += 1,
            None => {} // noise spectrum identified: counted by FDR itself
        }
    }
    let wrong_rate = wrong as f64 / (correct + wrong).max(1) as f64;
    assert!(
        wrong_rate < 0.05,
        "wrong-peptide rate too high: {wrong}/{correct}"
    );
}
