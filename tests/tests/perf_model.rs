//! Calibration gates for the performance/energy models: every headline
//! number of the paper must be reproduced by the analytic system model
//! within a stated tolerance.

use spechd_baselines::perf::ToolPerfModel;
use spechd_fpga::{MsasModel, SystemConfig, SystemModel, WorkloadShape};
use spechd_ms::profiles::TABLE1;

#[test]
fn table1_reproduced_within_8_percent() {
    let msas = MsasModel::default();
    for p in &TABLE1 {
        let t = msas.preprocess_time(p.bytes);
        let e = msas.preprocess_energy(p.bytes);
        assert!(
            (t - p.paper_pp_time_s).abs() / p.paper_pp_time_s < 0.08,
            "{}: time {t:.2} vs paper {}",
            p.pride_id,
            p.paper_pp_time_s
        );
        assert!(
            (e - p.paper_pp_energy_j).abs() / p.paper_pp_energy_j < 0.10,
            "{}: energy {e:.1} vs paper {}",
            p.pride_id,
            p.paper_pp_energy_j
        );
    }
}

#[test]
fn five_minute_headline_claim() {
    // §I: 25M spectra / 131 GB "in just 5 minutes".
    let model = SystemModel::new(SystemConfig::default());
    let t = model.end_to_end(&WorkloadShape::pxd000561());
    assert!(
        (200.0..400.0).contains(&t.total_s),
        "end-to-end {:.0}s should be about five minutes",
        t.total_s
    );
}

#[test]
fn fig8_standalone_clustering_ratios() {
    let model = SystemModel::new(SystemConfig::default());
    let shape = WorkloadShape::pxd000561();
    let spechd = model.standalone_clustering_time(&shape);
    assert!(
        (60.0..100.0).contains(&spechd),
        "SpecHD clustering {spechd:.0}s (paper 80s)"
    );
    let hyperspec = ToolPerfModel::hyperspec_hac().clustering_s(&shape) / spechd;
    assert!(
        (10.0..16.0).contains(&hyperspec),
        "{hyperspec:.1}x (paper 12.3x)"
    );
    let gleams = ToolPerfModel::gleams().clustering_s(&shape) / spechd;
    assert!((11.0..18.0).contains(&gleams), "{gleams:.1}x (paper 14.3x)");
    let falcon = ToolPerfModel::falcon().clustering_s(&shape) / spechd;
    assert!(
        (80.0..130.0).contains(&falcon),
        "{falcon:.1}x (paper ~100x)"
    );
}

#[test]
fn fig7_speedups_grow_with_scale_and_bracket_paper_range() {
    let model = SystemModel::new(SystemConfig::default());
    let shapes = WorkloadShape::table1();
    let gleams = ToolPerfModel::gleams();
    let first = gleams.end_to_end_s(&shapes[0]) / model.end_to_end(&shapes[0]).total_s;
    let last = gleams.end_to_end_s(&shapes[4]) / model.end_to_end(&shapes[4]).total_s;
    // Paper: 31x (PXD001511) to 54x (PXD000561), growing with size.
    assert!(last > first, "speedup must grow with dataset scale");
    assert!(
        (25.0..45.0).contains(&first),
        "small-dataset speedup {first:.1}"
    );
    assert!(
        (45.0..60.0).contains(&last),
        "flagship speedup {last:.1} (paper 54x)"
    );
    // HyperSpec-HAC: ~6x on the flagship.
    let hs = ToolPerfModel::hyperspec_hac().end_to_end_s(&shapes[4])
        / model.end_to_end(&shapes[4]).total_s;
    assert!(
        (4.5..8.0).contains(&hs),
        "HyperSpec speedup {hs:.1} (paper 6x)"
    );
}

#[test]
fn fig9_energy_efficiency_ratios() {
    let model = SystemModel::new(SystemConfig::default());
    let shape = WorkloadShape::pxd000561();
    let e2e = model.end_to_end_energy(&shape).total_j;
    let cluster = model.clustering_energy(&shape);
    let hac = ToolPerfModel::hyperspec_hac();
    let db = ToolPerfModel::hyperspec_dbscan();
    // Paper: e2e 31x/14x, clustering 40x/12x (HAC/DBSCAN).
    let r_e2e_hac = hac.end_to_end_energy_j(&shape) / e2e;
    let r_e2e_db = db.end_to_end_energy_j(&shape) / e2e;
    let r_cl_hac = hac.clustering_energy_j(&shape) / cluster;
    let r_cl_db = db.clustering_energy_j(&shape) / cluster;
    assert!(
        (18.0..40.0).contains(&r_e2e_hac),
        "e2e HAC {r_e2e_hac:.1} (paper 31x)"
    );
    assert!(
        (10.0..20.0).contains(&r_e2e_db),
        "e2e DBSCAN {r_e2e_db:.1} (paper 14x)"
    );
    assert!(
        (25.0..50.0).contains(&r_cl_hac),
        "cluster HAC {r_cl_hac:.1} (paper 40x)"
    );
    assert!(
        (8.0..16.0).contains(&r_cl_db),
        "cluster DBSCAN {r_cl_db:.1} (paper 12x)"
    );
}

#[test]
fn compression_factors_match_fig6b() {
    // 24x-108x across the five datasets at D=2048.
    let factors: Vec<f64> = TABLE1.iter().map(|p| p.compression_factor(2048)).collect();
    let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = factors.iter().cloned().fold(0.0, f64::max);
    assert!((15.0..30.0).contains(&min), "min {min:.0} (paper 24x)");
    assert!((80.0..115.0).contains(&max), "max {max:.0} (paper 108x)");
}

#[test]
fn hbm_holds_flagship_hypervectors() {
    // The architectural point of §II-B: HVs of the largest dataset fit
    // on-device, unlike raw spectra on a 24 GB GPU.
    let model = SystemModel::new(SystemConfig::default());
    assert!(model.feasibility(&WorkloadShape::pxd000561()).is_empty());
}

#[test]
fn dse_prefers_p2p_and_multiple_kernels() {
    let points = spechd_fpga::dse::explore(
        &WorkloadShape::pxd000561(),
        &spechd_fpga::dse::DseSweep::default(),
    );
    let front = spechd_fpga::dse::pareto_front(&points);
    assert!(!front.is_empty());
    // The fastest Pareto point uses P2P and more than one clustering kernel.
    let fastest = &front[0];
    assert!(fastest.p2p, "P2P should be on the fast end of the front");
    assert!(fastest.cluster_kernels > 1);
}
