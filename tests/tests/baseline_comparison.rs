//! Cross-tool quality comparisons: the Fig. 10 orderings the paper
//! reports, checked on the hard labelled dataset.

use spechd_baselines::{
    ClusteringTool, Falcon, GreedyCascade, HyperSpecDbscan, HyperSpecHac, MsCrush,
};
use spechd_core::Linkage;
use spechd_metrics::ClusteringEval;

/// Quality score used for tool ranking at matched settings: reward
/// clustering, punish mistakes heavily (the paper operates at 1% ICR).
fn score(eval: &ClusteringEval) -> f64 {
    eval.clustered_ratio - 5.0 * eval.incorrect_ratio
}

#[test]
fn spechd_beats_the_lsh_family() {
    // Fig. 10: SpecHD "outperforms several well-regarded tools such as
    // msCRUSH, Falcon, MSCluster, and spectra-cluster". Every tool gets a
    // sweep over its own knob; the best operating points are compared.
    let (_, ds) = spechd_bench::hard_dataset(1_200, 301);

    let best = |evals: Vec<ClusteringEval>| -> f64 {
        evals.iter().map(score).fold(f64::NEG_INFINITY, f64::max)
    };
    let spechd_score = best(
        [0.20, 0.24, 0.28, 0.32, 0.36]
            .iter()
            .map(|&t| {
                let outcome = spechd_core::SpecHd::new(
                    spechd_core::SpecHdConfig::builder()
                        .distance_threshold_fraction(t)
                        .build(),
                )
                .run(&ds);
                outcome.evaluate(&ds)
            })
            .collect(),
    );
    let eval_of =
        |a: &spechd_cluster::ClusterAssignment| ClusteringEval::compute(a.labels(), ds.labels());
    let mscrush = best(
        [0.92, 0.86, 0.80, 0.74]
            .iter()
            .map(|&s| {
                eval_of(
                    &MsCrush {
                        min_similarity: s,
                        ..Default::default()
                    }
                    .cluster(&ds),
                )
            })
            .collect(),
    );
    let falcon = best(
        [0.08, 0.12, 0.16, 0.20]
            .iter()
            .map(|&e| {
                eval_of(
                    &Falcon {
                        eps: e,
                        ..Default::default()
                    }
                    .cluster(&ds),
                )
            })
            .collect(),
    );
    let cascade = best(vec![
        eval_of(&GreedyCascade::spectra_cluster().cluster(&ds)),
        eval_of(&GreedyCascade::mscluster().cluster(&ds)),
    ]);

    for (name, other) in [
        ("msCRUSH", mscrush),
        ("Falcon", falcon),
        ("cascade", cascade),
    ] {
        assert!(
            spechd_score > other - 0.02,
            "SpecHD ({spechd_score:.3}) should not lose to {name} ({other:.3})"
        );
    }
}

#[test]
fn hyperspec_hac_beats_its_dbscan_flavour() {
    // §IV-D: DBSCAN is faster but "lagged in clustering quality".
    let (_, ds) = spechd_bench::hard_dataset(1_000, 302);
    let hac = HyperSpecHac::default().cluster(&ds);
    let db = HyperSpecDbscan::default().cluster(&ds);
    let e_hac = ClusteringEval::compute(hac.labels(), ds.labels());
    let e_db = ClusteringEval::compute(db.labels(), ds.labels());
    assert!(
        score(&e_hac) >= score(&e_db) - 0.02,
        "HAC {:.3} vs DBSCAN {:.3}",
        score(&e_hac),
        score(&e_db)
    );
}

#[test]
fn spechd_competitive_with_hyperspec() {
    // The two HDC tools should land within a few points of each other —
    // Fig. 10 has them nearly overlapping (48% vs 45% at 1% ICR).
    let (_, ds) = spechd_bench::hard_dataset(1_000, 303);
    let (_, spechd) = spechd_bench::tune_spechd_threshold(&ds, Linkage::Complete, 0.03);
    let hs = HyperSpecHac::default().cluster(&ds);
    let e_hs = ClusteringEval::compute(hs.labels(), ds.labels());
    assert!(
        (score(&spechd) - score(&e_hs)).abs() < 0.25,
        "SpecHD {:.3} vs HyperSpec {:.3} should be comparable",
        score(&spechd),
        score(&e_hs)
    );
}

#[test]
fn all_tools_degrade_gracefully_on_pure_noise() {
    // On an all-noise dataset no tool should hallucinate large clusters.
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
    let ds = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 400,
        num_peptides: 10,
        noise_spectrum_fraction: 1.0,
        seed: 304,
        ..SyntheticConfig::default()
    })
    .generate();
    let tools: Vec<Box<dyn ClusteringTool>> = vec![
        Box::new(HyperSpecHac::default()),
        Box::new(Falcon::default()),
        Box::new(MsCrush::default()),
    ];
    for tool in &tools {
        let a = tool.cluster(&ds);
        assert!(
            a.clustered_ratio() < 0.25,
            "{} clusters noise aggressively ({:.3})",
            tool.name(),
            a.clustered_ratio()
        );
    }
    let outcome = spechd_core::SpecHd::new(spechd_core::SpecHdConfig::default()).run(&ds);
    assert!(outcome.assignment_full(ds.len()).clustered_ratio() < 0.25);
}
