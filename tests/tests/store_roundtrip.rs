//! Cross-process persistence contract of `spechd-store`: a store written
//! by one process reloads bit-identically in another (simulated here by
//! going through the filesystem and fresh deserialization), and every
//! class of file damage surfaces as a specific typed [`StoreError`] —
//! never a panic, never partial state.

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use spechd_store::{ClusterStore, StoreError};

fn dataset(n: usize, seed: u64) -> SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 5,
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

/// A store populated through the real incremental pipeline, so the bytes
/// under test carry genuine medoid rows and memberships.
fn populated_store() -> (SpecHd, ClusterStore) {
    let engine = SpecHd::new(SpecHdConfig::default());
    let mut store = engine.new_store().unwrap();
    engine
        .run_incremental(&mut store, &dataset(250, 81))
        .unwrap();
    (engine, store)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("spechd-store-{}-{name}.shpk", std::process::id()))
}

#[test]
fn file_round_trip_is_bit_identical() {
    let (_, store) = populated_store();
    assert!(store.num_buckets() > 0 && store.num_clusters() > 0);

    let path = temp_path("roundtrip");
    store.save(&path).unwrap();
    let reloaded = ClusterStore::load(&path).unwrap();
    assert_eq!(reloaded, store, "reload must reproduce the exact store");

    // Re-saving the reloaded store writes the exact same bytes — the
    // format is canonical, so persistence is idempotent across sessions.
    let original_bytes = std::fs::read(&path).unwrap();
    assert_eq!(reloaded.to_bytes(), original_bytes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_store_continues_clustering_identically() {
    let (engine, mut live) = populated_store();
    let mut reloaded = ClusterStore::from_bytes(&live.to_bytes()).unwrap();

    let next = dataset(120, 82);
    let from_live = engine.run_incremental(&mut live, &next).unwrap();
    let from_reloaded = engine.run_incremental(&mut reloaded, &next).unwrap();
    assert_eq!(from_live.assignment(), from_reloaded.assignment());
    assert_eq!(from_live.consensus(), from_reloaded.consensus());
    assert_eq!(live, reloaded, "both sessions end in the same state");
}

#[test]
fn missing_file_is_io_error_naming_the_path() {
    let path = temp_path("never-written");
    let err = ClusterStore::load(&path).unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }), "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains(path.to_string_lossy().as_ref()),
        "i/o error must name the file involved: {msg}"
    );
}

#[test]
fn truncation_at_every_prefix_is_typed_and_panic_free() {
    let (_, store) = populated_store();
    let bytes = store.to_bytes();
    // Every strict prefix must fail with a *typed* error. Short prefixes
    // report Truncated; prefixes that still cover the whole header +
    // table report the mismatch between declared and actual length.
    for len in 0..bytes.len() {
        let err = ClusterStore::from_bytes(&bytes[..len]).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "prefix {len}: {err}"
        );
    }
}

#[test]
fn bad_magic_is_reported_first() {
    let (_, store) = populated_store();
    let mut bytes = store.to_bytes();
    bytes[..4].copy_from_slice(b"GIF8");
    let err = ClusterStore::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, StoreError::BadMagic { found } if &found == b"GIF8"),
        "{err}"
    );
}

#[test]
fn future_version_is_refused_with_the_version() {
    let (_, store) = populated_store();
    let mut bytes = store.to_bytes();
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    let err = ClusterStore::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, StoreError::UnsupportedVersion { found: 7 }),
        "{err}"
    );
}

#[test]
fn dim_stride_mismatch_is_refused() {
    let (_, store) = populated_store();
    let mut bytes = store.to_bytes();
    // dim 2048 → stride 32; claim stride 33.
    bytes[12..16].copy_from_slice(&33u32.to_le_bytes());
    let err = ClusterStore::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::StrideMismatch {
                dim: 2048,
                stride: 33
            }
        ),
        "{err}"
    );
}

#[test]
fn corruption_and_trailing_bytes_are_caught() {
    let (_, store) = populated_store();
    let bytes = store.to_bytes();

    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(matches!(
        ClusterStore::from_bytes(&flipped).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));

    let mut longer = bytes;
    longer.extend_from_slice(b"junk");
    assert!(matches!(
        ClusterStore::from_bytes(&longer).unwrap_err(),
        StoreError::TrailingBytes { .. }
    ));
}

#[test]
fn config_skew_is_refused_before_any_clustering() {
    let (_, store) = populated_store();
    let path = temp_path("skew");
    store.save(&path).unwrap();
    let reloaded = ClusterStore::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // An engine with any result-affecting knob changed must refuse the
    // store up front rather than silently mixing incomparable
    // hypervectors.
    let other = SpecHd::new(
        SpecHdConfig::builder()
            .distance_threshold_fraction(0.25)
            .build(),
    );
    let mut reloaded = reloaded;
    let err = other
        .run_incremental(&mut reloaded, &dataset(20, 83))
        .unwrap_err();
    assert!(
        matches!(
            err,
            spechd_core::SpecHdError::Store(StoreError::ConfigMismatch { .. })
        ),
        "{err}"
    );
    assert_eq!(
        reloaded, store,
        "a refused session must leave the store untouched"
    );
}

#[test]
fn errors_are_std_error_with_sources() {
    // The typed errors compose into `Box<dyn Error>` call chains.
    let err: Box<dyn std::error::Error> =
        Box::new(ClusterStore::from_bytes(&[0u8; 3]).unwrap_err());
    assert!(err.to_string().contains("truncated"));
}
