//! File-format round trips feeding the full pipeline: the MS data path of
//! Fig. 1 (instrument formats → preprocessing → clustering).

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::formats::{mgf, ms2, mzml};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;

fn dataset(n: usize, seed: u64) -> SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 5,
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

#[test]
fn mgf_roundtrip_preserves_clustering() {
    let ds = dataset(300, 201);
    let text = mgf::to_string(ds.spectra());
    let parsed = mgf::read(text.as_bytes()).unwrap();
    assert_eq!(parsed.len(), ds.len());
    let ds2 = SpectrumDataset::from_spectra(parsed);

    let engine = SpecHd::new(SpecHdConfig::default());
    let a = engine.run(&ds);
    let b = engine.run(&ds2);
    // MGF stores at reduced float precision; the partition itself must
    // survive the round trip.
    assert_eq!(a.assignment(), b.assignment());
}

#[test]
fn mzml_roundtrip_is_bit_exact_and_cluster_identical() {
    let ds = dataset(200, 202);
    let xml = mzml::to_string(ds.spectra());
    let parsed = mzml::read_str(&xml).unwrap();
    assert_eq!(parsed.len(), ds.len());
    // mzML binary arrays are exact: every peak must match bit-for-bit.
    for (orig, back) in ds.spectra().iter().zip(&parsed) {
        assert_eq!(orig.peaks(), back.peaks(), "{}", orig.title());
        assert_eq!(orig.precursor().charge(), back.precursor().charge());
    }
    let ds2 = SpectrumDataset::from_spectra(parsed);
    let engine = SpecHd::new(SpecHdConfig::default());
    assert_eq!(engine.run(&ds).assignment(), engine.run(&ds2).assignment());
}

#[test]
fn ms2_roundtrip_preserves_clustering() {
    let ds = dataset(200, 203);
    let text = ms2::to_string(ds.spectra());
    let parsed = ms2::read(text.as_bytes()).unwrap();
    assert_eq!(parsed.len(), ds.len());
    let ds2 = SpectrumDataset::from_spectra(parsed);
    let engine = SpecHd::new(SpecHdConfig::default());
    assert_eq!(engine.run(&ds).assignment(), engine.run(&ds2).assignment());
}

#[test]
fn cross_format_consistency() {
    // MGF -> spectra -> mzML -> spectra must agree with the original
    // within text precision.
    let ds = dataset(60, 204);
    let via_mgf = mgf::read(mgf::to_string(ds.spectra()).as_bytes()).unwrap();
    let via_mzml = mzml::read_str(&mzml::to_string(&via_mgf)).unwrap();
    assert_eq!(via_mzml.len(), ds.len());
    for (a, b) in via_mgf.iter().zip(&via_mzml) {
        assert_eq!(a.peak_count(), b.peak_count());
        assert!((a.precursor().mz() - b.precursor().mz()).abs() < 1e-6);
    }
}

#[test]
fn consensus_mgf_export_searchable() {
    // The cluster_mgf example's workflow: consensus spectra written as MGF
    // can be read back and searched.
    use spechd_search::{PeptideDatabase, SearchConfig, SearchEngine};
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 400,
        num_peptides: 80,
        noise_spectrum_fraction: 0.0,
        seed: 205,
        ..SyntheticConfig::default()
    });
    let ds = generator.generate();
    let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
    let consensus: Vec<_> = outcome
        .consensus()
        .iter()
        .map(|&i| ds.spectrum(i).clone())
        .collect();
    let text = mgf::to_string(&consensus);
    let parsed = mgf::read(text.as_bytes()).unwrap();
    let engine = SearchEngine::new(
        PeptideDatabase::build(generator.peptide_library()),
        SearchConfig::default(),
    );
    let hits = engine.search_dataset(&parsed).iter().flatten().count();
    assert!(
        hits * 2 > parsed.len(),
        "a majority of consensus spectra should identify ({hits}/{})",
        parsed.len()
    );
}
