//! End-to-end quality of the SpecHD pipeline on labelled synthetic data —
//! the repository's primary acceptance gate.

use spechd_core::{Linkage, SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

fn easy_dataset(n: usize, seed: u64) -> spechd_ms::SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 5,
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

#[test]
fn default_pipeline_clusters_replicates_with_low_icr() {
    let ds = easy_dataset(1_000, 101);
    let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
    let eval = outcome.evaluate(&ds);
    assert!(
        eval.clustered_ratio > 0.35,
        "clustered {:.3}",
        eval.clustered_ratio
    );
    assert!(
        eval.incorrect_ratio < 0.03,
        "icr {:.3}",
        eval.incorrect_ratio
    );
    assert!(
        eval.completeness > 0.6,
        "completeness {:.3}",
        eval.completeness
    );
    assert!(
        eval.homogeneity > 0.9,
        "homogeneity {:.3}",
        eval.homogeneity
    );
}

#[test]
fn hard_dataset_operating_point_matches_fig10_regime() {
    // On the confusable-family dataset, SpecHD at a tuned threshold should
    // reach a meaningful clustered ratio while keeping ICR around the
    // paper's 1-2% operating band.
    let (_, ds) = spechd_bench::hard_dataset(1_200, 102);
    let (threshold, eval) = spechd_bench::tune_spechd_threshold(&ds, Linkage::Complete, 0.02);
    assert!(threshold > 0.1 && threshold < 0.5, "threshold {threshold}");
    assert!(
        eval.incorrect_ratio <= 0.02,
        "icr {:.3}",
        eval.incorrect_ratio
    );
    assert!(
        eval.clustered_ratio > 0.12,
        "clustered {:.3} at icr {:.3}",
        eval.clustered_ratio,
        eval.incorrect_ratio
    );
}

#[test]
fn complete_linkage_beats_single_at_matched_icr() {
    // Fig. 6a's qualitative result: complete linkage clusters much more
    // than single linkage once both are tuned to the same ICR budget
    // (single linkage chains confusable variants and must stay strict).
    let (_, ds) = spechd_bench::hard_dataset(1_500, 6);
    let (_, complete) = spechd_bench::tune_spechd_threshold(&ds, Linkage::Complete, 0.015);
    let (_, single) = spechd_bench::tune_spechd_threshold(&ds, Linkage::Single, 0.015);
    assert!(
        complete.clustered_ratio > single.clustered_ratio + 0.05,
        "complete {:.3} vs single {:.3}",
        complete.clustered_ratio,
        single.clustered_ratio
    );
}

#[test]
fn one_time_preprocessing_reclustering_consistency() {
    // §IV-B: encode once, re-cluster many times. Re-running clustering on
    // the same hypervectors at the same threshold must reproduce the
    // pipeline's own output.
    let ds = easy_dataset(400, 104);
    let engine = SpecHd::new(SpecHdConfig::default());
    let full = engine.run(&ds);
    let pre = spechd_preprocess::PreprocessPipeline::new(engine.config().preprocess).run(&ds);
    let hvs = engine.encode_dataset(&pre.dataset);
    assert_eq!(hvs.len(), full.hypervectors().len());
    for (a, b) in hvs.iter().zip(full.hypervectors()) {
        assert_eq!(a, b, "hypervectors must be bit-identical across runs");
    }
    let buckets = spechd_preprocess::PrecursorBucketer::new(engine.config().resolution)
        .bucketize(pre.dataset.spectra());
    let (assignment, consensus, _) = engine.cluster_encoded(&buckets, &hvs);
    assert_eq!(&assignment, full.assignment());
    let consensus_orig: Vec<usize> = consensus.iter().map(|&i| pre.kept[i]).collect();
    assert_eq!(consensus_orig, full.consensus());
}

#[test]
fn compression_factor_in_paper_band_for_synthetic_run() {
    // Synthetic runs are text-light, so the factor is smaller than the
    // raw-file factors of Fig. 6b, but must still be > 1 and consistent.
    let ds = easy_dataset(500, 105);
    let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
    let report = outcome.compression();
    assert!(report.factor() > 1.0, "factor {:.2}", report.factor());
    assert_eq!(report.hv_bytes(), outcome.hypervectors().len() * 256);
}

#[test]
fn consensus_spectra_are_cluster_members() {
    let ds = easy_dataset(500, 106);
    let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
    let clusters = outcome.assignment().clusters();
    for (cluster_id, &consensus_orig) in outcome.consensus().iter().enumerate() {
        // Map the original index back to the kept index space.
        let kept_pos = outcome
            .kept()
            .iter()
            .position(|&orig| orig == consensus_orig)
            .expect("consensus spectrum survived preprocessing");
        assert!(
            clusters[cluster_id].contains(&kept_pos),
            "consensus of cluster {cluster_id} is not a member"
        );
    }
}

#[test]
fn dimensionality_sweep_trades_quality_for_memory() {
    // Ablation: smaller D degrades quality monotonically-ish; D=2048 must
    // beat D=256 on the same data at the same threshold.
    let ds = easy_dataset(600, 107);
    let eval_at = |dim: usize| {
        let cfg = SpecHdConfig::builder()
            .encoder(spechd_core::EncoderConfig {
                dim,
                ..Default::default()
            })
            .build();
        let outcome = SpecHd::new(cfg).run(&ds);
        outcome.evaluate(&ds)
    };
    let small = eval_at(256);
    let large = eval_at(2048);
    let score = |e: &spechd_core::ClusteringEval| e.clustered_ratio - 5.0 * e.incorrect_ratio;
    assert!(
        score(&large) >= score(&small) - 0.02,
        "D=2048 ({:.3}) should not lose to D=256 ({:.3})",
        score(&large),
        score(&small)
    );
}
