//! Seeded equivalence suite: the tiled/threaded packed kernels must be
//! bit-exact with the scalar `BinaryHypervector::hamming` reference across
//! word-boundary dimensionalities, tile-boundary set sizes and worker
//! counts — including the masked-tail invariant for dims that do not fill
//! their last 64-bit word.

use spechd_cluster::{dbscan, dbscan_packed, CondensedMatrix, DbscanParams};
use spechd_hdc::distance::{self, PackedDistanceEngine};
use spechd_hdc::{BinaryHypervector, EncoderConfig, HvPack, IdLevelEncoder};
use spechd_rng::{Rng, Xoshiro256StarStar};

const DIMS: [usize; 4] = [63, 64, 65, 2048];
const SIZES: [usize; 4] = [0, 1, 2, 257];
const THREADS: [usize; 3] = [1, 2, 4];

fn random_set(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n)
        .map(|_| BinaryHypervector::random(dim, &mut rng))
        .collect()
}

/// Scalar oracle built pair-by-pair from `BinaryHypervector::hamming`.
fn oracle_condensed(hvs: &[BinaryHypervector]) -> Vec<u16> {
    let n = hvs.len();
    let mut out = Vec::new();
    for i in 1..n {
        for j in 0..i {
            out.push(hvs[i].hamming(&hvs[j]) as u16);
        }
    }
    out
}

#[test]
fn pairwise_packed_bit_exact_across_shapes_and_threads() {
    for &dim in &DIMS {
        for &n in &SIZES {
            let hvs = random_set(n, dim, (dim * 1000 + n) as u64);
            let pack = HvPack::from_hypervectors(dim, &hvs);
            let oracle = oracle_condensed(&hvs);
            assert_eq!(distance::pairwise_condensed(&hvs), oracle);
            for &threads in &THREADS {
                // A tile size that does not divide 257 exercises ragged
                // row/column tiles.
                let engine = PackedDistanceEngine::new().threads(threads).tile_rows(48);
                assert_eq!(
                    engine.pairwise_condensed(&pack),
                    oracle,
                    "dim {dim} n {n} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn one_to_many_packed_bit_exact_across_shapes_and_threads() {
    for &dim in &DIMS {
        for &n in &SIZES {
            if n == 0 {
                continue;
            }
            let hvs = random_set(n, dim, (dim * 2000 + n) as u64);
            let pack = HvPack::from_hypervectors(dim, &hvs);
            let query = &hvs[n / 2];
            let oracle: Vec<u16> = hvs.iter().map(|h| query.hamming(h) as u16).collect();
            assert_eq!(distance::one_to_many(query, &hvs), oracle);
            for &threads in &THREADS {
                let engine = PackedDistanceEngine::new().threads(threads);
                assert_eq!(
                    engine.one_to_many(query, &pack),
                    oracle,
                    "dim {dim} n {n} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn neighbors_within_bit_exact_across_shapes_and_threads() {
    for &dim in &DIMS {
        for &n in &SIZES {
            let hvs = random_set(n, dim, (dim * 3000 + n) as u64);
            let pack = HvPack::from_hypervectors(dim, &hvs);
            // Around half the bits differ for random pairs, so dim * 0.48
            // makes both membership outcomes common.
            let eps = (dim as u32) * 48 / 100;
            let oracle: Vec<Vec<usize>> = (0..n)
                .map(|p| {
                    (0..n)
                        .filter(|&q| q != p && hvs[p].hamming(&hvs[q]) <= eps)
                        .collect()
                })
                .collect();
            for &threads in &THREADS {
                let engine = PackedDistanceEngine::new().threads(threads).tile_rows(48);
                assert_eq!(
                    engine.neighbors_within(&pack, eps),
                    oracle,
                    "dim {dim} n {n} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn masked_tail_invariant_survives_every_pack_path() {
    for &dim in &[63usize, 65, 127] {
        let rem = dim % 64;
        let tail_mask = !((1u64 << rem) - 1);
        let hvs = random_set(9, dim, dim as u64);

        let mut pack = HvPack::from_hypervectors(dim, &hvs);
        pack.push(&BinaryHypervector::ones(dim));
        let gathered = pack.gather(&[9, 0, 9]);

        for (label, p) in [("pushed", &pack), ("gathered", &gathered)] {
            for i in 0..p.len() {
                let last = *p.row(i).last().unwrap();
                assert_eq!(last & tail_mask, 0, "{label} dim {dim} row {i}");
            }
        }
        // Distances against all-ones rows are honest only if no stray tail
        // bit contributes to a popcount. Gathered rows: [ones, hvs[0], ones].
        let d = distance::pairwise_condensed_packed(&gathered);
        assert_eq!(
            u32::from(d[0]),
            hvs[0].hamming(&BinaryHypervector::ones(dim))
        );
        assert_eq!(d[1], 0, "identical all-ones rows must be 0 apart");
    }
}

#[test]
fn batch_encoded_pack_is_bit_exact_with_scalar_encoder() {
    let encoder = IdLevelEncoder::new(EncoderConfig {
        dim: 2048,
        mz_bins: 256,
        intensity_levels: 16,
        mz_range: (200.0, 2000.0),
        seed: 77,
    });
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let spectra: Vec<Vec<(f64, f64)>> = (0..40)
        .map(|i| {
            (0..(i % 30))
                .map(|_| (rng.range_f64(200.0, 2000.0), rng.next_f64()))
                .collect()
        })
        .collect();
    let pack = encoder.encode_batch_packed(&spectra);
    let reference = encoder.encode_batch(&spectra);
    assert_eq!(pack.to_hypervectors(), reference);
    // And the packed distances over encoded spectra match the oracle.
    assert_eq!(
        distance::pairwise_condensed_packed(&pack),
        oracle_condensed(&reference)
    );
}

#[test]
fn dbscan_via_neighbors_within_matches_matrix_backed_labels() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let dim = 2048;
    // Five planted clusters of noisy copies plus background noise.
    let mut hvs = Vec::new();
    for _ in 0..5 {
        let proto = BinaryHypervector::random(dim, &mut rng);
        for _ in 0..4 {
            let mut member = proto.clone();
            member.flip_random_bits(100, &mut rng);
            hvs.push(member);
        }
    }
    for _ in 0..6 {
        hvs.push(BinaryHypervector::random(dim, &mut rng));
    }
    let pack = HvPack::from_hypervectors(dim, &hvs);
    let matrix = CondensedMatrix::from_pack(&pack);
    for eps in [150.0, 400.0, 900.0] {
        for min_pts in [2usize, 4] {
            let params = DbscanParams { eps, min_pts };
            let packed = dbscan_packed(&pack, params);
            let reference = dbscan(&matrix, params);
            assert_eq!(
                packed.labels(),
                reference.labels(),
                "eps {eps} min_pts {min_pts}"
            );
            assert_eq!(packed.num_clusters(), reference.num_clusters());
        }
    }
}
