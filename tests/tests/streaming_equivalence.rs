//! Streaming-vs-batch equivalence suite.
//!
//! `SpecHd::run_streaming` promises **bit-identical** results to
//! `SpecHd::run` on the same input sequence, for every watermark and
//! worker count. This suite enforces the promise across the full
//! cross-product the issue calls for — shard watermarks {1 spectrum, 64,
//! unbounded} × workers {1, 2, 4} — plus the degenerate shapes: an empty
//! stream, a single-shard dataset, a mass-sorted stream (early shard
//! retirement), and a channel-fed producer thread.

use spechd_core::{SpecHd, SpecHdConfig, StreamConfig};
use spechd_ms::stream::{sort_dataset_by_mass, AssertSorted, ChannelStream, DatasetStream};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::{Peak, Precursor, Spectrum, SpectrumDataset};
use spechd_tests::{assert_equivalent, synthetic_dataset as dataset};

#[test]
fn equivalence_across_watermarks_and_workers() {
    let ds = dataset(400, 0x5EED);
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    // 0 = unbounded buffering (encode only at close).
    for watermark in [1usize, 64, 0] {
        for workers in [1usize, 2, 4] {
            let cfg = StreamConfig {
                watermark,
                workers,
                keep_hypervectors: true,
            };
            let streamed = engine.run_streaming(DatasetStream::new(&ds), &cfg);
            assert_equivalent(
                &streamed,
                &batch,
                &format!("watermark={watermark} workers={workers}"),
            );
        }
    }
}

#[test]
fn equivalence_on_the_hard_preset() {
    // Confusable peptide families and heavy noise: the regime where a
    // subtle ordering bug would actually flip a merge decision.
    let ds = SyntheticGenerator::new(SyntheticConfig::hard(500, 77)).generate();
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    for watermark in [1usize, 64, 0] {
        let cfg = StreamConfig {
            watermark,
            workers: 3,
            keep_hypervectors: true,
        };
        let streamed = engine.run_streaming(DatasetStream::new(&ds), &cfg);
        assert_equivalent(&streamed, &batch, &format!("hard watermark={watermark}"));
    }
}

#[test]
fn empty_stream_yields_empty_outcome() {
    let ds = SpectrumDataset::new();
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    let streamed = engine.run_streaming(DatasetStream::new(&ds), &StreamConfig::default());
    assert_equivalent(&streamed, &batch, "empty stream");
    assert!(streamed.outcome.assignment().is_empty());
    assert_eq!(streamed.outcome.assignment().num_clusters(), 0);
    assert!(streamed.outcome.consensus().is_empty());
    assert_eq!(streamed.stream.shards_opened, 0);
}

#[test]
fn single_shard_dataset_round_trips() {
    // Identical precursors: everything routes into exactly one shard.
    let mut ds = SpectrumDataset::new();
    for i in 0..40 {
        let peaks: Vec<Peak> = (0..30)
            .map(|j| Peak::new(250.0 + 10.0 * j as f64 + 0.01 * i as f64, 10.0 + j as f32))
            .collect();
        ds.push(
            Spectrum::new(format!("s{i}"), Precursor::new(640.25, 2).unwrap(), peaks).unwrap(),
            Some(i % 3),
        );
    }
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    for watermark in [1usize, 7, 0] {
        let cfg = StreamConfig {
            watermark,
            workers: 2,
            keep_hypervectors: true,
        };
        let streamed = engine.run_streaming(DatasetStream::new(&ds), &cfg);
        assert_equivalent(&streamed, &batch, &format!("single shard wm={watermark}"));
        assert_eq!(streamed.stream.shards_opened, 1);
        assert_eq!(
            streamed.stream.peak_shard_rows,
            streamed.outcome.kept().len()
        );
    }
}

#[test]
fn sorted_stream_equivalent_with_early_retirement() {
    // Batch-run the mass-sorted dataset, then stream it with the sorted
    // hint: shards retire as soon as a heavier spectrum arrives, which is
    // the ingest/clustering-overlap path.
    let ds = sort_dataset_by_mass(&dataset(350, 0xBEEF));
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    for workers in [1usize, 4] {
        let cfg = StreamConfig {
            watermark: 16,
            workers,
            keep_hypervectors: true,
        };
        let streamed = engine.run_streaming(AssertSorted::new(DatasetStream::new(&ds)), &cfg);
        assert_equivalent(&streamed, &batch, &format!("sorted workers={workers}"));
        assert!(
            streamed.stream.early_closed_shards >= streamed.stream.shards_opened - 1,
            "sorted stream must retire shards before end-of-stream"
        );
        assert_eq!(streamed.stream.peak_open_shards, 1);
    }
}

#[test]
fn channel_fed_stream_matches_batch() {
    // A producer thread pushes spectra through an mpsc channel while the
    // pipeline clusters from the receiving end — the async-ingest shape.
    let ds = dataset(250, 0xFEED);
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&ds);
    let (tx, rx) = std::sync::mpsc::channel();
    let producer = {
        let ds = ds.clone();
        std::thread::spawn(move || {
            for (s, label) in ds.iter() {
                tx.send((s.clone(), label)).unwrap();
            }
        })
    };
    let streamed = engine.run_streaming(ChannelStream::new(rx), &StreamConfig::default());
    producer.join().unwrap();
    assert_equivalent(&streamed, &batch, "channel stream");
    assert_eq!(streamed.stream.spectra_streamed, ds.len());
}

#[test]
fn synthetic_stream_source_matches_batch_of_generated_dataset() {
    // The lazy synthetic source yields the same sequence generate() would
    // materialize, so streaming it must equal batch-running the dataset.
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 300,
        num_peptides: 60,
        seed: 0xD00D,
        ..SyntheticConfig::default()
    });
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&generator.generate());
    let streamed = engine.run_streaming(generator.stream(), &StreamConfig::default());
    assert_equivalent(&streamed, &batch, "synthetic stream");
}
