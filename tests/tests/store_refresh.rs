//! Medoid refresh / compaction coverage.
//!
//! Absorption drifts: clusters grow member-by-member against medoids
//! frozen at creation time, so a long-lived store accumulates clusters
//! whose medoid is no longer its own best center, plus near-duplicate
//! clusters that would have been one under a fresh HAC cut. The
//! [`SpecHd::refresh_store`] pass fixes both — re-medoiding every
//! drifted cluster and merging clusters within the cut threshold — and
//! this suite pins its contract:
//!
//! * refreshed labels stay inside the [`EquivalenceGate`] against a
//!   batch run over the same union (NMI ≥ 0.90, bounded v-drop);
//! * the pass is a fixed point (a second refresh is a no-op) and the
//!   compacted store round-trips bit-identically through SHPK bytes;
//! * a crash at **any** byte of the post-refresh save never corrupts
//!   the store: recovery always yields the pre-refresh or post-refresh
//!   image, checksum-clean.

use spechd_core::{ClusterStore, SpecHd, SpecHdConfig};
use spechd_metrics::EquivalenceGate;
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use spechd_store::{FaultIo, FaultPlan, MemIo};
use std::path::Path;

fn union_dataset(n: usize, seed: u64) -> SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 6,
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

/// Splits a dataset into `k` contiguous installments.
fn split(dataset: &SpectrumDataset, k: usize) -> Vec<SpectrumDataset> {
    let n = dataset.len();
    let chunk = n.div_ceil(k);
    let mut parts = Vec::with_capacity(k);
    let mut iter = dataset.iter();
    for _ in 0..k {
        let mut part = SpectrumDataset::new();
        for (spectrum, label) in iter.by_ref().take(chunk) {
            part.push(spectrum.clone(), label);
        }
        parts.push(part);
    }
    parts
}

/// A store drifted by `k` installments of the union, keeping member
/// rows so it is refreshable.
fn drifted_store(engine: &SpecHd, union: &SpectrumDataset, k: usize) -> ClusterStore {
    let mut store = engine.new_store_keeping_rows().unwrap();
    for part in split(union, k) {
        engine.run_incremental(&mut store, &part).unwrap();
    }
    store
}

#[test]
fn refreshed_labels_stay_inside_the_equivalence_gate() {
    let union = union_dataset(600, 31);
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&union);
    let truth: Vec<Option<u32>> = batch
        .kept()
        .iter()
        .map(|&orig| union.labels()[orig])
        .collect();

    let mut store = drifted_store(&engine, &union, 6);
    let clusters_before = store.num_clusters();
    let report = engine.refresh_store(&mut store).unwrap();
    assert_eq!(
        store.num_clusters() as u64 + report.merged,
        clusters_before as u64,
        "every merge removes exactly one cluster"
    );
    // Compaction must not lose a single member.
    let (assignment, _medoids) = store.union_assignment().unwrap();
    assert_eq!(assignment.len(), batch.kept().len());

    let gate = EquivalenceGate::default();
    let report = gate.check(assignment.labels(), batch.assignment().labels(), &truth);
    assert!(
        report.passed(),
        "refresh left the gate: violations {:?} (NMI {:.4}, v {:.4} vs {:.4})",
        report.violations,
        report.agreement.nmi,
        report.incremental.v_measure,
        report.batch.v_measure,
    );
}

#[test]
fn refresh_is_a_fixed_point_and_compaction_round_trips() {
    let union = union_dataset(400, 32);
    let engine = SpecHd::new(SpecHdConfig::default());
    let mut store = drifted_store(&engine, &union, 5);

    engine.refresh_store(&mut store).unwrap();
    let bytes = store.to_bytes();

    // Bit-identical SHPK round trip of the compacted store.
    let reloaded = ClusterStore::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded.to_bytes(), bytes, "compacted store round-trips");

    // Fixed point: refreshing the refreshed store changes nothing.
    let mut again = reloaded;
    let second = engine.refresh_store(&mut again).unwrap();
    assert_eq!(second.refreshed, 0, "second refresh re-medoids nothing");
    assert_eq!(second.merged, 0, "second refresh merges nothing");
    assert_eq!(
        again.to_bytes(),
        bytes,
        "second refresh is byte-level no-op"
    );
}

#[test]
fn refresh_keeps_the_stable_prefix_out_of_scope_but_consistent() {
    // Refresh sits *outside* the stable-label contract: merged clusters
    // relabel their members. What must still hold afterwards is a
    // consistent store — every spectrum id labelled exactly once, and
    // later installments continue from the compacted state.
    let union = union_dataset(500, 33);
    let engine = SpecHd::new(SpecHdConfig::default());
    let parts = split(&union, 5);
    let mut store = engine.new_store_keeping_rows().unwrap();
    for part in &parts[..4] {
        engine.run_incremental(&mut store, part).unwrap();
    }
    engine.refresh_store(&mut store).unwrap();
    let spectra_before = store.next_spectrum_id();

    // The store keeps absorbing after a refresh, ids continuing densely.
    let out = engine.run_incremental(&mut store, &parts[4]).unwrap();
    assert_eq!(out.base_id(), spectra_before);
    let (assignment, medoids) = store.union_assignment().unwrap();
    assert_eq!(assignment.len() as u64, store.next_spectrum_id());
    assert_eq!(medoids.len(), store.num_clusters());
}

#[test]
fn crash_at_any_byte_of_the_post_refresh_save_never_corrupts() {
    let union = union_dataset(300, 34);
    let engine = SpecHd::new(SpecHdConfig::default());
    let path = Path::new("stores/refreshed.shpk");

    let mut store = drifted_store(&engine, &union, 4);
    let mem = MemIo::new();
    store.save_with(&mem, path).unwrap();
    let before = store.to_bytes();

    engine.refresh_store(&mut store).unwrap();
    let after = store.to_bytes();
    assert_ne!(before, after, "drift scenario must actually change bytes");

    // Sweep the crash point across the entire post-refresh save.
    let total = after.len() as u64 + 128;
    let mut recovered_old = 0u32;
    let mut recovered_new = 0u32;
    for budget in (0..total).step_by(97) {
        let mem_run = MemIo::new();
        // Seed the filesystem with the durable pre-refresh image.
        let seed_io = FaultIo::new(mem_run.clone(), FaultPlan::crash_after_bytes(u64::MAX));
        ClusterStore::from_bytes(&before)
            .unwrap()
            .save_with(&seed_io, path)
            .unwrap();

        let io = FaultIo::new(mem_run.clone(), FaultPlan::crash_after_bytes(budget));
        let saved = store.save_with(&io, path);

        let (loaded, _report) = ClusterStore::load_or_recover_with(&mem_run, path)
            .expect("recovery must always find a checksum-clean image");
        let loaded_bytes = loaded.to_bytes();
        if saved.is_ok() {
            assert_eq!(loaded_bytes, after, "completed save must read back");
        }
        if loaded_bytes == before {
            recovered_old += 1;
        } else if loaded_bytes == after {
            recovered_new += 1;
        } else {
            panic!("recovered image is neither pre- nor post-refresh");
        }
    }
    assert!(recovered_old > 0, "some crash points keep the old image");
    assert!(recovered_new > 0, "some crash points reach the new image");
}
