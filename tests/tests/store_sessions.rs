//! Incremental-clustering-as-a-service acceptance suite.
//!
//! The served store path must be **bit-identical** to driving the
//! library directly: the same installments submitted through
//! `StoreClient` over SPHD — across two server processes sharing one
//! backing file, with a proxy-injected disconnect mid-session — must
//! produce the same kept sets, the same stable labels, and a persisted
//! SHPK file byte-equal to one written by a local
//! [`SpecHd::run_incremental`] loop. Around that core sit the session
//! arbitration contracts: a second writer is shed with the retryable
//! `StoreBusy`, a mismatched config with the fatal `ConfigMismatch`,
//! and a connection killed around a `RefreshStore` admin frame never
//! corrupts the store.

use spechd_core::{ClusterStore, SpecHd};
use spechd_ms::{Spectrum, SpectrumDataset};
use spechd_server::protocol::encode_frame;
use spechd_server::{
    ClientError, ErrorCode, Frame, IncrementalAckFrame, JobConfig, RetryPolicy, RunningServer,
    Server, ServerConfig, StoreAckFrame, StoreClient,
};
use spechd_tests::proxy::{FaultProxy, ProxyPlan};
use spechd_tests::synthetic_dataset;
use std::path::PathBuf;
use std::time::Duration;

fn store_server(store_dir: PathBuf) -> RunningServer {
    let config = ServerConfig {
        store_dir: Some(store_dir),
        rejoin_grace: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spechd-sessions-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// `k` contiguous installments of the standard synthetic dataset.
fn installments(n: usize, seed: u64, k: usize) -> Vec<Vec<Spectrum>> {
    let dataset = synthetic_dataset(n, seed);
    let chunk = dataset.len().div_ceil(k);
    dataset
        .spectra()
        .chunks(chunk)
        .map(|c| c.to_vec())
        .collect()
}

/// Asserts one served installment ack equals the library outcome for
/// the same installment.
fn assert_ack_matches(
    ack: &IncrementalAckFrame,
    outcome: &spechd_core::IncrementalOutcome,
    context: &str,
) {
    assert_eq!(
        ack.base_id,
        outcome.base_id(),
        "base id diverged: {context}"
    );
    let lib_kept: Vec<u32> = outcome.kept().iter().map(|&i| i as u32).collect();
    assert_eq!(ack.kept, lib_kept, "kept set diverged: {context}");
    let lib_labels: Vec<u64> = outcome
        .installment_labels()
        .iter()
        .map(|&l| l as u64)
        .collect();
    assert_eq!(ack.labels, lib_labels, "labels diverged: {context}");
    let stats = outcome.stats();
    assert_eq!(ack.absorbed, stats.absorbed as u64, "absorbed: {context}");
    assert_eq!(ack.residual, stats.residual as u64, "residual: {context}");
    assert_eq!(
        ack.new_clusters, stats.new_clusters as u64,
        "new clusters: {context}"
    );
}

/// The acceptance core: two server processes over one backing file, a
/// proxy-injected mid-session disconnect, and byte-equality of the
/// persisted SHPK against a local library run of the same installments.
#[test]
fn served_sessions_are_bit_identical_to_library_across_restart_and_disconnect() {
    let dir = temp_store_dir("acc");
    let parts = installments(600, 41, 4);
    let config = JobConfig::default();
    let client_id = 0xACC_0001;

    // The library reference: the same installments, driven locally.
    let engine = SpecHd::new(config.pipeline_config());
    let mut lib_store = engine.new_store_keeping_rows().unwrap();
    let lib_outcomes: Vec<_> = parts
        .iter()
        .map(|part| {
            engine
                .run_incremental(&mut lib_store, &SpectrumDataset::from_spectra(part.clone()))
                .unwrap()
        })
        .collect();

    // Session 1: first two installments, persisted, server stops.
    {
        let server = store_server(dir.clone());
        let mut client = StoreClient::connect_with(
            server.addr(),
            "acc",
            config.clone(),
            client_id,
            RetryPolicy::default(),
        )
        .expect("open store");
        assert_eq!(client.opened().spectra, 0, "fresh store");
        for (i, part) in parts[..2].iter().enumerate() {
            let ack = client
                .submit_incremental(part.clone())
                .expect("installment");
            assert_ack_matches(
                &ack,
                &lib_outcomes[i],
                &format!("session 1 installment {i}"),
            );
        }
        let ack = client.persist().expect("persist");
        assert_eq!(ack.persisted, 1);
        assert_eq!(ack.dirty, 0);
        drop(client);
        server.shutdown();
    }

    // The persisted file after session 1 equals the library store at
    // the same point in the installment stream.
    {
        let mut lib_mid = engine.new_store_keeping_rows().unwrap();
        for part in &parts[..2] {
            engine
                .run_incremental(&mut lib_mid, &SpectrumDataset::from_spectra(part.clone()))
                .unwrap();
        }
        let disk = std::fs::read(dir.join("acc.shpk")).expect("session 1 file");
        assert_eq!(
            disk,
            lib_mid.to_bytes(),
            "persisted SHPK diverged from library after session 1"
        );
    }

    // Session 2: a NEW server process loads the same file; the client
    // talks through a fault proxy that kills the connection mid-stream,
    // exercising reconnect-and-resume inside the session.
    {
        let server = store_server(dir.clone());
        let proxy = FaultProxy::start(server.addr()).expect("start proxy");
        // Let the OpenStore ack through, then cut the server-to-client
        // leg inside the first large IncrementalAck — the client must
        // reconnect, resume its session, and re-send the installment
        // under the same sequence number (re-acked, never re-ingested).
        proxy.push_plan(ProxyPlan::kill_server_to_client_after(200));
        let mut client = StoreClient::connect_with(
            proxy.addr(),
            "acc",
            config.clone(),
            client_id,
            RetryPolicy::default(),
        )
        .expect("resume store");
        assert_eq!(
            client.opened().spectra,
            lib_outcomes[1].base_id() + lib_outcomes[1].kept().len() as u64,
            "session 2 opens on session 1's archive"
        );
        for (i, part) in parts[2..].iter().enumerate() {
            let ack = client
                .submit_incremental(part.clone())
                .expect("installment");
            assert_ack_matches(
                &ack,
                &lib_outcomes[2 + i],
                &format!("session 2 installment {}", 2 + i),
            );
        }
        assert!(
            client.reconnects() > 0,
            "the proxy cut must have forced a resume"
        );
        let ack = client.persist().expect("persist");
        assert_eq!(ack.spectra, lib_store.next_spectrum_id());
        assert_eq!(ack.clusters, lib_store.num_clusters() as u64);
        drop(client);
        proxy.shutdown();
        server.shutdown();
    }

    // Final byte-equality: the served path's backing file IS the
    // library store, bit for bit — and it loads checksum-clean.
    let disk = std::fs::read(dir.join("acc.shpk")).expect("final file");
    assert_eq!(
        disk,
        lib_store.to_bytes(),
        "persisted SHPK diverged from library after session 2"
    );
    ClusterStore::load(dir.join("acc.shpk")).expect("final file loads clean");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_writer_is_shed_with_retryable_store_busy() {
    let dir = temp_store_dir("busy");
    let server = store_server(dir.clone());
    let config = JobConfig::default();

    let holder = StoreClient::connect_with(
        server.addr(),
        "busy",
        config.clone(),
        1,
        RetryPolicy::none(),
    )
    .expect("first writer");
    let err = StoreClient::connect_with(
        server.addr(),
        "busy",
        config.clone(),
        2,
        RetryPolicy::none(),
    )
    .expect_err("second writer must be shed");
    match &err {
        ClientError::Server { code, .. } => assert_eq!(*code, ErrorCode::StoreBusy),
        other => panic!("expected StoreBusy, got {other:?}"),
    }
    assert!(err.is_retryable(), "StoreBusy is retryable by contract");

    // Once the holder disconnects and its rejoin grace lapses, a
    // retrying second writer gets the store.
    drop(holder);
    let mut second =
        StoreClient::connect_with(server.addr(), "busy", config, 2, RetryPolicy::default())
            .expect("retry waits out the grace");
    second.stats().expect("session works");
    drop(second);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_config_is_fatal_config_mismatch() {
    let dir = temp_store_dir("cfg");
    let server = store_server(dir.clone());
    let config = JobConfig::default();
    let holder =
        StoreClient::connect_with(server.addr(), "cfg", config.clone(), 1, RetryPolicy::none())
            .expect("open");
    drop(holder);
    std::thread::sleep(Duration::from_millis(300));

    let other = JobConfig {
        resolution: config.resolution * 2.0,
        ..config
    };
    let err = StoreClient::connect_with(server.addr(), "cfg", other, 2, RetryPolicy::none())
        .expect_err("different config must be refused");
    match &err {
        ClientError::Server { code, .. } => assert_eq!(*code, ErrorCode::ConfigMismatch),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    assert!(!err.is_retryable(), "ConfigMismatch is fatal");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A connection killed around a `RefreshStore` admin frame — in either
/// direction — leaves the store consistent: the session resumes, the
/// refresh settles to its fixed point, and the persisted file loads
/// checksum-clean with every member still labelled exactly once.
///
/// The proxy schedules faults per connection, by byte count, so the
/// test encodes the exact frames the client will send to land the cuts
/// where it wants them: connection 1 dies a few bytes into the
/// `RefreshStore` *request* (the frame arrives truncated, the pass
/// never runs), and connection 2 — the resume — dies a few bytes into
/// the refresh *ack*, after the pass ran server-side, forcing the
/// retry to re-run the idempotent pass on connection 3.
#[test]
fn connection_kill_around_refresh_never_corrupts_the_store() {
    let dir = temp_store_dir("refresh");
    let server = store_server(dir.clone());
    let config = JobConfig::default();
    let parts = installments(400, 42, 3);

    // Byte budgets, computed from the deterministic wire encoding.
    let open = encode_frame(&Frame::OpenStore {
        name: "refresh".into(),
        client_id: 7,
        config: config.clone(),
    });
    let submits: u64 = parts
        .iter()
        .enumerate()
        .map(|(seq, part)| {
            encode_frame(&Frame::SubmitIncremental {
                name: "refresh".into(),
                seq: seq as u64,
                spectra: part.clone(),
            })
            .len() as u64
        })
        .sum();
    // StoreAck frames are fixed-width apart from the name, so any
    // counter values give the right length.
    let store_ack = encode_frame(&Frame::StoreAck(StoreAckFrame {
        name: "refresh".into(),
        dim: 0,
        fingerprint: 0,
        spectra: 0,
        buckets: 0,
        clusters: 0,
        keeps_member_rows: 0,
        dirty: 0,
        persisted: 0,
        refreshed: 0,
        merged: 0,
    }));

    let proxy = FaultProxy::start(server.addr()).expect("start proxy");
    // Connection 1: everything up to and including the last installment
    // goes through; the RefreshStore frame is cut 4 bytes in.
    proxy.push_plan(ProxyPlan::kill_client_to_server_after(
        open.len() as u64 + submits + 4,
    ));
    // Connection 2 (the resume): the re-open's StoreAck goes through;
    // the refresh ack is cut 4 bytes in — after the pass ran.
    proxy.push_plan(ProxyPlan::kill_server_to_client_after(
        store_ack.len() as u64 + 4,
    ));
    let mut client = StoreClient::connect_with(
        proxy.addr(),
        "refresh",
        config.clone(),
        7,
        RetryPolicy::default(),
    )
    .expect("open store");
    let mut total = 0u64;
    for part in &parts {
        let ack = client
            .submit_incremental(part.clone())
            .expect("installment");
        total = ack.total_spectra;
    }

    let ack = client.refresh().expect("refresh survives both cuts");
    assert_eq!(ack.spectra, total, "refresh loses no spectra");
    assert!(
        client.reconnects() >= 2,
        "both cuts must have forced a resume (got {})",
        client.reconnects()
    );

    // A refreshed store is a fixed point: one more refresh is a no-op.
    let again = client.refresh().expect("second refresh");
    assert_eq!(again.refreshed, 0);
    assert_eq!(again.merged, 0);
    assert_eq!(again.clusters, ack.clusters);

    let persisted = client.persist().expect("persist");
    assert_eq!(persisted.spectra, total);
    drop(client);
    proxy.shutdown();
    server.shutdown();

    // The file is checksum-clean and internally consistent.
    let store = ClusterStore::load(dir.join("refresh.shpk")).expect("clean load");
    let (assignment, medoids) = store.union_assignment().expect("consistent membership");
    assert_eq!(assignment.len() as u64, total);
    assert_eq!(medoids.len(), store.num_clusters());
    std::fs::remove_dir_all(&dir).ok();
}
