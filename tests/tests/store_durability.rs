//! Crash-safety contract of `ClusterStore` persistence: **any**
//! interrupted save leaves a loadable store.
//!
//! The matrix drives [`ClusterStore::save_with`] through a [`FaultIo`]
//! over an in-memory filesystem, crashing at every byte offset of the
//! written image and at every operation boundary of the durability
//! protocol (write → fsync → rename-to-`.bak` → rename-into-place →
//! dir fsync), then proves [`ClusterStore::load_or_recover_with`]
//! still produces a checksum-valid generation — the previous one if
//! the save died early, the new one if it died after the commit point
//! — with a typed [`RecoveryReport`] saying which. A real-filesystem
//! test pins the same behavior for `.bak` recovery through [`DiskIo`].

use spechd_core::{SpecHd, SpecHdConfig};
use spechd_store::io::{backup_path, pending_path};
use spechd_store::{ClusterStore, FaultIo, FaultPlan, MemIo, RecoverySource, StoreError, StoreIo};
use spechd_tests::synthetic_dataset;
use std::path::Path;

/// Two consecutive generations of one store, produced by the real
/// incremental pipeline so the bytes under test are genuine.
fn two_generations() -> (ClusterStore, ClusterStore) {
    let engine = SpecHd::new(SpecHdConfig::default());
    let mut store = engine.new_store().unwrap();
    engine
        .run_incremental(&mut store, &synthetic_dataset(12, 0xD1))
        .unwrap();
    let gen1 = store.clone();
    engine
        .run_incremental(&mut store, &synthetic_dataset(8, 0xD2))
        .unwrap();
    assert_ne!(gen1, store, "second run must change the store");
    (gen1, store)
}

/// The tentpole guarantee, exhaustively: a crash after **any** byte of
/// the new image's write leaves the previous generation recoverable,
/// and a crash after the full write leaves the new generation
/// committed.
#[test]
fn crash_at_every_byte_offset_leaves_a_loadable_store() {
    let (gen1, gen2) = two_generations();
    let gen1_bytes = gen1.to_bytes();
    let image = gen2.to_bytes();
    let path = Path::new("store.shpk");

    for k in 0..=image.len() as u64 {
        let mem = MemIo::new();
        mem.plant(path, gen1_bytes.clone());
        let io = FaultIo::new(mem.clone(), FaultPlan::crash_after_bytes(k));
        let saved = gen2.save_with(&io, path);

        let (loaded, report) = ClusterStore::load_or_recover_with(&mem, path)
            .unwrap_or_else(|e| panic!("crash after byte {k}: nothing recoverable: {e}"));
        if saved.is_ok() {
            assert_eq!(loaded, gen2, "crash after byte {k}: commit must stick");
        } else {
            assert_eq!(
                loaded, gen1,
                "crash after byte {k}: previous generation must survive"
            );
            assert_eq!(report.source, RecoverySource::Primary);
            assert!(!report.recovered());
        }
    }
}

/// Crash at every *operation* boundary of the durability protocol. The
/// interesting point is between the two renames: the primary is gone,
/// and recovery must find the already-synced pending generation.
#[test]
fn crash_at_every_operation_boundary_recovers_a_valid_generation() {
    let (gen1, gen2) = two_generations();
    let gen1_bytes = gen1.to_bytes();
    let path = Path::new("store.shpk");

    // Ops during a save over an existing primary: 0 = write image,
    // 1 = fsync tmp, 2 = rename primary→bak, 3 = rename tmp→primary,
    // 4 = fsync parent dir; budget 5 lets everything through.
    for ops in 0..=5u64 {
        let mem = MemIo::new();
        mem.plant(path, gen1_bytes.clone());
        let io = FaultIo::new(mem.clone(), FaultPlan::crash_after_ops(ops));
        let saved = gen2.save_with(&io, path);
        assert_eq!(saved.is_ok(), ops >= 5, "op budget {ops}");

        let (loaded, report) = ClusterStore::load_or_recover_with(&mem, path)
            .unwrap_or_else(|e| panic!("crash after op {ops}: nothing recoverable: {e}"));
        match ops {
            // Save died before the primary was touched.
            0..=2 => {
                assert_eq!(loaded, gen1, "op {ops}");
                assert_eq!(report.source, RecoverySource::Primary, "op {ops}");
            }
            // Between the renames: primary missing, pending is newer
            // than the backup and already synced — recovery must
            // prefer it and say so.
            3 => {
                assert_eq!(loaded, gen2, "op 3 recovers the pending generation");
                assert_eq!(report.source, RecoverySource::Pending);
                assert!(report.recovered());
                assert_eq!(report.loaded_from, pending_path(path));
                let primary_error = report.primary_error.expect("primary failure is reported");
                assert!(
                    matches!(*primary_error, StoreError::Io { .. }),
                    "missing primary reports as a typed i/o error: {primary_error}"
                );
            }
            // Commit point passed: the new generation is the primary.
            _ => {
                assert_eq!(loaded, gen2, "op {ops}");
                assert_eq!(report.source, RecoverySource::Primary, "op {ops}");
            }
        }
    }
}

/// A successful save keeps the previous generation as `.bak`, and a
/// post-save corruption of the primary recovers from it with a typed
/// report naming the damage.
#[test]
fn corrupted_primary_recovers_from_backup() {
    let (gen1, gen2) = two_generations();
    let path = Path::new("store.shpk");
    let mem = MemIo::new();
    gen1.save_with(&mem, path).unwrap();
    gen2.save_with(&mem, path).unwrap();
    assert_eq!(
        mem.contents(&backup_path(path)).unwrap(),
        gen1.to_bytes(),
        "previous generation preserved as .bak"
    );
    assert!(
        mem.contents(&pending_path(path)).is_none(),
        "no stale .tmp after a clean save"
    );

    // Bit rot in the primary.
    let mut damaged = mem.contents(path).unwrap();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    mem.plant(path, damaged);

    let (loaded, report) = ClusterStore::load_or_recover_with(&mem, path).unwrap();
    assert_eq!(loaded, gen1, "backup generation recovered");
    assert_eq!(report.source, RecoverySource::Backup);
    assert_eq!(report.loaded_from, backup_path(path));
    assert!(matches!(
        *report.primary_error.expect("damage is reported"),
        StoreError::ChecksumMismatch { .. }
    ));
}

/// ENOSPC mid-save: the save fails with an `Io` error naming the
/// *pending* file (the primary was never touched), and the previous
/// generation still loads without recovery.
#[test]
fn enospc_fails_the_save_but_never_the_store() {
    let (gen1, gen2) = two_generations();
    let path = Path::new("store.shpk");
    let mem = MemIo::new();
    gen1.save_with(&mem, path).unwrap();

    let budget = gen2.to_bytes().len() as u64 / 2;
    let io = FaultIo::new(mem.clone(), FaultPlan::enospc_after_bytes(budget));
    let err = gen2.save_with(&io, path).unwrap_err();
    match &err {
        StoreError::Io { path: failed, .. } => {
            assert_eq!(failed, &pending_path(path), "error names the pending file");
        }
        other => panic!("expected Io error, got {other}"),
    }
    assert!(io.tripped());

    // The device is full but the data is safe: a plain load (no
    // recovery machinery) still returns the committed generation.
    assert_eq!(ClusterStore::load_with(&mem, path).unwrap(), gen1);
}

/// An interrupted **first** save has no previous generation to fall
/// back to; recovery must fail with the primary's typed error rather
/// than panic or fabricate a store.
#[test]
fn interrupted_first_save_reports_a_typed_error() {
    let (gen1, _) = two_generations();
    let path = Path::new("store.shpk");
    let mem = MemIo::new();
    let io = FaultIo::new(mem.clone(), FaultPlan::crash_after_bytes(10));
    assert!(gen1.save_with(&io, path).is_err());

    let err = ClusterStore::load_or_recover_with(&mem, path).unwrap_err();
    assert!(
        matches!(err, StoreError::Io { .. }),
        "no generation to recover: {err}"
    );
}

/// The same `.bak` recovery through the production [`DiskIo`] path on a
/// real filesystem, via the non-`_with` convenience API.
#[test]
fn backup_recovery_works_on_the_real_filesystem() {
    let (gen1, gen2) = two_generations();
    let dir = std::env::temp_dir().join(format!("spechd-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.shpk");

    gen1.save(&path).unwrap();
    gen2.save(&path).unwrap();
    let mut damaged = std::fs::read(&path).unwrap();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x04;
    std::fs::write(&path, &damaged).unwrap();

    let (loaded, report) = ClusterStore::load_or_recover(&path).unwrap();
    assert_eq!(loaded, gen1);
    assert_eq!(report.source, RecoverySource::Backup);
    assert!(report.recovered());

    // An undamaged primary loads without recovery.
    gen2.save(&path).unwrap();
    let (loaded, report) = ClusterStore::load_or_recover(&path).unwrap();
    assert_eq!(loaded, gen2);
    assert!(!report.recovered());
    assert!(report.primary_error.is_none());

    std::fs::remove_dir_all(&dir).ok();
}

/// `MemIo` honors the same `StoreIo` contract `DiskIo` does for the
/// fragments the durability protocol relies on (rename replaces,
/// exists reflects renames) — keeping the in-memory matrix honest.
#[test]
fn mem_io_matches_the_disk_contract_for_renames() {
    let mem = MemIo::new();
    let a = Path::new("a");
    let b = Path::new("b");
    mem.write(a, b"one").unwrap();
    mem.write(b, b"two").unwrap();
    mem.rename(a, b).unwrap();
    assert!(!mem.exists(a));
    assert_eq!(mem.read(b).unwrap(), b"one", "rename replaces destination");
}
