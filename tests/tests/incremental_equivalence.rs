//! Equivalence of incremental clustering (k installments into a
//! persistent store) with one batch run over the union of the same
//! spectra.
//!
//! The union dataset is split into contiguous installments, so a spectrum
//! kept by preprocessing receives the same position in the incremental
//! global-id order as in the batch kept order — the two assignments are
//! directly comparable index-by-index. k = 1 must be bit-identical to
//! batch; k > 1 is gated by [`EquivalenceGate`] (partition agreement plus
//! ground-truth quality deltas), because absorption into frozen medoids
//! is an approximation on buckets that span installments.

use spechd_core::{ClusterStore, IncrementalOutcome, SpecHd, SpecHdConfig};
use spechd_metrics::EquivalenceGate;
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;

fn union_dataset(n: usize, seed: u64) -> SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 6,
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

/// Splits a dataset into `k` contiguous installments.
fn split(dataset: &SpectrumDataset, k: usize) -> Vec<SpectrumDataset> {
    let n = dataset.len();
    let chunk = n.div_ceil(k);
    let mut parts = Vec::with_capacity(k);
    let mut iter = dataset.iter();
    for _ in 0..k {
        let mut part = SpectrumDataset::new();
        for (spectrum, label) in iter.by_ref().take(chunk) {
            part.push(spectrum.clone(), label);
        }
        parts.push(part);
    }
    parts
}

/// Runs the incremental pipeline over the installments, returning the
/// final outcome (the last installment sees the full union assignment).
fn run_installments(
    engine: &SpecHd,
    store: &mut ClusterStore,
    parts: &[SpectrumDataset],
) -> IncrementalOutcome {
    let mut last = None;
    for part in parts {
        last = Some(engine.run_incremental(store, part).unwrap());
    }
    last.expect("at least one installment")
}

#[test]
fn one_installment_is_bit_identical_to_batch() {
    let union = union_dataset(400, 21);
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&union);

    let mut store = engine.new_store().unwrap();
    let inc = run_installments(&engine, &mut store, std::slice::from_ref(&union));
    assert_eq!(inc.assignment(), batch.assignment());
}

#[test]
fn k_installments_stay_inside_the_equivalence_gate() {
    let union = union_dataset(600, 22);
    let engine = SpecHd::new(SpecHdConfig::default());
    let batch = engine.run(&union);
    // Ground truth per kept spectrum, in batch kept order — which is
    // also incremental global-id order because installments are
    // contiguous slices of the union.
    let truth: Vec<Option<u32>> = batch
        .kept()
        .iter()
        .map(|&orig| union.labels()[orig])
        .collect();

    for k in [1usize, 2, 5] {
        let mut store = engine.new_store().unwrap();
        let inc = run_installments(&engine, &mut store, &split(&union, k));
        assert_eq!(
            inc.assignment().len(),
            batch.assignment().len(),
            "k={k}: same kept spectra"
        );
        let report = EquivalenceGate::default().check(
            inc.assignment().labels(),
            batch.assignment().labels(),
            &truth,
        );
        assert!(
            report.passed(),
            "k={k}: gate violations {:?} (NMI {:.4}, ARI {:.4}, v {:.4} vs {:.4}, icr {:.4} vs {:.4})",
            report.violations,
            report.agreement.nmi,
            report.agreement.ari,
            report.incremental.v_measure,
            report.batch.v_measure,
            report.incremental.incorrect_ratio,
            report.batch.incorrect_ratio,
        );
        if k == 1 {
            assert_eq!(inc.assignment(), batch.assignment(), "k=1 is exact");
        }
    }
}

#[test]
fn labels_are_stable_across_sessions() {
    let union = union_dataset(500, 23);
    let engine = SpecHd::new(SpecHdConfig::default());
    let parts = split(&union, 5);

    let mut store = engine.new_store().unwrap();
    let mut previous: Option<IncrementalOutcome> = None;
    for (session, part) in parts.iter().enumerate() {
        // Simulate a fresh process per session: persist and reload.
        let mut reloaded = ClusterStore::from_bytes(&store.to_bytes()).unwrap();
        let outcome = engine.run_incremental(&mut reloaded, part).unwrap();
        store = reloaded;
        if let Some(prev) = &previous {
            let n_prev = prev.assignment().len();
            assert_eq!(
                &outcome.assignment().labels()[..n_prev],
                prev.assignment().labels(),
                "session {session}: prior labels must survive verbatim"
            );
            assert!(
                outcome.assignment().num_clusters() >= prev.assignment().num_clusters(),
                "clusters only append"
            );
            // Consensus medoids of surviving clusters never move.
            assert_eq!(
                &outcome.consensus()[..prev.consensus().len()],
                prev.consensus(),
                "session {session}: medoids are frozen"
            );
        }
        previous = Some(outcome);
    }
    let last = previous.unwrap();
    assert_eq!(last.assignment().len() as u64, store.next_spectrum_id());
}

#[test]
fn cold_start_on_empty_store_matches_batch() {
    let union = union_dataset(300, 24);
    let engine = SpecHd::new(SpecHdConfig::default());
    let store = engine.new_store().unwrap();
    assert!(store.is_empty());

    // Round-trip the *empty* store through bytes first: a brand-new file
    // must behave exactly like a brand-new store.
    let mut store = ClusterStore::from_bytes(&store.to_bytes()).unwrap();
    let inc = engine.run_incremental(&mut store, &union).unwrap();
    let batch = engine.run(&union);
    assert_eq!(inc.assignment(), batch.assignment());
    assert_eq!(inc.stats().dirty_buckets, 0);
    assert_eq!(inc.stats().fresh_buckets, store.num_buckets());
}

#[test]
fn single_new_spectrum_lands_in_an_existing_cluster_or_its_own() {
    let union = union_dataset(400, 25);
    let engine = SpecHd::new(SpecHdConfig::default());
    let mut store = engine.new_store().unwrap();
    let first = engine.run_incremental(&mut store, &union).unwrap();
    let clusters_before = store.num_clusters();
    let spectra_before = store.next_spectrum_id();

    // Resubmit one already-seen spectrum as a new installment: it must
    // be absorbed into an existing cluster of its bucket (its distance
    // to that cluster's medoid is within the cut threshold by
    // construction — distance zero to its own previous encoding).
    let mut one = SpectrumDataset::new();
    let idx = first.kept()[0];
    one.push(union.spectra()[idx].clone(), union.labels()[idx]);
    let second = engine.run_incremental(&mut store, &one).unwrap();

    assert_eq!(second.stats().spectra_kept, 1);
    assert_eq!(second.stats().absorbed, 1, "duplicate must be absorbed");
    assert_eq!(second.stats().new_clusters, 0);
    assert_eq!(store.num_clusters(), clusters_before);
    assert_eq!(store.next_spectrum_id(), spectra_before + 1);
    // The duplicate gets its twin's label.
    let new_label = second.installment_labels()[0];
    assert_eq!(new_label, first.assignment().labels()[0]);
    // And everything that was labelled stays labelled identically.
    assert_eq!(
        &second.assignment().labels()[..first.assignment().len()],
        first.assignment().labels()
    );
}

#[test]
fn genuinely_novel_spectrum_starts_a_new_cluster() {
    let union = union_dataset(200, 26);
    let engine = SpecHd::new(SpecHdConfig::default());
    let mut store = engine.new_store().unwrap();
    engine.run_incremental(&mut store, &union).unwrap();
    let clusters_before = store.num_clusters();
    let buckets_before = store.num_buckets();

    // A spectrum in a mass region the union never touched: fresh bucket,
    // new singleton cluster. Probe precursor masses until one maps to a
    // bucket the store has never seen.
    let peaks: Vec<spechd_ms::Peak> = (0..10)
        .map(|i| spechd_ms::Peak::new(300.0 + 50.0 * i as f64, 1.0))
        .collect();
    let spectrum = (0..10_000)
        .map(|step| {
            let mz = 400.0 + 0.37 * f64::from(step);
            spechd_ms::Spectrum::new(
                format!("novel-{step}"),
                spechd_ms::Precursor::new(mz, 2).unwrap(),
                peaks.clone(),
            )
            .unwrap()
        })
        .find(|s| store.bucket(engine.bucketer().bucket_of(s)).is_none())
        .expect("some bucket is unused");
    let mut novel = SpectrumDataset::new();
    novel.push(spectrum, None);
    let out = engine.run_incremental(&mut store, &novel).unwrap();
    assert_eq!(out.stats().spectra_kept, 1);
    assert_eq!(out.stats().absorbed, 0);
    assert_eq!(out.stats().new_clusters, 1);
    assert_eq!(out.stats().fresh_buckets, 1);
    assert_eq!(store.num_clusters(), clusters_before + 1);
    assert_eq!(store.num_buckets(), buckets_before + 1);
}
