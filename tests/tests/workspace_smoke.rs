//! Workspace-wiring smoke test.
//!
//! Drives the umbrella `spechd` crate's re-exports through the same path
//! the quickstart example uses (synthetic generator → `SpecHd` pipeline →
//! cluster result), so example-level API breakage fails `cargo test`
//! instead of only surfacing when someone builds the examples.

use spechd::ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd::{SpecHd, SpecHdConfig};

#[test]
fn umbrella_quickstart_path() {
    let dataset = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 400,
        num_peptides: 80,
        seed: 42,
        ..SyntheticConfig::default()
    })
    .generate();

    let spechd = SpecHd::new(SpecHdConfig::default());
    let outcome = spechd.run(&dataset);

    // Every kept spectrum gets an assignment; consensus picks are valid
    // indices into the original dataset.
    assert_eq!(outcome.assignment().len(), outcome.kept().len());
    assert!(outcome.kept().len() <= dataset.len());
    assert!(outcome.assignment().num_clusters() >= 1);
    for &idx in outcome.consensus() {
        assert!(idx < dataset.len());
        let _ = dataset.spectrum(idx).title();
    }

    // Pipeline stats are populated and self-consistent.
    let stats = outcome.stats();
    assert_eq!(stats.preprocess.spectra_in, dataset.len());
    assert!(stats.preprocess.spectra_out <= stats.preprocess.spectra_in);
    assert!(stats.buckets.count >= 1);

    // Quality evaluation against ground truth stays in range.
    let eval = outcome.evaluate(&dataset);
    assert!((0.0..=1.0).contains(&eval.clustered_ratio));
    assert!((0.0..=1.0).contains(&eval.incorrect_ratio));
    assert!((0.0..=1.0).contains(&eval.completeness));
    assert!(
        eval.clustered_ratio > 0.1,
        "pipeline should cluster something"
    );

    // The streaming mode is reachable through the umbrella too, and
    // agrees with the batch run it just did.
    let streamed = spechd.run_streaming(
        spechd::ms::stream::DatasetStream::new(&dataset),
        &spechd::StreamConfig::default(),
    );
    assert_eq!(streamed.outcome.assignment(), outcome.assignment());
}

#[test]
fn umbrella_reexports_are_wired() {
    // Touch one symbol from each re-exported layer so a dropped module
    // re-export in `spechd/src/lib.rs` breaks this test at compile time.
    use spechd::rng::{Rng, Xoshiro256StarStar};

    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let hv = spechd::hdc::BinaryHypervector::random(256, &mut rng);
    assert_eq!(hv.hamming(&hv), 0);

    let _ = spechd::cluster::Linkage::Complete;
    let _ = spechd::preprocess::PreprocessConfig::default();
    let _ = spechd::metrics::Contingency::build(&[0, 0, 1], &[Some(0), Some(0), Some(1)]);
    let _ = spechd::fpga::AlveoU280::capacity();
    let _ = spechd::search::SearchConfig::default();
    let _ = spechd::baselines::Falcon::default();

    // Builder round-trip through the root-lifted types.
    let cfg: SpecHdConfig = SpecHdConfig::builder().build();
    let _ = SpecHd::new(cfg);
    assert!(rng.next_f64() < 1.0);
}
