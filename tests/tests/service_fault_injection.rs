//! Chaos suite for the service path: every injected transport fault —
//! fragmented frames, mid-stream disconnects in either direction, lost
//! acks, load shedding — must leave the served outcome **bit-identical**
//! to the batch pipeline, or fail with a typed, classified error.
//!
//! The faults come from [`FaultProxy`], a byte-deterministic TCP proxy
//! between client and server: it splits frames at arbitrary byte
//! boundaries and kills connections after exact byte counts, so each
//! scenario replays identically. Recovery is the client's
//! [`RetryPolicy`] + `client_id`/sequence-number resume protocol; the
//! assertions then hold the repo's central promise against it.

use spechd_core::SpecHd;
use spechd_hdc::BinaryHypervector;
use spechd_rng::Xoshiro256StarStar;
use spechd_server::{
    ClientError, ErrorCode, JobClient, JobConfig, LibraryEntryWire, QueryWire, RetryPolicy,
    RunningServer, SearchClient, Server, ServerConfig,
};
use spechd_tests::proxy::{FaultProxy, ProxyPlan};
use spechd_tests::{assert_service_equivalent, synthetic_dataset};
use std::time::Duration;

fn start_server(config: ServerConfig) -> RunningServer {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn resilient_config() -> ServerConfig {
    ServerConfig {
        // Generous resume window so a CI hiccup between kill and
        // reconnect cannot close the slot under the test.
        rejoin_grace: Duration::from_secs(20),
        ..ServerConfig::default()
    }
}

/// Fast, deterministic backoff for tests.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(200),
    }
}

/// Runs one full job through `addr`, submitting `dataset` in `batch`-
/// sized chunks on a single connection, and returns the reassembled
/// outcome. A single sequential submitter means stream order equals
/// dataset order, so the batch reference is simply `engine.run(dataset)`.
fn run_job_via(
    addr: std::net::SocketAddr,
    job_id: u64,
    client_id: u64,
    retry: RetryPolicy,
    dataset: &spechd_ms::SpectrumDataset,
    batch: usize,
) -> (spechd_server::ServiceOutcome, u64) {
    let mut client = JobClient::connect_with(addr, job_id, JobConfig::default(), client_id, retry)
        .expect("connect");
    for chunk in dataset.spectra().chunks(batch) {
        client.submit(chunk.to_vec()).expect("submit");
    }
    let reconnects = client.reconnects();
    let outcome = client.close_and_wait().expect("close_and_wait");
    (outcome, reconnects)
}

/// Unique-enough job ids across tests sharing a server.
fn job_id(tag: u64) -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64
        ^ (tag << 48)
}

/// Frames chopped into 512-byte TCP writes with a pause between them —
/// every frame arrives in many fragments at arbitrary boundaries — must
/// decode and cluster exactly as if they had arrived whole.
#[test]
fn fragmented_frames_reassemble_bit_identically() {
    let server = start_server(resilient_config());
    let proxy = FaultProxy::start(server.addr()).expect("start proxy");
    proxy.push_plan(ProxyPlan::fragmented(512, Duration::from_millis(1)));

    let dataset = synthetic_dataset(120, 0xFA07);
    let (outcome, _) = run_job_via(
        proxy.addr(),
        job_id(1),
        0xF1,
        RetryPolicy::none(),
        &dataset,
        30,
    );

    let batch = SpecHd::new(JobConfig::default().pipeline_config()).run(&dataset);
    assert_service_equivalent(&outcome, &batch, "fragmented frames");
    proxy.shutdown();
    server.shutdown();
}

/// The connection dies mid-`Submit` (client→server byte budget lands
/// inside a frame). The client must reconnect, resume its slot, re-send
/// the unacknowledged batch — and the outcome must be bit-identical to
/// an undisturbed batch run: nothing lost, nothing ingested twice.
#[test]
fn mid_submit_disconnect_resumes_bit_identically() {
    let server = start_server(resilient_config());
    let proxy = FaultProxy::start(server.addr()).expect("start proxy");
    // ~360 KB of submit traffic; the kill lands inside an early batch.
    proxy.push_plan(ProxyPlan::kill_client_to_server_after(60_000));

    let dataset = synthetic_dataset(240, 0xC1A0);
    let (outcome, reconnects) = run_job_via(
        proxy.addr(),
        job_id(2),
        0xC0FFEE,
        test_retry(),
        &dataset,
        25,
    );
    assert!(
        reconnects >= 1,
        "the kill must have forced at least one reconnect"
    );

    let batch = SpecHd::new(JobConfig::default().pipeline_config()).run(&dataset);
    assert_service_equivalent(&outcome, &batch, "mid-submit disconnect + resume");
    proxy.shutdown();
    server.shutdown();
}

/// The connection dies while *results* stream back (server→client byte
/// budget). On rejoin the server replays its result archive; replayed
/// duplicates must be absorbed idempotently and the final outcome stay
/// bit-identical.
#[test]
fn result_stream_disconnect_replays_bit_identically() {
    let server = start_server(resilient_config());
    let proxy = FaultProxy::start(server.addr()).expect("start proxy");
    // Acks for open + a few submits come first; 1500 bytes lands inside
    // the assignment/consensus stream for this dataset.
    proxy.push_plan(ProxyPlan::kill_server_to_client_after(1_500));

    let dataset = synthetic_dataset(240, 0xBEEF);
    let mut client = JobClient::connect_with(
        proxy.addr(),
        job_id(3),
        JobConfig::default(),
        0xD15C,
        test_retry(),
    )
    .expect("connect");
    for chunk in dataset.spectra().chunks(40) {
        client.submit(chunk.to_vec()).expect("submit");
    }
    let outcome = client.close_and_wait().expect("close_and_wait");

    let batch = SpecHd::new(JobConfig::default().pipeline_config()).run(&dataset);
    assert_service_equivalent(&outcome, &batch, "result-stream disconnect + replay");
    proxy.shutdown();
    server.shutdown();
}

/// The registry-level resume contract: a re-sent batch under the last
/// acknowledged sequence number is re-acked with the stored receipt and
/// **not** re-ingested, and an out-of-order sequence is a protocol
/// error.
#[test]
fn duplicate_submit_is_reacked_not_reingested() {
    use spechd_server::JobRegistry;
    use std::sync::{mpsc, Arc};

    let registry = Arc::new(JobRegistry::new(8192));
    let (tx, _rx) = mpsc::sync_channel(64);
    let mut handle = registry
        .open_or_join(1, 7, JobConfig::default(), tx)
        .expect("open");
    let dataset = synthetic_dataset(40, 0xD0D0);
    let batch: Vec<_> = dataset.spectra().to_vec();

    let first = handle.submit(0, batch.clone()).expect("seq 0");
    // The ack was "lost"; the client re-sends the same seq.
    let replayed = handle.submit(0, batch.clone()).expect("seq 0 again");
    assert_eq!(first, replayed, "duplicate seq re-acks the stored receipt");
    assert_eq!(
        handle.stats().submitted,
        batch.len() as u64,
        "the duplicate must not have been ingested"
    );

    let err = handle.submit(5, batch.clone()).expect_err("seq gap");
    assert_eq!(err.code, ErrorCode::ProtocolState);

    let second = handle.submit(1, batch.clone()).expect("seq 1");
    assert_eq!(second.0, batch.len() as u64, "stream indices continue");
    handle.close();
    registry.join_pipelines();
    assert!(handle.is_settled());
}

/// Load shedding: with `max_jobs = 1`, opening a second job is refused
/// with the **retryable** `Busy` code; a client with a retry policy
/// rides it out and succeeds once the first job retires. Fatal errors
/// (config mismatch) are never retried.
#[test]
fn busy_shedding_is_retryable_and_fatal_errors_are_not() {
    let server = start_server(ServerConfig {
        max_jobs: 1,
        // Immediate retirement so the slot frees as soon as job A ends.
        rejoin_grace: Duration::ZERO,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let job_a = job_id(4);
    let job_b = job_id(5);

    let client_a = JobClient::connect(addr, job_a, JobConfig::default()).expect("open job A");

    // Without retries, the shed is surfaced as a retryable error.
    let err = match JobClient::connect(addr, job_b, JobConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("second job must be shed"),
    };
    match &err {
        ClientError::Server { code, .. } => assert_eq!(*code, ErrorCode::Busy),
        other => panic!("expected Busy error frame, got {other}"),
    }
    assert!(err.is_retryable(), "Busy is classified retryable");

    // A mismatched config on an existing job is fatal: no retry loop,
    // the error surfaces immediately even with a policy set.
    let different = JobConfig {
        watermark: JobConfig::default().watermark + 1,
        ..JobConfig::default()
    };
    let err = match JobClient::connect_with(addr, job_a, different, 99, test_retry()) {
        Err(e) => e,
        Ok(_) => panic!("mismatched config must be rejected"),
    };
    match &err {
        ClientError::Server { code, .. } => assert_eq!(*code, ErrorCode::ConfigMismatch),
        other => panic!("expected ConfigMismatch, got {other}"),
    }
    assert!(!err.is_retryable());

    // Retire job A shortly; the retrying connect to job B then lands.
    let finisher = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        client_a.close_and_wait().expect("finish job A")
    });
    let client_b = JobClient::connect_with(addr, job_b, JobConfig::default(), 1, test_retry())
        .expect("retry through Busy");
    finisher.join().expect("job A finisher");
    drop(client_b);
    server.shutdown();
}

fn library_entries(dim: usize, n: usize) -> Vec<LibraryEntryWire> {
    (0..n)
        .map(|i| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EA0 + i as u64);
            LibraryEntryWire {
                mass: 900.0 + i as f64,
                charge: 2,
                is_decoy: i % 3 == 0,
                id: format!("lib{i}"),
                words: BinaryHypervector::random(dim, &mut rng).words().to_vec(),
            }
        })
        .collect()
}

/// Queries are idempotent, so `SearchClient` retries them across a
/// mid-results disconnect: the re-scored hits must equal an undisturbed
/// client's bit for bit (query indices aside — abandoned attempts
/// consume them).
#[test]
fn search_queries_retry_across_disconnect_with_identical_hits() {
    const DIM: usize = 128;
    let server = start_server(resilient_config());
    let job = job_id(6);

    // A direct participant loads the shared library and stays attached,
    // pinning the job while the chaos client reconnects.
    let mut direct = SearchClient::connect(server.addr(), job, DIM as u32).expect("direct connect");
    direct.load(&library_entries(DIM, 40)).expect("load");

    let proxy = FaultProxy::start(server.addr()).expect("start proxy");
    // The connect ack passes; the kill lands inside the hit stream.
    proxy.push_plan(ProxyPlan::kill_server_to_client_after(400));
    let mut chaotic =
        SearchClient::connect_with(proxy.addr(), job, DIM as u32, test_retry()).expect("connect");

    let queries: Vec<QueryWire> = library_entries(DIM, 40)
        .into_iter()
        .step_by(4)
        .map(|e| QueryWire {
            mass: e.mass + 0.5,
            words: e.words,
        })
        .collect();
    let (chaotic_hits, _) = chaotic.search(&queries, 5.0, 3).expect("chaotic search");
    assert!(
        chaotic.reconnects() >= 1,
        "the kill must have forced a reconnect"
    );
    let (direct_hits, _) = direct.search(&queries, 5.0, 3).expect("direct search");

    assert_eq!(chaotic_hits.len(), direct_hits.len());
    for (c, d) in chaotic_hits.iter().zip(&direct_hits) {
        assert_eq!(c.hits, d.hits, "hits must be bit-identical across retries");
    }
    proxy.shutdown();
    server.shutdown();
}
