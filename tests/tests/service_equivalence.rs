//! Served-vs-batch equivalence and server robustness suite.
//!
//! The service promise mirrors the streaming one: N concurrent clients
//! submitting disjoint slices into one job must reassemble a clustering
//! **bit-identical** to a local batch `SpecHd::run` over the union of
//! their spectra in stream order. Around that core sit the lifecycle
//! regressions: a client disconnecting mid-stream leaves a job that
//! still finalizes cleanly for the survivors, malformed frames kill one
//! connection and never the server, idle connections are reaped, and
//! shutdown drains every pipeline.

use spechd_core::SpecHd;
use spechd_ms::{Spectrum, SpectrumDataset};
use spechd_server::protocol::{encode_frame, read_frame};
use spechd_server::{
    ClientError, ErrorCode, Frame, JobClient, JobConfig, Limits, RunningServer, Server,
    ServerConfig, ServiceOutcome, SubmitReceipt,
};
use spechd_tests::{assert_service_equivalent, synthetic_dataset};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(config: ServerConfig) -> RunningServer {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Unique-enough job ids across tests sharing a server.
fn job_id(tag: u64) -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64
        ^ (tag << 48)
}

/// Submit receipts paired with the dataset indices they placed.
type Placements = Vec<(SubmitReceipt, Vec<usize>)>;

/// Submits `dataset`'s round-robin slice `conn` of `connections` in
/// batches, returning the receipts paired with the dataset indices
/// they placed.
fn submit_slice(
    client: &mut JobClient,
    dataset: &SpectrumDataset,
    conn: usize,
    connections: usize,
    batch: usize,
) -> Placements {
    let indices: Vec<usize> = (conn..dataset.len()).step_by(connections).collect();
    indices
        .chunks(batch)
        .map(|chunk| {
            let spectra: Vec<Spectrum> = chunk
                .iter()
                .map(|&i| dataset.spectra()[i].clone())
                .collect();
            let receipt = client.submit(spectra).expect("submit");
            assert_eq!(receipt.count as usize, chunk.len());
            (receipt, chunk.to_vec())
        })
        .collect()
}

/// Rebuilds the union dataset in stream order from submit receipts.
fn union_in_stream_order(dataset: &SpectrumDataset, placements: &Placements) -> SpectrumDataset {
    let mut order: Vec<Option<usize>> = vec![None; dataset.len()];
    for (receipt, indices) in placements {
        for (offset, &dataset_index) in indices.iter().enumerate() {
            let slot = receipt.base as usize + offset;
            assert!(order[slot].is_none(), "stream slot {slot} double-booked");
            order[slot] = Some(dataset_index);
        }
    }
    let mut union = SpectrumDataset::new();
    for slot in order.into_iter().flatten() {
        union.push(dataset.spectra()[slot].clone(), dataset.labels()[slot]);
    }
    union
}

/// The acceptance-gate test: four concurrent clients, one job, disjoint
/// slices — every participant's reassembled outcome is identical, and
/// bit-identical to the batch pipeline on the union in stream order.
#[test]
fn four_concurrent_clients_reassemble_the_batch_outcome() {
    const CONNECTIONS: usize = 4;
    let server = start_server(ServerConfig::default());
    let addr = server.addr();
    let dataset = synthetic_dataset(600, 0x5E4F);
    let job = job_id(1);

    let results: Vec<(Placements, ServiceOutcome)> = std::thread::scope(|scope| {
        let dataset = &dataset;
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|conn| {
                scope.spawn(move || {
                    let mut client =
                        JobClient::connect(addr, job, JobConfig::default()).expect("connect");
                    let placements = submit_slice(&mut client, dataset, conn, CONNECTIONS, 13);
                    let stats = client.flush().expect("flush");
                    assert!(stats.submitted > 0);
                    let outcome = client.close_and_wait().expect("close_and_wait");
                    (placements, outcome)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every participant saw the same reassembled outcome.
    for (c, (_, outcome)) in results.iter().enumerate().skip(1) {
        assert_eq!(
            outcome, &results[0].1,
            "participant {c} reassembled a different outcome"
        );
    }
    // And it is bit-identical to the batch run on the union.
    let all_placements: Placements = results.iter().flat_map(|(p, _)| p.clone()).collect();
    let union = union_in_stream_order(&dataset, &all_placements);
    assert_eq!(union.len(), dataset.len(), "all spectra placed");
    let engine = SpecHd::new(JobConfig::default().pipeline_config());
    let batch = engine.run(&union);
    assert_service_equivalent(&results[0].1, &batch, "4 concurrent clients");
    assert_eq!(results[0].1.stats.done, 1);
    assert_eq!(results[0].1.stats.submitted as usize, dataset.len());

    server.shutdown();
}

/// Satellite regression: a client that disconnects abruptly mid-stream
/// (no `CloseJob`) ends its participation exactly like a close — the
/// survivor still finalizes the job over BOTH clients' spectra, and the
/// server drains cleanly afterwards (no leaked pipeline).
#[test]
fn client_disconnect_mid_stream_finalizes_for_survivors() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();
    let dataset = synthetic_dataset(240, 0xD15C);
    let job = job_id(2);

    let mut casualty = JobClient::connect(addr, job, JobConfig::default()).expect("connect A");
    let mut survivor = JobClient::connect(addr, job, JobConfig::default()).expect("connect B");

    // A submits its full slice (all acks received, so its spectra are
    // ingested at known stream indices), then vanishes without closing.
    let mut placements = submit_slice(&mut casualty, &dataset, 0, 2, 17);
    drop(casualty);

    placements.extend(submit_slice(&mut survivor, &dataset, 1, 2, 17));
    let outcome = survivor.close_and_wait().expect("survivor close_and_wait");

    let union = union_in_stream_order(&dataset, &placements);
    assert_eq!(union.len(), dataset.len());
    let engine = SpecHd::new(JobConfig::default().pipeline_config());
    let batch = engine.run(&union);
    assert_service_equivalent(&outcome, &batch, "disconnect mid-stream");

    // Shutdown joins every pipeline thread: if the dead client's shard
    // worker scope leaked, this would hang instead of returning.
    server.shutdown();
}

/// A malformed frame (wrong magic) gets an error reply and kills that
/// connection — while a job on another connection sails through
/// untouched, proving the server itself survived.
#[test]
fn malformed_frame_kills_connection_not_server() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();

    let mut rogue = TcpStream::connect(addr).expect("connect rogue");
    rogue
        .write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write junk");
    match read_frame(&mut rogue, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error frame, got {other:?}"),
    }
    // The server closed the connection after the error frame.
    let mut rest = Vec::new();
    rogue.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "no frames after the fatal error");

    // The server still serves: a full job on a fresh connection works.
    let dataset = synthetic_dataset(120, 0xBAD);
    let mut client =
        JobClient::connect(addr, job_id(3), JobConfig::default()).expect("connect after rogue");
    let placements = submit_slice(&mut client, &dataset, 0, 1, 40);
    let outcome = client.close_and_wait().expect("close_and_wait");
    let union = union_in_stream_order(&dataset, &placements);
    let engine = SpecHd::new(JobConfig::default().pipeline_config());
    assert_service_equivalent(&outcome, &engine.run(&union), "after malformed peer");

    server.shutdown();
}

/// An oversized length prefix is rejected before any allocation, with
/// the dedicated error code, and closes the connection.
#[test]
fn oversized_length_prefix_rejected_with_error_frame() {
    let config = ServerConfig {
        limits: Limits {
            max_frame_len: 1024,
            ..Limits::default()
        },
        ..ServerConfig::default()
    };
    let server = start_server(config);
    let mut rogue = TcpStream::connect(server.addr()).expect("connect");
    let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    rogue.write_all(&bytes[..12]).expect("write header");
    match read_frame(&mut rogue, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected Oversized error frame, got {other:?}"),
    }
    let mut rest = Vec::new();
    rogue.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty());
    server.shutdown();
}

/// Frames that are well-formed but wrong for the connection state get a
/// `ProtocolState` error and the connection SURVIVES: the same socket
/// can then open a job and use it.
#[test]
fn state_errors_do_not_kill_the_connection() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    // Submit before OpenJob.
    stream
        .write_all(&encode_frame(&Frame::Submit {
            job_id: 9,
            seq: 0,
            spectra: Vec::new(),
        }))
        .expect("write premature submit");
    match read_frame(&mut stream, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::ProtocolState),
        other => panic!("expected ProtocolState error, got {other:?}"),
    }

    // Same connection, proper handshake: works.
    stream
        .write_all(&encode_frame(&Frame::OpenJob {
            job_id: 9,
            client_id: 1,
            config: JobConfig::default(),
        }))
        .expect("write open");
    match read_frame(&mut stream, &Limits::default()) {
        Ok(Frame::JobStats(stats)) => assert_eq!(stats.job_id, 9),
        other => panic!("expected JobStats ack, got {other:?}"),
    }
    // Wrong job id on an open connection: state error, still alive.
    stream
        .write_all(&encode_frame(&Frame::Flush { job_id: 10 }))
        .expect("write wrong-job flush");
    match read_frame(&mut stream, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::ProtocolState),
        other => panic!("expected ProtocolState error, got {other:?}"),
    }
    stream
        .write_all(&encode_frame(&Frame::Flush { job_id: 9 }))
        .expect("write good flush");
    match read_frame(&mut stream, &Limits::default()) {
        Ok(Frame::JobStats(stats)) => assert_eq!(stats.job_id, 9),
        other => panic!("expected JobStats ack, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

/// A connection can run jobs **sequentially**: once a job settles
/// (closed and finished), its handle is vacated and a fresh `OpenJob`
/// on the same socket succeeds instead of being refused as "already
/// has an open job".
#[test]
fn connection_can_run_sequential_jobs() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    for tag in [7u64, 8] {
        let job = job_id(tag);
        stream
            .write_all(&encode_frame(&Frame::OpenJob {
                job_id: job,
                client_id: 1,
                config: JobConfig::default(),
            }))
            .expect("write open");
        match read_frame(&mut stream, &Limits::default()) {
            Ok(Frame::JobStats(stats)) => assert_eq!(stats.job_id, job),
            other => panic!("expected open ack for job tag {tag}, got {other:?}"),
        }
        stream
            .write_all(&encode_frame(&Frame::CloseJob { job_id: job }))
            .expect("write close");
        loop {
            match read_frame(&mut stream, &Limits::default()) {
                Ok(Frame::JobStats(stats)) if stats.done == 1 => break,
                Ok(_) => {}
                other => panic!("waiting for job tag {tag} to finish, got {other:?}"),
            }
        }
    }
    drop(stream);
    server.shutdown();
}

/// A subscriber that never drains its result queue is dropped from the
/// job once the queue fills: the pipeline still completes (a stalled
/// consumer cannot wedge it) and the server buffers no more than the
/// queue's bound on its behalf.
#[test]
fn stalled_subscriber_is_dropped_not_buffered() {
    use spechd_server::JobRegistry;
    use std::sync::{mpsc, Arc};

    const FANOUT_BOUND: usize = 2;
    let registry = Arc::new(JobRegistry::new(8192));
    let (tx, rx) = mpsc::sync_channel(FANOUT_BOUND);
    let mut handle = registry
        .open_or_join(1, 1, JobConfig::default(), tx)
        .expect("open job");
    let dataset = synthetic_dataset(240, 0x57A1);
    handle
        .submit(0, dataset.spectra().to_vec())
        .expect("submit");
    handle.close();

    // Joins the pipeline: hangs here if the stalled subscriber blocked it.
    registry.join_pipelines();
    assert!(handle.is_settled(), "settled once closed and finished");
    assert!(
        rx.try_iter().count() <= FANOUT_BOUND,
        "fan-out buffered beyond the queue bound for a stalled consumer"
    );
}

/// Joining an existing job with a different config is refused.
#[test]
fn config_mismatch_on_join_is_rejected() {
    let server = start_server(ServerConfig::default());
    let job = job_id(4);
    let _first =
        JobClient::connect(server.addr(), job, JobConfig::default()).expect("first participant");
    let different = JobConfig {
        resolution: 2.5,
        ..JobConfig::default()
    };
    match JobClient::connect(server.addr(), job, different) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ConfigMismatch),
        Err(other) => panic!("expected ConfigMismatch, got {other}"),
        Ok(_) => panic!("join with a different config must be rejected"),
    }
    server.shutdown();
}

/// A connection with no open job is reaped after the idle timeout with
/// the dedicated error code; a connection waiting on a live job is not.
#[test]
fn idle_connections_are_reaped_busy_ones_are_not() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(300),
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = start_server(config);

    // Busy: holds an open job, sits longer than the idle timeout, and
    // must still be alive to close it.
    let dataset = synthetic_dataset(40, 0x1D7E);
    let mut busy =
        JobClient::connect(server.addr(), job_id(5), JobConfig::default()).expect("busy connect");
    submit_slice(&mut busy, &dataset, 0, 1, 40);

    // Idle: never opens a job.
    let mut idle = TcpStream::connect(server.addr()).expect("idle connect");
    match read_frame(&mut idle, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        other => panic!("expected IdleTimeout error, got {other:?}"),
    }

    let outcome = busy
        .close_and_wait()
        .expect("busy client survived the idle window");
    assert_eq!(outcome.stats.done, 1);
    server.shutdown();
}

/// An empty job (open, close, no spectra) finalizes to an empty
/// outcome instead of wedging the pipeline.
#[test]
fn empty_job_finalizes_empty() {
    let server = start_server(ServerConfig::default());
    let client =
        JobClient::connect(server.addr(), job_id(6), JobConfig::default()).expect("connect");
    let outcome = client.close_and_wait().expect("close empty job");
    assert!(outcome.kept.is_empty());
    assert!(outcome.labels.is_empty());
    assert!(outcome.consensus.is_empty());
    assert_eq!(outcome.stats.done, 1);
    assert_eq!(outcome.stats.clusters, 0);
    server.shutdown();
}

/// Shutdown stops accepting and wakes parked connections with the
/// dedicated error code.
#[test]
fn shutdown_notifies_parked_connections_and_stops_accepting() {
    let config = ServerConfig {
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = start_server(config);
    let addr = server.addr();
    let mut parked = TcpStream::connect(addr).expect("parked connect");

    // Shut down while the connection is parked between frames; join of
    // the accept loop and pipelines happens inside shutdown().
    server.shutdown();
    match read_frame(&mut parked, &Limits::default()) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::ServerShutdown),
        // The socket may already be closed by the time we read.
        Err(_) => {}
        Ok(other) => panic!("expected ServerShutdown error, got {other:?}"),
    }
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "listener must be gone after shutdown"
    );
}
