//! A TCP fault proxy for chaos-testing the service path.
//!
//! [`FaultProxy`] sits between a client and a `spechd-server`, forwarding
//! bytes in both directions while injecting transport faults the real
//! network can produce:
//!
//! * **kill after N bytes** in either direction — the connection dies
//!   mid-frame, exactly where the byte budget lands (both sockets are
//!   shut down, so each side observes an abrupt disconnect);
//! * **chunking** — forwarded bytes are split into `chunk`-sized TCP
//!   writes, so protocol frames arrive fragmented at arbitrary
//!   boundaries;
//! * **delay** — a fixed pause between forwarded chunks, stretching
//!   frames out in time.
//!
//! Faults are scheduled per **connection**: each accepted connection pops
//! the next [`ProxyPlan`] from the queue ([`FaultProxy::push_plan`]), and
//! connections beyond the queue pass bytes through unmodified — which is
//! what lets a reconnecting client resume over the same proxy address
//! after its first connection was killed.
//!
//! Everything is deterministic in terms of *byte counts*; no randomness
//! is involved, so a failing chaos test replays exactly.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault schedule for one proxied connection. The default plan is a
/// transparent pass-through.
#[derive(Debug, Clone, Default)]
pub struct ProxyPlan {
    /// Kill the connection once this many client→server bytes have been
    /// forwarded (the budget'th byte is the first one lost).
    pub kill_after_client_bytes: Option<u64>,
    /// Kill the connection once this many server→client bytes have been
    /// forwarded.
    pub kill_after_server_bytes: Option<u64>,
    /// Forward in writes of at most this many bytes, splitting frames at
    /// arbitrary boundaries (Nagle is disabled, so chunks tend to travel
    /// as separate segments).
    pub chunk: Option<usize>,
    /// Sleep this long between forwarded chunks.
    pub delay: Option<Duration>,
}

impl ProxyPlan {
    /// A plan that kills the connection after `n` client→server bytes.
    pub fn kill_client_to_server_after(n: u64) -> Self {
        Self {
            kill_after_client_bytes: Some(n),
            ..Self::default()
        }
    }

    /// A plan that kills the connection after `n` server→client bytes.
    pub fn kill_server_to_client_after(n: u64) -> Self {
        Self {
            kill_after_server_bytes: Some(n),
            ..Self::default()
        }
    }

    /// A plan that fragments both directions into `chunk`-byte writes
    /// with `delay` between them.
    pub fn fragmented(chunk: usize, delay: Duration) -> Self {
        Self {
            chunk: Some(chunk.max(1)),
            delay: Some(delay),
            ..Self::default()
        }
    }
}

/// A running TCP fault proxy in front of one upstream address.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    plans: Arc<Mutex<VecDeque<ProxyPlan>>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port forwarding to
    /// `upstream`. Connections consume queued plans in FIFO order;
    /// without a queued plan they pass through unmodified.
    pub fn start(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let plans: Arc<Mutex<VecDeque<ProxyPlan>>> = Arc::default();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_plans = Arc::clone(&plans);
        let accept_thread = std::thread::Builder::new()
            .name("fault-proxy-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    let plan = accept_plans.lock().unwrap().pop_front().unwrap_or_default();
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    spawn_pumps(client, server, plan);
                }
            })
            .expect("spawn proxy accept thread");
        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            plans,
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queues the fault plan for the next not-yet-accepted connection.
    pub fn push_plan(&self, plan: ProxyPlan) {
        self.plans.lock().unwrap().push_back(plan);
    }

    /// Stops accepting. Existing pump threads die with their sockets.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = thread.join();
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One direction's fault knobs, extracted from the connection plan.
struct PumpPlan {
    kill_after: Option<u64>,
    chunk: Option<usize>,
    delay: Option<Duration>,
}

fn spawn_pumps(client: TcpStream, server: TcpStream, plan: ProxyPlan) {
    // Each pump holds a clone of BOTH sockets so a budget exhausted in
    // one direction tears the whole connection down, like a pulled plug.
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    let c2s = PumpPlan {
        kill_after: plan.kill_after_client_bytes,
        chunk: plan.chunk,
        delay: plan.delay,
    };
    let s2c = PumpPlan {
        kill_after: plan.kill_after_server_bytes,
        chunk: plan.chunk,
        delay: plan.delay,
    };
    // Pumps exit when either socket dies; threads are detached — they
    // hold nothing but the sockets.
    let _ = std::thread::Builder::new()
        .name("fault-proxy-c2s".into())
        .spawn(move || pump(client, server, c2s));
    let _ = std::thread::Builder::new()
        .name("fault-proxy-s2c".into())
        .spawn(move || pump(server2, client2, s2c));
}

/// Copies `from` → `to` honoring the plan, then shuts both down.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: PumpPlan) {
    let mut remaining = plan.kill_after;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut bytes = &buf[..n];
        if let Some(budget) = &mut remaining {
            let allowed = usize::try_from(*budget)
                .unwrap_or(usize::MAX)
                .min(bytes.len());
            *budget -= allowed as u64;
            let doomed = allowed < bytes.len();
            bytes = &bytes[..allowed];
            if forward(&mut to, bytes, &plan).is_err() || doomed {
                break;
            }
        } else if forward(&mut to, bytes, &plan).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn forward(to: &mut TcpStream, bytes: &[u8], plan: &PumpPlan) -> std::io::Result<()> {
    let chunk = plan.chunk.unwrap_or(usize::MAX).max(1);
    let mut first = true;
    for piece in bytes.chunks(chunk) {
        if !first {
            if let Some(delay) = plan.delay {
                std::thread::sleep(delay);
            }
        }
        first = false;
        to.write_all(piece)?;
        to.flush()?;
    }
    Ok(())
}
