//! Integration test host crate. All content lives in `tests/`.
