//! Integration test host crate: shared fixtures and equivalence
//! assertions used by the suites in `tests/`.
//!
//! The equivalence helpers encode the workspace's central promise —
//! every alternative execution path (streaming, served-over-TCP) is
//! **bit-identical** to the batch pipeline on the same input sequence —
//! so each suite asserts it the same way instead of drifting apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;

use spechd_core::{SpecHdOutcome, StreamOutcome};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use spechd_server::ServiceOutcome;

/// The suites' standard synthetic dataset: `n` spectra over `n/5`
/// peptides (min 2), deterministic in `seed`.
pub fn synthetic_dataset(n: usize, seed: u64) -> SpectrumDataset {
    SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: (n / 5).max(2),
        seed,
        ..SyntheticConfig::default()
    })
    .generate()
}

/// Full-outcome equality between a streaming run and the batch run on
/// the same sequence: labels, consensus, kept mapping, hypervector
/// archive, and the deterministic statistics.
pub fn assert_equivalent(streamed: &StreamOutcome, batch: &SpecHdOutcome, context: &str) {
    assert_eq!(
        streamed.outcome.assignment(),
        batch.assignment(),
        "labels diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.consensus(),
        batch.consensus(),
        "consensus diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.kept(),
        batch.kept(),
        "kept mapping diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.hypervectors(),
        batch.hypervectors(),
        "hypervector archive diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.stats().buckets,
        batch.stats().buckets,
        "bucket stats diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.stats().preprocess,
        batch.stats().preprocess,
        "preprocess stats diverged: {context}"
    );
    assert_eq!(
        streamed.outcome.stats().hac,
        batch.stats().hac,
        "HAC work counters diverged: {context}"
    );
}

/// Full-outcome equality between a served job's reassembled result and
/// the batch run on the union of all participants' spectra in stream
/// order: kept set, dense labels, consensus medoids, cluster count,
/// and the HAC work counters the final stats frame carries.
pub fn assert_service_equivalent(served: &ServiceOutcome, batch: &SpecHdOutcome, context: &str) {
    let served_kept: Vec<usize> = served.kept.iter().map(|&i| i as usize).collect();
    assert_eq!(
        served_kept,
        batch.kept(),
        "kept mapping diverged: {context}"
    );
    assert_eq!(
        served.labels,
        batch.assignment().labels(),
        "labels diverged: {context}"
    );
    let served_consensus: Vec<usize> = served.consensus.iter().map(|&i| i as usize).collect();
    assert_eq!(
        served_consensus,
        batch.consensus(),
        "consensus diverged: {context}"
    );
    assert_eq!(
        served.stats.clusters as usize,
        batch.assignment().num_clusters(),
        "cluster count diverged: {context}"
    );
    let hac = batch.stats().hac;
    assert_eq!(
        (
            served.stats.hac_comparisons,
            served.stats.hac_updates,
            served.stats.hac_merges
        ),
        (hac.comparisons, hac.updates, hac.merges),
        "HAC work counters diverged: {context}"
    );
    assert_eq!(
        served.stats.kept as usize,
        batch.kept().len(),
        "final kept count diverged: {context}"
    );
}
