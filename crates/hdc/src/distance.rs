//! Batch Hamming-distance helpers used by the clustering front end.
//!
//! The FPGA distance kernel streams encoded spectra out of HBM and fills the
//! lower-triangular distance matrix with XOR + popcount results; these
//! helpers are the bit-exact software equivalents.

use crate::BinaryHypervector;

/// Computes all pairwise Hamming distances among `hvs`, returned as a
/// condensed lower-triangular vector: entry for pair `(i, j)` with `i > j`
/// lives at `i * (i - 1) / 2 + j`.
///
/// Distances fit `u16` whenever `dim <= 65535`, matching the paper's 16-bit
/// fixed-point storage choice.
///
/// # Panics
///
/// Panics if hypervectors have inconsistent dimensionality or if
/// `dim > u16::MAX as usize`.
///
/// # Examples
///
/// ```
/// use spechd_hdc::{distance, BinaryHypervector};
/// let hvs = vec![
///     BinaryHypervector::zeros(64),
///     BinaryHypervector::ones(64),
///     BinaryHypervector::from_fn(64, |i| i < 32),
/// ];
/// let d = distance::pairwise_condensed(&hvs);
/// assert_eq!(d, vec![64, 32, 32]); // (1,0), (2,0), (2,1)
/// ```
pub fn pairwise_condensed(hvs: &[BinaryHypervector]) -> Vec<u16> {
    if hvs.is_empty() {
        return Vec::new();
    }
    let dim = hvs[0].dim();
    assert!(
        dim <= u16::MAX as usize,
        "dim {dim} exceeds 16-bit distance range"
    );
    let n = hvs.len();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 1..n {
        for j in 0..i {
            out.push(hvs[i].hamming(&hvs[j]) as u16);
        }
    }
    out
}

/// Distances from one query to every element of `hvs`.
///
/// # Panics
///
/// Panics if dimensionalities differ.
pub fn one_to_many(query: &BinaryHypervector, hvs: &[BinaryHypervector]) -> Vec<u32> {
    hvs.iter().map(|h| query.hamming(h)).collect()
}

/// Index and distance of the nearest neighbor of `query` in `hvs`,
/// excluding `skip` (pass `usize::MAX` to exclude nothing).
///
/// Returns `None` if there is no eligible element.
pub fn nearest_neighbor(
    query: &BinaryHypervector,
    hvs: &[BinaryHypervector],
    skip: usize,
) -> Option<(usize, u32)> {
    hvs.iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(i, h)| (i, query.hamming(h)))
        .min_by_key(|&(_, d)| d)
}

/// Mean pairwise normalized Hamming distance of a set — a cheap dispersion
/// statistic used by diagnostics and tests.
///
/// Returns 0 for sets with fewer than two elements.
pub fn mean_pairwise_distance(hvs: &[BinaryHypervector]) -> f64 {
    let n = hvs.len();
    if n < 2 {
        return 0.0;
    }
    let dim = hvs[0].dim() as f64;
    let mut total = 0.0;
    for i in 1..n {
        for j in 0..i {
            total += hvs[i].hamming(&hvs[j]) as f64 / dim;
        }
    }
    total / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::Xoshiro256StarStar;

    fn random_set(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect()
    }

    #[test]
    fn condensed_length_and_indexing() {
        let hvs = random_set(10, 128, 1);
        let d = pairwise_condensed(&hvs);
        assert_eq!(d.len(), 45);
        // Spot-check the canonical index formula.
        for i in 1..10usize {
            for j in 0..i {
                let idx = i * (i - 1) / 2 + j;
                assert_eq!(u32::from(d[idx]), hvs[i].hamming(&hvs[j]));
            }
        }
    }

    #[test]
    fn condensed_empty_and_singleton() {
        assert!(pairwise_condensed(&[]).is_empty());
        assert!(pairwise_condensed(&random_set(1, 64, 2)).is_empty());
    }

    #[test]
    fn one_to_many_matches_pairwise() {
        let hvs = random_set(6, 256, 3);
        let d = one_to_many(&hvs[0], &hvs[1..]);
        for (k, dist) in d.iter().enumerate() {
            assert_eq!(*dist, hvs[0].hamming(&hvs[k + 1]));
        }
    }

    #[test]
    fn nearest_neighbor_finds_planted_match() {
        let mut hvs = random_set(8, 1024, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut near = hvs[3].clone();
        near.flip_random_bits(10, &mut rng);
        hvs.push(near);
        let (idx, d) = nearest_neighbor(&hvs[3], &hvs, 3).unwrap();
        assert_eq!(idx, 8);
        assert_eq!(d, 10);
    }

    #[test]
    fn nearest_neighbor_skip_self() {
        let hvs = random_set(3, 64, 6);
        let (idx, _) = nearest_neighbor(&hvs[1], &hvs, 1).unwrap();
        assert_ne!(idx, 1);
    }

    #[test]
    fn nearest_neighbor_empty_returns_none() {
        let hvs: Vec<BinaryHypervector> = Vec::new();
        let q = BinaryHypervector::zeros(8);
        assert!(nearest_neighbor(&q, &hvs, usize::MAX).is_none());
    }

    #[test]
    fn mean_pairwise_distance_random_near_half() {
        let hvs = random_set(12, 2048, 7);
        let m = mean_pairwise_distance(&hvs);
        assert!((0.45..0.55).contains(&m), "mean {m}");
    }

    #[test]
    fn mean_pairwise_distance_degenerate() {
        assert_eq!(mean_pairwise_distance(&[]), 0.0);
        assert_eq!(mean_pairwise_distance(&random_set(1, 64, 8)), 0.0);
    }
}
