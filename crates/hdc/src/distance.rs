//! Batch Hamming-distance kernels used by the clustering front end.
//!
//! The FPGA distance kernel streams encoded spectra out of HBM and fills the
//! lower-triangular distance matrix with XOR + popcount results; these
//! kernels are the bit-exact software equivalents.
//!
//! Two tiers are provided:
//!
//! * **Scalar reference** — [`pairwise_condensed`], [`one_to_many`],
//!   [`nearest_neighbor`] operate on `&[BinaryHypervector]` one pair at a
//!   time. Simple, allocation-per-vector, and kept as the bit-exact oracle
//!   the packed tier is tested against.
//! * **Packed engine** — [`PackedDistanceEngine`] (and the convenience
//!   wrappers [`pairwise_condensed_packed`], [`one_to_many_packed`],
//!   [`neighbors_within`]) runs over an [`HvPack`]'s contiguous buffer in
//!   cache-sized row/column tiles, register-blocked four columns at a time,
//!   with row tiles distributed across scoped worker threads. This mirrors
//!   how the hardware kernel batches packed spectra instead of touching one
//!   pair at a time.
//!
//! # Distance type
//!
//! Every batch kernel returns distances as `u16`: a Hamming distance is
//! bounded by `dim`, every kernel asserts `dim <= u16::MAX`, and 16-bit
//! fixed point is exactly what the paper's FPGA keeps in HBM for the
//! condensed matrix (§III-C). The scalar [`BinaryHypervector::hamming`]
//! primitive stays `u32` (it has no dim bound of its own); the batch layer
//! is where the 16-bit storage contract lives.

use crate::{BinaryHypervector, HvPack};
use std::sync::Mutex;

/// Length of the condensed strict lower triangle over `n` points,
/// `n·(n−1)/2`, computed with a checked multiply.
///
/// The even factor is halved before multiplying, so the check fires only
/// when the *result* overflows `usize` (reachable on 32-bit targets at
/// n ≈ 93 000, not before).
///
/// # Panics
///
/// Panics with a clear message if `n·(n−1)/2` overflows `usize`.
pub fn condensed_len(n: usize) -> usize {
    if n < 2 {
        return 0;
    }
    let (a, b) = if n % 2 == 0 {
        (n / 2, n - 1)
    } else {
        (n, (n - 1) / 2)
    };
    a.checked_mul(b)
        .unwrap_or_else(|| panic!("condensed matrix over n = {n} points overflows usize"))
}

/// Computes all pairwise Hamming distances among `hvs`, returned as a
/// condensed lower-triangular vector: entry for pair `(i, j)` with `i > j`
/// lives at `i * (i - 1) / 2 + j`.
///
/// This is the scalar reference path; [`pairwise_condensed_packed`] is the
/// tiled equivalent over an [`HvPack`] and is bit-exact with this one.
///
/// # Panics
///
/// Panics if hypervectors have inconsistent dimensionality or if
/// `dim > u16::MAX as usize`.
///
/// # Examples
///
/// ```
/// use spechd_hdc::{distance, BinaryHypervector};
/// let hvs = vec![
///     BinaryHypervector::zeros(64),
///     BinaryHypervector::ones(64),
///     BinaryHypervector::from_fn(64, |i| i < 32),
/// ];
/// let d = distance::pairwise_condensed(&hvs);
/// assert_eq!(d, vec![64, 32, 32]); // (1,0), (2,0), (2,1)
/// ```
pub fn pairwise_condensed(hvs: &[BinaryHypervector]) -> Vec<u16> {
    if hvs.is_empty() {
        return Vec::new();
    }
    assert_dim_fits_u16(hvs[0].dim());
    let n = hvs.len();
    let mut out = Vec::with_capacity(condensed_len(n));
    for i in 1..n {
        for j in 0..i {
            out.push(hvs[i].hamming(&hvs[j]) as u16);
        }
    }
    out
}

/// Distances from one query to every element of `hvs`.
///
/// Returns `u16` distances — see the module docs for the shared distance
/// type.
///
/// # Panics
///
/// Panics if dimensionalities differ or `dim > u16::MAX as usize`.
pub fn one_to_many(query: &BinaryHypervector, hvs: &[BinaryHypervector]) -> Vec<u16> {
    assert_dim_fits_u16(query.dim());
    hvs.iter().map(|h| query.hamming(h) as u16).collect()
}

/// Index and distance of the nearest neighbor of `query` in `hvs`,
/// excluding `skip` (pass `usize::MAX` to exclude nothing).
///
/// Returns `None` if there is no eligible element.
///
/// # Panics
///
/// Panics if dimensionalities differ or `dim > u16::MAX as usize`.
pub fn nearest_neighbor(
    query: &BinaryHypervector,
    hvs: &[BinaryHypervector],
    skip: usize,
) -> Option<(usize, u16)> {
    assert_dim_fits_u16(query.dim());
    hvs.iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(i, h)| (i, query.hamming(h) as u16))
        .min_by_key(|&(_, d)| d)
}

/// Mean pairwise normalized Hamming distance of a set — a cheap dispersion
/// statistic used by diagnostics and tests.
///
/// Returns 0 for sets with fewer than two elements.
pub fn mean_pairwise_distance(hvs: &[BinaryHypervector]) -> f64 {
    let n = hvs.len();
    if n < 2 {
        return 0.0;
    }
    let dim = hvs[0].dim() as f64;
    let mut total = 0.0;
    for i in 1..n {
        for j in 0..i {
            total += hvs[i].hamming(&hvs[j]) as f64 / dim;
        }
    }
    total / condensed_len(n) as f64
}

fn assert_dim_fits_u16(dim: usize) {
    assert!(
        dim <= u16::MAX as usize,
        "dim {dim} exceeds 16-bit distance range"
    );
}

/// All pairwise distances over a pack with the default engine — see
/// [`PackedDistanceEngine::pairwise_condensed`].
pub fn pairwise_condensed_packed(pack: &HvPack) -> Vec<u16> {
    PackedDistanceEngine::new().pairwise_condensed(pack)
}

/// Query-to-all distances over a pack with the default engine — see
/// [`PackedDistanceEngine::one_to_many`].
pub fn one_to_many_packed(query: &BinaryHypervector, pack: &HvPack) -> Vec<u16> {
    PackedDistanceEngine::new().one_to_many(query, pack)
}

/// Epsilon-neighborhood lists over a pack with the default engine — see
/// [`PackedDistanceEngine::neighbors_within`].
pub fn neighbors_within(pack: &HvPack, eps: u32) -> Vec<Vec<usize>> {
    PackedDistanceEngine::new().neighbors_within(pack, eps)
}

/// Tiled, multithreaded Hamming-distance engine over an [`HvPack`].
///
/// The engine blocks the N×N pair space into `tile_rows`-sized row and
/// column tiles so both operand blocks stay cache-resident (at the paper's
/// `D = 2048` a 64-row tile is 16 KiB), register-blocks the inner loop four
/// columns wide so each query word is loaded once per four XOR+popcount
/// lanes, and distributes row tiles across `std::thread::scope` workers
/// pulling from a shared queue. Tiles are independent, so the output is
/// deterministic and bit-exact with the scalar reference regardless of
/// worker count.
///
/// # Examples
///
/// ```
/// use spechd_hdc::{distance::PackedDistanceEngine, BinaryHypervector, HvPack};
/// let hvs = vec![
///     BinaryHypervector::zeros(64),
///     BinaryHypervector::ones(64),
///     BinaryHypervector::from_fn(64, |i| i < 32),
/// ];
/// let pack = HvPack::from_hypervectors(64, &hvs);
/// let engine = PackedDistanceEngine::new().threads(1);
/// assert_eq!(engine.pairwise_condensed(&pack), vec![64, 32, 32]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedDistanceEngine {
    tile_rows: usize,
    threads: usize,
}

impl Default for PackedDistanceEngine {
    fn default() -> Self {
        Self {
            tile_rows: 64,
            threads: 0,
        }
    }
}

impl PackedDistanceEngine {
    /// Engine with the default tile size (64 rows) and automatic worker
    /// count ([`std::thread::available_parallelism`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the row/column tile size.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows == 0`.
    pub fn tile_rows(mut self, tile_rows: usize) -> Self {
        assert!(tile_rows > 0, "tile size must be positive");
        self.tile_rows = tile_rows;
        self
    }

    /// Sets the worker count; `0` means one worker per available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker count this engine resolves to at dispatch time.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            // available_parallelism reads cgroup files on Linux — far too
            // slow to query per kernel call; resolve it once per process.
            static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *AUTO.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        } else {
            self.threads
        }
    }

    /// All pairwise distances over the pack's rows, condensed
    /// lower-triangular (same layout as [`pairwise_condensed`]).
    ///
    /// # Panics
    ///
    /// Panics if `pack.dim() > u16::MAX as usize`.
    pub fn pairwise_condensed(&self, pack: &HvPack) -> Vec<u16> {
        assert_dim_fits_u16(pack.dim());
        let n = pack.len();
        let mut out = vec![0u16; condensed_len(n)];

        // Row tiles own disjoint, contiguous output ranges: rows [lo, hi)
        // cover condensed indices [len(lo), len(hi)).
        let mut jobs: Vec<(usize, usize, &mut [u16])> = Vec::new();
        let mut rest = out.as_mut_slice();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + self.tile_rows).min(n);
            let (chunk, tail) = rest.split_at_mut(condensed_len(hi) - condensed_len(lo));
            jobs.push((lo, hi, chunk));
            rest = tail;
            lo = hi;
        }

        self.dispatch(jobs, |(lo, hi, chunk)| {
            fill_row_tile(pack, lo, hi, self.tile_rows, chunk);
        });
        out
    }

    /// Distances from `query` to every row of the pack, parallelized over
    /// contiguous row ranges.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != pack.dim()` or
    /// `pack.dim() > u16::MAX as usize`.
    pub fn one_to_many(&self, query: &BinaryHypervector, pack: &HvPack) -> Vec<u16> {
        self.one_to_many_range(query, pack, 0..pack.len())
    }

    /// Distances from `query` to the pack rows in `range` only:
    /// `out[k]` is the distance to row `range.start + k`. This is the
    /// windowed variant of [`PackedDistanceEngine::one_to_many`] that
    /// library search uses to score a contiguous mass-sorted candidate
    /// slice without gathering it into a fresh pack; it is bit-exact
    /// with slicing the full result.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != pack.dim()`,
    /// `pack.dim() > u16::MAX as usize`, or the range is out of bounds.
    pub fn one_to_many_range(
        &self,
        query: &BinaryHypervector,
        pack: &HvPack,
        range: std::ops::Range<usize>,
    ) -> Vec<u16> {
        assert_eq!(
            query.dim(),
            pack.dim(),
            "query/pack dimensionality mismatch"
        );
        assert_dim_fits_u16(pack.dim());
        assert!(
            range.start <= range.end && range.end <= pack.len(),
            "row range {range:?} out of bounds for pack of len {}",
            pack.len()
        );
        let base = range.start;
        let n = range.len();
        let mut out = vec![0u16; n];
        let chunk_rows = n.div_ceil(self.resolved_threads().max(1)).max(1);
        let jobs: Vec<(usize, &mut [u16])> = out
            .chunks_mut(chunk_rows)
            .enumerate()
            .map(|(k, c)| (base + k * chunk_rows, c))
            .collect();
        let qw = query.words();
        self.dispatch(jobs, |(lo, chunk)| {
            for (off, d) in chunk.iter_mut().enumerate() {
                *d = hamming_words(qw, pack.row(lo + off)) as u16;
            }
        });
        out
    }

    /// For every row `p`, the ascending list of rows `q != p` with
    /// `hamming(p, q) <= eps` — the epsilon-neighborhood query DBSCAN
    /// consumes directly, without ever materializing the O(n²) distance
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `pack.dim() > u16::MAX as usize`.
    pub fn neighbors_within(&self, pack: &HvPack, eps: u32) -> Vec<Vec<usize>> {
        assert_dim_fits_u16(pack.dim());
        let n = pack.len();
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(self.tile_rows)
            .map(|lo| (lo, (lo + self.tile_rows).min(n)))
            .collect();
        let results: Mutex<Vec<(usize, Vec<Vec<usize>>)>> =
            Mutex::new(Vec::with_capacity(ranges.len()));

        // Each row tile scans all n columns (symmetric pairs are evaluated
        // once per side): that keeps row tiles fully independent for the
        // worker queue at the cost of doing the pair space twice.
        self.dispatch(ranges, |(lo, hi)| {
            let mut lists: Vec<Vec<usize>> = vec![Vec::new(); hi - lo];
            // Column tiles ascend, so each list comes out sorted.
            for cj in (0..n).step_by(self.tile_rows) {
                let cj_hi = (cj + self.tile_rows).min(n);
                for (i, list) in (lo..hi).zip(lists.iter_mut()) {
                    let row_i = pack.row(i);
                    let mut j = cj;
                    while j + 4 <= cj_hi {
                        let d = hamming_words_x4(
                            row_i,
                            pack.row(j),
                            pack.row(j + 1),
                            pack.row(j + 2),
                            pack.row(j + 3),
                        );
                        for (t, &dt) in d.iter().enumerate() {
                            if j + t != i && dt <= eps {
                                list.push(j + t);
                            }
                        }
                        j += 4;
                    }
                    while j < cj_hi {
                        if j != i && hamming_words(row_i, pack.row(j)) <= eps {
                            list.push(j);
                        }
                        j += 1;
                    }
                }
            }
            results
                .lock()
                .expect("no panics hold the lock")
                .push((lo, lists));
        });

        let mut per_tile = results.into_inner().expect("workers joined");
        per_tile.sort_by_key(|&(lo, _)| lo);
        per_tile.into_iter().flat_map(|(_, lists)| lists).collect()
    }

    /// Runs `work` over `jobs`, pulling from a shared queue across scoped
    /// worker threads (or inline when one worker suffices).
    fn dispatch<J: Send>(&self, jobs: Vec<J>, work: impl Fn(J) + Sync) {
        let workers = self.resolved_threads().min(jobs.len()).max(1);
        if workers == 1 {
            for job in jobs {
                work(job);
            }
            return;
        }
        let queue = Mutex::new(jobs.into_iter());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("no panics hold the lock").next();
                    match job {
                        Some(job) => work(job),
                        None => break,
                    }
                });
            }
        });
    }
}

/// Fills the condensed output rows `[lo, hi)` of a row tile, walking
/// column tiles of the same width so both operand blocks stay in cache.
fn fill_row_tile(pack: &HvPack, lo: usize, hi: usize, tile: usize, chunk: &mut [u16]) {
    let base = condensed_len(lo);
    for cj in (0..hi).step_by(tile) {
        let cj_hi = (cj + tile).min(hi);
        for i in lo.max(cj + 1)..hi {
            let row_i = pack.row(i);
            let j_hi = cj_hi.min(i);
            let row_off = condensed_len(i) - base;
            let out_row = &mut chunk[row_off + cj..row_off + j_hi];
            let mut j = cj;
            // Register block: four columns share each loaded query word.
            while j + 4 <= j_hi {
                let d = hamming_words_x4(
                    row_i,
                    pack.row(j),
                    pack.row(j + 1),
                    pack.row(j + 2),
                    pack.row(j + 3),
                );
                out_row[j - cj] = d[0] as u16;
                out_row[j - cj + 1] = d[1] as u16;
                out_row[j - cj + 2] = d[2] as u16;
                out_row[j - cj + 3] = d[3] as u16;
                j += 4;
            }
            while j < j_hi {
                out_row[j - cj] = hamming_words(row_i, pack.row(j)) as u16;
                j += 1;
            }
        }
    }
}

// The u64 accumulators below are deliberate: summing popcounts into 64-bit
// lanes lets LLVM keep vectorized `vpopcntq`/pshufb results in full-width
// lanes instead of narrowing per iteration, which measures ~25% faster at
// D = 2048 on AVX-512 hardware.

#[inline]
fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as u64)
        .sum::<u64>() as u32
}

#[inline]
fn hamming_words_x4(q: &[u64], b0: &[u64], b1: &[u64], b2: &[u64], b3: &[u64]) -> [u32; 4] {
    let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
    for ((((&w, &x0), &x1), &x2), &x3) in q.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s0 += (w ^ x0).count_ones() as u64;
        s1 += (w ^ x1).count_ones() as u64;
        s2 += (w ^ x2).count_ones() as u64;
        s3 += (w ^ x3).count_ones() as u64;
    }
    [s0 as u32, s1 as u32, s2 as u32, s3 as u32]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::Xoshiro256StarStar;

    fn random_set(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect()
    }

    #[test]
    fn condensed_length_and_indexing() {
        let hvs = random_set(10, 128, 1);
        let d = pairwise_condensed(&hvs);
        assert_eq!(d.len(), 45);
        // Spot-check the canonical index formula.
        for i in 1..10usize {
            for j in 0..i {
                let idx = i * (i - 1) / 2 + j;
                assert_eq!(u32::from(d[idx]), hvs[i].hamming(&hvs[j]));
            }
        }
    }

    #[test]
    fn condensed_empty_and_singleton() {
        assert!(pairwise_condensed(&[]).is_empty());
        assert!(pairwise_condensed(&random_set(1, 64, 2)).is_empty());
    }

    #[test]
    fn condensed_len_small_values() {
        assert_eq!(condensed_len(0), 0);
        assert_eq!(condensed_len(1), 0);
        assert_eq!(condensed_len(2), 1);
        assert_eq!(condensed_len(257), 257 * 256 / 2);
    }

    #[test]
    fn one_to_many_matches_pairwise() {
        let hvs = random_set(6, 256, 3);
        let d = one_to_many(&hvs[0], &hvs[1..]);
        for (k, dist) in d.iter().enumerate() {
            assert_eq!(u32::from(*dist), hvs[0].hamming(&hvs[k + 1]));
        }
    }

    #[test]
    fn nearest_neighbor_finds_planted_match() {
        let mut hvs = random_set(8, 1024, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut near = hvs[3].clone();
        near.flip_random_bits(10, &mut rng);
        hvs.push(near);
        let (idx, d) = nearest_neighbor(&hvs[3], &hvs, 3).unwrap();
        assert_eq!(idx, 8);
        assert_eq!(d, 10);
    }

    #[test]
    fn nearest_neighbor_skip_self() {
        let hvs = random_set(3, 64, 6);
        let (idx, _) = nearest_neighbor(&hvs[1], &hvs, 1).unwrap();
        assert_ne!(idx, 1);
    }

    #[test]
    fn nearest_neighbor_empty_returns_none() {
        let hvs: Vec<BinaryHypervector> = Vec::new();
        let q = BinaryHypervector::zeros(8);
        assert!(nearest_neighbor(&q, &hvs, usize::MAX).is_none());
    }

    #[test]
    fn mean_pairwise_distance_random_near_half() {
        let hvs = random_set(12, 2048, 7);
        let m = mean_pairwise_distance(&hvs);
        assert!((0.45..0.55).contains(&m), "mean {m}");
    }

    #[test]
    fn mean_pairwise_distance_degenerate() {
        assert_eq!(mean_pairwise_distance(&[]), 0.0);
        assert_eq!(mean_pairwise_distance(&random_set(1, 64, 8)), 0.0);
    }

    #[test]
    fn packed_pairwise_matches_scalar() {
        for &(n, dim) in &[(9usize, 70usize), (33, 192), (130, 2048)] {
            let hvs = random_set(n, dim, (n + dim) as u64);
            let pack = HvPack::from_hypervectors(dim, &hvs);
            let scalar = pairwise_condensed(&hvs);
            for threads in [1, 2] {
                for tile in [5, 64] {
                    let engine = PackedDistanceEngine::new().threads(threads).tile_rows(tile);
                    assert_eq!(
                        engine.pairwise_condensed(&pack),
                        scalar,
                        "n {n} dim {dim} threads {threads} tile {tile}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_pairwise_empty_and_singleton() {
        let pack = HvPack::new(64);
        assert!(pairwise_condensed_packed(&pack).is_empty());
        let pack = HvPack::from_hypervectors(64, &random_set(1, 64, 9));
        assert!(pairwise_condensed_packed(&pack).is_empty());
    }

    #[test]
    fn packed_one_to_many_matches_scalar() {
        let hvs = random_set(41, 300, 10);
        let pack = HvPack::from_hypervectors(300, &hvs);
        let q = &hvs[7];
        let scalar = one_to_many(q, &hvs);
        for threads in [1, 3] {
            let engine = PackedDistanceEngine::new().threads(threads);
            assert_eq!(engine.one_to_many(q, &pack), scalar, "threads {threads}");
        }
    }

    #[test]
    fn one_to_many_range_matches_full_slice() {
        let hvs = random_set(57, 2048, 12);
        let pack = HvPack::from_hypervectors(2048, &hvs);
        let q = &hvs[19];
        let full = one_to_many(q, &hvs);
        for threads in [1, 3] {
            let engine = PackedDistanceEngine::new().threads(threads);
            for range in [0..57, 0..0, 13..13, 5..31, 56..57, 0..1] {
                assert_eq!(
                    engine.one_to_many_range(q, &pack, range.clone()),
                    &full[range.clone()],
                    "range {range:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn one_to_many_range_rejects_out_of_bounds() {
        let hvs = random_set(4, 64, 13);
        let pack = HvPack::from_hypervectors(64, &hvs);
        PackedDistanceEngine::new().one_to_many_range(&hvs[0], &pack, 2..5);
    }

    #[test]
    fn neighbors_within_matches_bruteforce() {
        let hvs = random_set(37, 256, 11);
        let pack = HvPack::from_hypervectors(256, &hvs);
        for eps in [0u32, 120, 256] {
            let expect: Vec<Vec<usize>> = (0..37)
                .map(|p| {
                    (0..37)
                        .filter(|&q| q != p && hvs[p].hamming(&hvs[q]) <= eps)
                        .collect()
                })
                .collect();
            for threads in [1, 2] {
                let engine = PackedDistanceEngine::new().threads(threads).tile_rows(8);
                assert_eq!(
                    engine.neighbors_within(&pack, eps),
                    expect,
                    "eps {eps} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn engine_resolves_thread_count() {
        assert_eq!(PackedDistanceEngine::new().threads(3).resolved_threads(), 3);
        assert!(PackedDistanceEngine::new().resolved_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "16-bit distance range")]
    fn packed_pairwise_rejects_oversized_dim() {
        let pack = HvPack::new(70000);
        pairwise_condensed_packed(&pack);
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_panics() {
        PackedDistanceEngine::new().tile_rows(0);
    }
}
