//! Binary hyperdimensional computing (HDC) core for SpecHD.
//!
//! This crate implements the hyperdimensional machinery of the SpecHD paper
//! (DATE 2024): spectra are encoded into dense binary *hypervectors* of
//! dimensionality `D` (the paper uses `D = 2048`) via the **ID-Level**
//! scheme, and compared with Hamming distance computed by XOR + popcount —
//! exactly the operations the paper maps onto FPGA LUTs.
//!
//! Layout of the crate:
//!
//! * [`BinaryHypervector`] — bit-packed (64 bits/word) binary hypervector
//!   with XOR/AND/OR, popcount and Hamming distance.
//! * [`MajorityAccumulator`] — the pointwise accumulate-then-threshold
//!   bundler of Eq. (2) in the paper.
//! * [`ItemMemory`] / [`LevelMemory`] — pre-allocated random `ID[0,f]`
//!   vectors for m/z bins and *correlated* `L[0,q]` vectors for quantized
//!   intensities.
//! * [`IdLevelEncoder`] — the full spectrum encoder:
//!   `spectra_i = Σ (ID_i ⊕ L_j)` followed by a pointwise majority; batch
//!   encoding can write straight into an [`HvPack`].
//! * [`HvPack`] — contiguous struct-of-arrays storage for N packed
//!   hypervectors, the substrate of the batch distance kernels.
//! * [`distance`] — batch Hamming distance kernels: scalar reference
//!   helpers plus the tiled, multithreaded
//!   [`distance::PackedDistanceEngine`] over an [`HvPack`].
//!
//! # Example: encode two peak lists and compare them
//!
//! ```
//! use spechd_hdc::{EncoderConfig, IdLevelEncoder};
//!
//! let encoder = IdLevelEncoder::new(EncoderConfig {
//!     dim: 2048,
//!     mz_bins: 1024,
//!     intensity_levels: 32,
//!     mz_range: (200.0, 2000.0),
//!     seed: 7,
//! });
//! let a = encoder.encode(&[(500.02, 1.0), (720.4, 0.5), (991.1, 0.2)]);
//! let b = encoder.encode(&[(500.03, 1.0), (720.4, 0.45), (991.1, 0.2)]);
//! let c = encoder.encode(&[(301.0, 0.9), (455.5, 0.8), (1200.8, 0.7)]);
//! assert!(a.hamming(&b) < a.hamming(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
pub mod distance;
mod encoder;
mod hypervector;
mod item_memory;
mod pack;
mod quantize;

pub use accumulator::MajorityAccumulator;
pub use encoder::{EncoderConfig, IdLevelEncoder};
pub use hypervector::BinaryHypervector;
pub use item_memory::{ItemMemory, LevelMemory};
pub use pack::{HvPack, PackError};
pub use quantize::{IntensityQuantizer, IntensityScale, MzQuantizer};
