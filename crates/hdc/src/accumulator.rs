//! Pointwise majority bundling (Eq. 2 of the SpecHD paper).

use crate::BinaryHypervector;

/// Accumulates bound hypervectors and binarizes with a pointwise majority.
///
/// The SpecHD encoder XORs an `ID` vector with a `Level` vector for every
/// peak and sums the results per dimension; the final spectrum hypervector
/// sets each bit to the majority vote of the accumulated terms. In hardware
/// this is an array of small signed counters next to the encoding pipeline;
/// here it is a `Vec<i32>` holding `#ones − #zeros` per dimension.
///
/// Ties (possible when an even number of vectors was accumulated) are broken
/// deterministically towards zero, matching the `>` comparator the HLS
/// kernel synthesizes.
///
/// # Examples
///
/// ```
/// use spechd_hdc::{BinaryHypervector, MajorityAccumulator};
///
/// let a = BinaryHypervector::from_fn(8, |i| i < 6); // 11111100
/// let b = BinaryHypervector::from_fn(8, |i| i < 4); // 11110000
/// let c = BinaryHypervector::from_fn(8, |i| i < 2); // 11000000
/// let mut acc = MajorityAccumulator::new(8);
/// acc.add(&a);
/// acc.add(&b);
/// acc.add(&c);
/// let hv = acc.finalize();
/// // Majority of three: bits 0..4 set (>=2 votes), bits 4..8 clear.
/// assert_eq!(hv, BinaryHypervector::from_fn(8, |i| i < 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityAccumulator {
    counters: Vec<i32>,
    count: usize,
}

impl MajorityAccumulator {
    /// Creates an empty accumulator for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "accumulator dimensionality must be positive");
        Self {
            counters: vec![0; dim],
            count: 0,
        }
    }

    /// Dimensionality of the accumulated vectors.
    pub fn dim(&self) -> usize {
        self.counters.len()
    }

    /// Number of hypervectors accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether nothing has been accumulated yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds one hypervector: each set bit votes `+1`, each clear bit `−1`.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn add(&mut self, hv: &BinaryHypervector) {
        self.add_weighted(hv, 1);
    }

    /// Adds one hypervector with an integer weight (each set bit votes
    /// `+w`, each clear bit `−w`). Weighted bundling is used by consensus
    /// construction where larger clusters should dominate.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ or `weight <= 0`.
    pub fn add_weighted(&mut self, hv: &BinaryHypervector, weight: i32) {
        assert_eq!(hv.dim(), self.counters.len(), "dimensionality mismatch");
        assert!(weight > 0, "weight must be positive");
        for (word_idx, word) in hv.words().iter().enumerate() {
            let base = word_idx * 64;
            let lanes = (self.counters.len() - base).min(64);
            for bit in 0..lanes {
                if (word >> bit) & 1 == 1 {
                    self.counters[base + bit] += weight;
                } else {
                    self.counters[base + bit] -= weight;
                }
            }
        }
        self.count += weight as usize;
    }

    /// Raw per-dimension counters (`#ones − #zeros`).
    pub fn counters(&self) -> &[i32] {
        &self.counters
    }

    /// Binarizes: bit `i` is set iff `counters[i] > 0` (ties → 0).
    pub fn finalize(&self) -> BinaryHypervector {
        BinaryHypervector::from_fn(self.counters.len(), |i| self.counters[i] > 0)
    }

    /// Binarizes directly into a packed word row (little-endian bit order,
    /// tail bits beyond `dim` zeroed) — the allocation-free path the batch
    /// encoder uses to fill [`crate::HvPack`] rows in place.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim.div_ceil(64)`.
    pub fn finalize_into_words(&self, row: &mut [u64]) {
        assert_eq!(
            row.len(),
            self.counters.len().div_ceil(64),
            "row word count must match accumulator dimensionality"
        );
        for (word, lanes) in row.iter_mut().zip(self.counters.chunks(64)) {
            let mut w = 0u64;
            for (bit, &c) in lanes.iter().enumerate() {
                if c > 0 {
                    w |= 1u64 << bit;
                }
            }
            *word = w;
        }
    }

    /// Resets the accumulator for reuse without reallocating.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::{Rng, Xoshiro256StarStar};

    #[test]
    fn single_vector_majority_is_identity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let hv = BinaryHypervector::random(256, &mut rng);
        let mut acc = MajorityAccumulator::new(256);
        acc.add(&hv);
        assert_eq!(acc.finalize(), hv);
    }

    #[test]
    fn empty_accumulator_finalizes_to_zeros() {
        let acc = MajorityAccumulator::new(64);
        assert!(acc.is_empty());
        assert_eq!(acc.finalize(), BinaryHypervector::zeros(64));
    }

    #[test]
    fn majority_of_identical_vectors_is_that_vector() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let hv = BinaryHypervector::random(128, &mut rng);
        let mut acc = MajorityAccumulator::new(128);
        for _ in 0..7 {
            acc.add(&hv);
        }
        assert_eq!(acc.finalize(), hv);
    }

    #[test]
    fn ties_break_to_zero() {
        let ones = BinaryHypervector::ones(16);
        let zeros = BinaryHypervector::zeros(16);
        let mut acc = MajorityAccumulator::new(16);
        acc.add(&ones);
        acc.add(&zeros);
        assert_eq!(acc.finalize(), zeros, "even split must resolve to 0 bits");
    }

    #[test]
    fn majority_is_closer_to_members_than_random() {
        // The bundled vector must be more similar to each of its members
        // than to an unrelated random vector — the key HDC property SpecHD
        // relies on for clustering quality.
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let dim = 2048;
        let members: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        let mut acc = MajorityAccumulator::new(dim);
        for m in &members {
            acc.add(m);
        }
        let bundle = acc.finalize();
        let outsider = BinaryHypervector::random(dim, &mut rng);
        let outsider_d = bundle.hamming(&outsider);
        for m in &members {
            assert!(
                bundle.hamming(m) < outsider_d,
                "bundle should stay close to members"
            );
        }
    }

    #[test]
    fn weighted_add_dominates() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let a = BinaryHypervector::random(512, &mut rng);
        let b = BinaryHypervector::random(512, &mut rng);
        let mut acc = MajorityAccumulator::new(512);
        acc.add_weighted(&a, 5);
        acc.add(&b);
        assert_eq!(acc.finalize(), a, "weight-5 member must win every lane");
    }

    #[test]
    fn count_tracks_weights() {
        let hv = BinaryHypervector::zeros(8);
        let mut acc = MajorityAccumulator::new(8);
        acc.add(&hv);
        acc.add_weighted(&hv, 3);
        assert_eq!(acc.count(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let hv = BinaryHypervector::random(64, &mut rng);
        let mut acc = MajorityAccumulator::new(64);
        acc.add(&hv);
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.finalize(), BinaryHypervector::zeros(64));
    }

    #[test]
    fn counters_are_bounded_by_count() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let mut acc = MajorityAccumulator::new(128);
        for _ in 0..9 {
            let hv = BinaryHypervector::random(128, &mut rng);
            acc.add(&hv);
        }
        for &c in acc.counters() {
            assert!(
                c.unsigned_abs() as usize <= 9 && (c % 2 != 0),
                "counter {c}"
            );
        }
    }

    #[test]
    fn finalize_into_words_matches_finalize() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        for dim in [63usize, 64, 65, 130, 2048] {
            let mut acc = MajorityAccumulator::new(dim);
            for _ in 0..5 {
                acc.add(&BinaryHypervector::random(dim, &mut rng));
            }
            let mut row = vec![u64::MAX; dim.div_ceil(64)];
            acc.finalize_into_words(&mut row);
            assert_eq!(
                BinaryHypervector::from_words(dim, row),
                acc.finalize(),
                "dim {dim}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn finalize_into_words_wrong_len_panics() {
        let acc = MajorityAccumulator::new(64);
        acc.finalize_into_words(&mut [0u64; 2]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn add_dim_mismatch_panics() {
        let hv = BinaryHypervector::zeros(32);
        let mut acc = MajorityAccumulator::new(64);
        acc.add(&hv);
    }

    #[test]
    fn majority_noise_filtering() {
        // Bundling noisy copies of a prototype recovers the prototype
        // almost exactly: per-bit error for 9 copies at 10% flip rate is
        // the tail of Binomial(9, 0.1) ≥ 5, about 1e-3.
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let dim = 2048;
        let proto = BinaryHypervector::random(dim, &mut rng);
        let mut acc = MajorityAccumulator::new(dim);
        for _ in 0..9 {
            let mut noisy = proto.clone();
            let flips = (0.10 * dim as f64) as usize;
            noisy.flip_random_bits(flips, &mut rng);
            acc.add(&noisy);
        }
        let recovered = acc.finalize();
        let err = recovered.hamming(&proto);
        assert!(err < dim as u32 / 100, "error {err} out of {dim}");
    }

    #[test]
    fn deterministic_for_same_input_order() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let hvs: Vec<_> = (0..4)
            .map(|_| BinaryHypervector::random(96, &mut rng))
            .collect();
        let run = |hvs: &[BinaryHypervector]| {
            let mut acc = MajorityAccumulator::new(96);
            for h in hvs {
                acc.add(h);
            }
            acc.finalize()
        };
        assert_eq!(run(&hvs), run(&hvs));
    }

    #[test]
    fn order_invariance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut hvs: Vec<_> = (0..5)
            .map(|_| BinaryHypervector::random(96, &mut rng))
            .collect();
        let mut acc1 = MajorityAccumulator::new(96);
        for h in &hvs {
            acc1.add(h);
        }
        // Reverse order must give the same bundle (addition commutes).
        hvs.reverse();
        let mut acc2 = MajorityAccumulator::new(96);
        for h in &hvs {
            acc2.add(h);
        }
        assert_eq!(acc1.finalize(), acc2.finalize());
        let _ = rng.next_u64();
    }
}
