//! Contiguous struct-of-arrays storage for packed hypervectors.
//!
//! [`BinaryHypervector`] owns its words in a private `Vec<u64>`, so a
//! collection of N hypervectors is N separate heap allocations — fine for
//! algebra on a handful of vectors, hostile to the batch distance kernel
//! that wants to stream millions of XOR+popcount lanes the way the FPGA
//! streams packed spectra out of HBM. [`HvPack`] is the batch counterpart:
//! all N rows live back-to-back in one flat `Vec<u64>` with a fixed
//! per-row stride of `dim.div_ceil(64)` words, giving the tiled kernels in
//! [`crate::distance`] cache-friendly, allocation-free row views.

use crate::BinaryHypervector;

/// A structural defect found while building an [`HvPack`] from untrusted
/// words (rows off the wire or out of a file).
///
/// The panicking build API ([`HvPack::push`], [`HvPack::push_row_words`])
/// treats malformed rows as caller bugs; deserializers instead use the
/// fallible counterparts ([`HvPack::from_raw_parts`],
/// [`HvPack::try_push_row_words`]) and surface these as data errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The dimensionality was zero.
    ZeroDim,
    /// The word buffer is not a whole number of `stride`-sized rows.
    WordCountMismatch {
        /// Words per row the pack requires (`dim.div_ceil(64)`).
        stride: usize,
        /// Words actually supplied.
        found: usize,
    },
    /// A row has bits set beyond `dim` in its last word, violating the
    /// tail invariant the distance kernels rely on.
    NonZeroTail {
        /// Index of the offending row.
        row: usize,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::ZeroDim => write!(f, "hypervector dimensionality must be positive"),
            PackError::WordCountMismatch { stride, found } => write!(
                f,
                "word count {found} is not a multiple of the row stride {stride}"
            ),
            PackError::NonZeroTail { row } => {
                write!(f, "row {row} has non-zero bits beyond the dimensionality")
            }
        }
    }
}

impl std::error::Error for PackError {}

/// A contiguous store of `len` bit-packed hypervectors sharing one
/// dimensionality.
///
/// Rows are stored back-to-back in a single `Vec<u64>`; row `i` occupies
/// `words[i * stride .. (i + 1) * stride]` with `stride = dim.div_ceil(64)`
/// (little-endian bit order within each word, identical to
/// [`BinaryHypervector::words`]).
///
/// The tail invariant of [`BinaryHypervector`] carries over: bits beyond
/// `dim` in the last word of every row are zero. All constructors and the
/// batch encoder preserve it; code writing through [`HvPack::row_mut`] or
/// [`HvPack::push_zeroed`] must do the same (the distance kernels rely on
/// it so that the masked tail never contributes to a popcount).
///
/// # Examples
///
/// ```
/// use spechd_hdc::{BinaryHypervector, HvPack};
///
/// let a = BinaryHypervector::from_fn(100, |i| i % 2 == 0);
/// let b = BinaryHypervector::from_fn(100, |i| i % 3 == 0);
/// let pack = HvPack::from_hypervectors(100, &[a.clone(), b.clone()]);
/// assert_eq!(pack.len(), 2);
/// assert_eq!(pack.stride(), 2);
/// assert_eq!(pack.hamming(0, 1), a.hamming(&b));
/// assert_eq!(pack.hypervector(0), a);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct HvPack {
    dim: usize,
    stride: usize,
    len: usize,
    words: Vec<u64>,
}

impl HvPack {
    /// Creates an empty pack for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, 0)
    }

    /// Creates an empty pack with storage reserved for `n` rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or if `n` rows of storage would overflow
    /// `usize`.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "hypervector dimensionality must be positive");
        let stride = dim.div_ceil(64);
        let cap = stride
            .checked_mul(n)
            .unwrap_or_else(|| panic!("HvPack storage for {n} rows of dim {dim} overflows usize"));
        Self {
            dim,
            stride,
            len: 0,
            words: Vec::with_capacity(cap),
        }
    }

    /// Packs a slice of hypervectors into contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or any element's dimensionality differs from
    /// `dim`.
    pub fn from_hypervectors(dim: usize, hvs: &[BinaryHypervector]) -> Self {
        let mut pack = Self::with_capacity(dim, hvs.len());
        for hv in hvs {
            pack.push(hv);
        }
        pack
    }

    /// Appends one hypervector as a new row.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionality differs from the pack's.
    pub fn push(&mut self, hv: &BinaryHypervector) {
        assert_eq!(
            hv.dim(),
            self.dim,
            "pack/hypervector dimensionality mismatch"
        );
        self.words.extend_from_slice(hv.words());
        self.len += 1;
    }

    /// Appends an all-zero row and returns a mutable view of it, for
    /// callers that fill rows in place (the batch encoder does this to
    /// avoid intermediate allocations).
    ///
    /// Writers must keep bits beyond `dim` in the last word zero.
    pub fn push_zeroed(&mut self) -> &mut [u64] {
        self.words.resize(self.words.len() + self.stride, 0);
        self.len += 1;
        let start = (self.len - 1) * self.stride;
        &mut self.words[start..start + self.stride]
    }

    /// Appends one row from pre-packed words — the build primitive for
    /// stores assembled from rows that never existed as owned
    /// [`BinaryHypervector`]s (rows copied out of another pack, or
    /// hypervector words received off the wire).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != stride`, or if any bit beyond `dim` in
    /// the last word is set (the tail invariant the distance kernels
    /// rely on).
    pub fn push_row_words(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.stride,
            "row word count/stride mismatch for dim {}",
            self.dim
        );
        if self.dim % 64 != 0 {
            assert_eq!(
                words[self.stride - 1] >> (self.dim % 64),
                0,
                "bits beyond dim {} must be zero",
                self.dim
            );
        }
        self.words.extend_from_slice(words);
        self.len += 1;
    }

    /// Builds a pack directly from a flat word buffer — the fallible
    /// deserialization counterpart of [`HvPack::from_hypervectors`], for
    /// rows read from untrusted bytes (a store file, the wire).
    ///
    /// The buffer must hold a whole number of `dim.div_ceil(64)`-word
    /// rows, each respecting the tail invariant (bits beyond `dim` in the
    /// last word zero). Violations are returned as [`PackError`]s, never
    /// panics.
    pub fn from_raw_parts(dim: usize, words: Vec<u64>) -> Result<Self, PackError> {
        if dim == 0 {
            return Err(PackError::ZeroDim);
        }
        let stride = dim.div_ceil(64);
        if words.len() % stride != 0 {
            return Err(PackError::WordCountMismatch {
                stride,
                found: words.len(),
            });
        }
        let len = words.len() / stride;
        if dim % 64 != 0 {
            for row in 0..len {
                if words[(row + 1) * stride - 1] >> (dim % 64) != 0 {
                    return Err(PackError::NonZeroTail { row });
                }
            }
        }
        Ok(Self {
            dim,
            stride,
            len,
            words,
        })
    }

    /// Fallible [`HvPack::push_row_words`]: appends one pre-packed row,
    /// reporting stride or tail-invariant violations as [`PackError`]s
    /// instead of panicking. The pack is unchanged on error.
    pub fn try_push_row_words(&mut self, words: &[u64]) -> Result<(), PackError> {
        if words.len() != self.stride {
            return Err(PackError::WordCountMismatch {
                stride: self.stride,
                found: words.len(),
            });
        }
        if self.dim % 64 != 0 && words[self.stride - 1] >> (self.dim % 64) != 0 {
            return Err(PackError::NonZeroTail { row: self.len });
        }
        self.words.extend_from_slice(words);
        self.len += 1;
        Ok(())
    }

    /// Removes every row while keeping the allocated storage, so a pack
    /// can be recycled across shards/batches without reallocating — the
    /// pack-pool primitive of the streaming pipeline.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Reserves storage for at least `additional` more rows.
    ///
    /// # Panics
    ///
    /// Panics if the grown storage size would overflow `usize`.
    pub fn reserve(&mut self, additional: usize) {
        let words = self.stride.checked_mul(additional).unwrap_or_else(|| {
            panic!(
                "HvPack storage for {additional} more rows of dim {} overflows usize",
                self.dim
            )
        });
        self.words.reserve(words);
    }

    /// Copies the selected rows (in order, repeats allowed) into a new
    /// pack — the bucket-gather step of the clustering pipeline.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Self {
        let mut out = Self::with_capacity(self.dim, indices.len());
        for &i in indices {
            assert!(
                i < self.len,
                "row index {i} out of bounds for len {}",
                self.len
            );
            out.words.extend_from_slice(self.row(i));
        }
        out.len = indices.len();
        out
    }

    /// Number of stored hypervectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pack holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality `D` shared by every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per row, `dim.div_ceil(64)`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The entire flat word buffer (row `i` at `i * stride`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Borrowed view of row `i`'s packed words.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Mutable view of row `i`'s packed words. Writers must keep bits
    /// beyond `dim` in the last word zero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Hamming distance between rows `i` and `j` (XOR + popcount over the
    /// shared stride).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn hamming(&self, i: usize, j: usize) -> u32 {
        self.row(i)
            .iter()
            .zip(self.row(j))
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Materializes row `i` as an owned [`BinaryHypervector`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn hypervector(&self, i: usize) -> BinaryHypervector {
        BinaryHypervector::from_words(self.dim, self.row(i).to_vec())
    }

    /// Unpacks every row into owned hypervectors.
    pub fn to_hypervectors(&self) -> Vec<BinaryHypervector> {
        (0..self.len).map(|i| self.hypervector(i)).collect()
    }

    /// Storage footprint of the flat buffer in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl std::fmt::Debug for HvPack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HvPack {{ len: {}, dim: {}, stride: {} }}",
            self.len, self.dim, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::Xoshiro256StarStar;

    fn random_set(n: usize, dim: usize, seed: u64) -> Vec<BinaryHypervector> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect()
    }

    #[test]
    fn roundtrip_through_pack() {
        for dim in [63, 64, 65, 2048] {
            let hvs = random_set(7, dim, dim as u64);
            let pack = HvPack::from_hypervectors(dim, &hvs);
            assert_eq!(pack.len(), 7);
            assert_eq!(pack.stride(), dim.div_ceil(64));
            assert_eq!(pack.to_hypervectors(), hvs, "dim {dim}");
        }
    }

    #[test]
    fn hamming_matches_hypervector_hamming() {
        let hvs = random_set(5, 130, 1);
        let pack = HvPack::from_hypervectors(130, &hvs);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(pack.hamming(i, j), hvs[i].hamming(&hvs[j]));
            }
        }
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let hvs = random_set(6, 96, 2);
        let pack = HvPack::from_hypervectors(96, &hvs);
        let sub = pack.gather(&[4, 0, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.hypervector(0), hvs[4]);
        assert_eq!(sub.hypervector(1), hvs[0]);
        assert_eq!(sub.hypervector(2), hvs[4]);
    }

    #[test]
    fn push_zeroed_appends_blank_row() {
        let mut pack = HvPack::new(100);
        let row = pack.push_zeroed();
        assert_eq!(row.len(), 2);
        assert!(row.iter().all(|&w| w == 0));
        assert_eq!(pack.len(), 1);
        assert_eq!(pack.hypervector(0), BinaryHypervector::zeros(100));
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let hvs = random_set(4, 2048, 9);
        let mut pack = HvPack::from_hypervectors(2048, &hvs);
        let cap_before = pack.words.capacity();
        pack.clear();
        assert!(pack.is_empty());
        assert_eq!(pack.words.capacity(), cap_before, "clear must not free");
        // Refill with different content; reads see only the new rows.
        pack.push(&hvs[2]);
        assert_eq!(pack.len(), 1);
        assert_eq!(pack.hypervector(0), hvs[2]);
    }

    #[test]
    fn reserve_grows_capacity_by_rows() {
        let mut pack = HvPack::new(130); // stride 3
        pack.reserve(10);
        assert!(pack.words.capacity() >= 30);
        assert!(pack.is_empty());
    }

    #[test]
    fn empty_pack_properties() {
        let pack = HvPack::new(2048);
        assert!(pack.is_empty());
        assert_eq!(pack.storage_bytes(), 0);
        assert!(pack.to_hypervectors().is_empty());
    }

    #[test]
    fn storage_is_contiguous_with_stride() {
        let hvs = random_set(3, 65, 3);
        let pack = HvPack::from_hypervectors(65, &hvs);
        assert_eq!(pack.words().len(), 3 * 2);
        assert_eq!(&pack.words()[2..4], pack.row(1));
    }

    #[test]
    fn push_row_words_round_trips() {
        for dim in [63, 64, 65, 2048] {
            let hvs = random_set(5, dim, 40 + dim as u64);
            let src = HvPack::from_hypervectors(dim, &hvs);
            let mut dst = HvPack::new(dim);
            for i in 0..src.len() {
                dst.push_row_words(src.row(i));
            }
            assert_eq!(dst.to_hypervectors(), hvs, "dim {dim}");
        }
    }

    #[test]
    fn from_raw_parts_round_trips() {
        for dim in [63, 64, 65, 2048] {
            let hvs = random_set(4, dim, 80 + dim as u64);
            let src = HvPack::from_hypervectors(dim, &hvs);
            let rebuilt = HvPack::from_raw_parts(dim, src.words().to_vec()).unwrap();
            assert_eq!(rebuilt, src, "dim {dim}");
        }
        let empty = HvPack::from_raw_parts(100, Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.dim(), 100);
    }

    #[test]
    fn from_raw_parts_rejects_defects() {
        assert_eq!(HvPack::from_raw_parts(0, vec![]), Err(PackError::ZeroDim));
        assert_eq!(
            HvPack::from_raw_parts(100, vec![0; 3]),
            Err(PackError::WordCountMismatch {
                stride: 2,
                found: 3
            })
        );
        // Second row violates the tail invariant for dim 63.
        assert_eq!(
            HvPack::from_raw_parts(63, vec![0, 1u64 << 63]),
            Err(PackError::NonZeroTail { row: 1 })
        );
    }

    #[test]
    fn try_push_row_words_reports_instead_of_panicking() {
        let mut pack = HvPack::new(63);
        assert_eq!(
            pack.try_push_row_words(&[0, 0]),
            Err(PackError::WordCountMismatch {
                stride: 1,
                found: 2
            })
        );
        assert_eq!(
            pack.try_push_row_words(&[1u64 << 63]),
            Err(PackError::NonZeroTail { row: 0 })
        );
        assert!(pack.is_empty(), "failed pushes must leave the pack intact");
        pack.try_push_row_words(&[7]).unwrap();
        assert_eq!(pack.len(), 1);
        assert_eq!(pack.row(0), &[7]);
    }

    #[test]
    #[should_panic(expected = "stride mismatch")]
    fn push_row_words_wrong_stride_panics() {
        let mut pack = HvPack::new(64);
        pack.push_row_words(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "must be zero")]
    fn push_row_words_nonzero_tail_panics() {
        let mut pack = HvPack::new(63);
        pack.push_row_words(&[1u64 << 63]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dim_panics() {
        let mut pack = HvPack::new(64);
        pack.push(&BinaryHypervector::zeros(128));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_out_of_bounds_panics() {
        let pack = HvPack::from_hypervectors(64, &random_set(2, 64, 4));
        pack.gather(&[2]);
    }

    #[test]
    fn debug_is_nonempty() {
        let pack = HvPack::new(64);
        assert!(format!("{pack:?}").contains("dim: 64"));
    }
}
