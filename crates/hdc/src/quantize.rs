//! Quantizers mapping continuous m/z and intensity values to the discrete
//! indices consumed by the ID-Level encoder.

/// Intensity transformation applied before level quantization.
///
/// Mass-spectral peak intensities span orders of magnitude; the square-root
/// transform (the default in HyperSpec and most clustering tools) compresses
/// the dynamic range so the quantized levels carry information about medium
/// peaks rather than saturating on the base peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntensityScale {
    /// Use the raw intensity.
    Linear,
    /// Use `sqrt(intensity)` (the SpecHD/HyperSpec default).
    #[default]
    Sqrt,
    /// Use `ln(1 + intensity)`.
    Log,
}

impl IntensityScale {
    /// Applies the transform.
    pub fn apply(self, intensity: f64) -> f64 {
        match self {
            IntensityScale::Linear => intensity,
            IntensityScale::Sqrt => intensity.max(0.0).sqrt(),
            IntensityScale::Log => intensity.max(0.0).ln_1p(),
        }
    }
}

/// Quantizes m/z values into `f` equal-width bins over a configured range.
///
/// Values outside the range clamp to the first/last bin, mirroring the
/// saturating behaviour of the fixed-point HLS kernel.
///
/// # Examples
///
/// ```
/// use spechd_hdc::MzQuantizer;
/// let q = MzQuantizer::new(100, (200.0, 1200.0));
/// assert_eq!(q.quantize(200.0), 0);
/// assert_eq!(q.quantize(1199.99), 99);
/// assert_eq!(q.quantize(5000.0), 99);  // clamps
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MzQuantizer {
    bins: usize,
    lo: f64,
    hi: f64,
}

impl MzQuantizer {
    /// Creates a quantizer with `bins` bins over `[range.0, range.1)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty or not finite.
    pub fn new(bins: usize, range: (f64, f64)) -> Self {
        assert!(bins > 0, "mz quantizer needs at least one bin");
        assert!(
            range.0.is_finite() && range.1.is_finite() && range.0 < range.1,
            "mz range must be a non-empty finite interval"
        );
        Self {
            bins,
            lo: range.0,
            hi: range.1,
        }
    }

    /// Number of bins `f`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The configured `[lo, hi)` range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Width of one bin in Thomson.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Maps an m/z value to its bin index, clamping out-of-range inputs.
    pub fn quantize(&self, mz: f64) -> usize {
        if !mz.is_finite() || mz <= self.lo {
            return 0;
        }
        let idx = ((mz - self.lo) / self.bin_width()) as usize;
        idx.min(self.bins - 1)
    }
}

/// Quantizes (relative) intensities into `q` levels after applying an
/// [`IntensityScale`] transform.
///
/// Intensities are expected to be normalized to the base peak (`[0, 1]`);
/// larger values clamp to the top level.
///
/// # Examples
///
/// ```
/// use spechd_hdc::{IntensityQuantizer, IntensityScale};
/// let q = IntensityQuantizer::new(32, IntensityScale::Sqrt);
/// assert_eq!(q.quantize(0.0), 0);
/// assert_eq!(q.quantize(1.0), 31);
/// assert!(q.quantize(0.25) > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityQuantizer {
    levels: usize,
    scale: IntensityScale,
}

impl IntensityQuantizer {
    /// Creates a quantizer with `levels` levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(levels: usize, scale: IntensityScale) -> Self {
        assert!(levels >= 2, "intensity quantizer needs at least two levels");
        Self { levels, scale }
    }

    /// Number of levels `q`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The configured transform.
    pub fn scale(&self) -> IntensityScale {
        self.scale
    }

    /// Maps a relative intensity in `[0, 1]` to a level in `[0, q)`.
    pub fn quantize(&self, rel_intensity: f64) -> usize {
        let x = self.scale.apply(rel_intensity.clamp(0.0, 1.0));
        let max = self.scale.apply(1.0);
        if max <= 0.0 {
            return 0;
        }
        let idx = (x / max * self.levels as f64) as usize;
        idx.min(self.levels - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mz_quantizer_monotone() {
        let q = MzQuantizer::new(64, (100.0, 2000.0));
        let mut prev = 0;
        let mut mz = 100.0;
        while mz < 2000.0 {
            let b = q.quantize(mz);
            assert!(b >= prev, "quantizer must be monotone");
            prev = b;
            mz += 13.7;
        }
    }

    #[test]
    fn mz_quantizer_clamps() {
        let q = MzQuantizer::new(10, (0.0, 10.0));
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(999.0), 9);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn mz_quantizer_covers_all_bins() {
        let q = MzQuantizer::new(5, (0.0, 5.0));
        let bins: Vec<usize> = [0.1, 1.1, 2.1, 3.1, 4.1]
            .iter()
            .map(|&x| q.quantize(x))
            .collect();
        assert_eq!(bins, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mz_bin_width() {
        let q = MzQuantizer::new(100, (0.0, 50.0));
        assert!((q.bin_width() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn mz_zero_bins_panics() {
        MzQuantizer::new(0, (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-empty finite interval")]
    fn mz_empty_range_panics() {
        MzQuantizer::new(4, (5.0, 5.0));
    }

    #[test]
    fn intensity_quantizer_bounds() {
        for scale in [
            IntensityScale::Linear,
            IntensityScale::Sqrt,
            IntensityScale::Log,
        ] {
            let q = IntensityQuantizer::new(16, scale);
            assert_eq!(q.quantize(0.0), 0, "{scale:?}");
            assert_eq!(q.quantize(1.0), 15, "{scale:?}");
            assert_eq!(q.quantize(2.0), 15, "clamps above 1, {scale:?}");
            assert_eq!(q.quantize(-1.0), 0, "clamps below 0, {scale:?}");
        }
    }

    #[test]
    fn intensity_quantizer_monotone() {
        let q = IntensityQuantizer::new(32, IntensityScale::Sqrt);
        let mut prev = 0;
        for i in 0..=100 {
            let level = q.quantize(i as f64 / 100.0);
            assert!(level >= prev);
            prev = level;
        }
    }

    #[test]
    fn sqrt_scale_boosts_small_intensities() {
        let lin = IntensityQuantizer::new(32, IntensityScale::Linear);
        let sq = IntensityQuantizer::new(32, IntensityScale::Sqrt);
        // sqrt(0.09) = 0.3: the sqrt scale assigns a markedly higher level.
        assert!(sq.quantize(0.09) > lin.quantize(0.09));
    }

    #[test]
    fn scale_apply_values() {
        assert_eq!(IntensityScale::Linear.apply(0.25), 0.25);
        assert!((IntensityScale::Sqrt.apply(0.25) - 0.5).abs() < 1e-12);
        assert!((IntensityScale::Log.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn intensity_one_level_panics() {
        IntensityQuantizer::new(1, IntensityScale::Linear);
    }
}
