//! Bit-packed binary hypervectors.

use spechd_rng::Rng;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor};

/// A dense binary hypervector of fixed dimensionality, bit-packed into
/// 64-bit words.
///
/// This is the unit of storage produced by the SpecHD encoder: one
/// hypervector per spectrum, `dim / 8` bytes (256 B at the paper's
/// `D = 2048`). All algebra the paper maps onto FPGA fabric — XOR, AND, OR,
/// popcount, Hamming distance — is provided here and operates one word
/// (64 lanes) at a time, mirroring the hardware's wide datapath.
///
/// Bits beyond `dim` in the last word are kept at zero as an invariant; all
/// constructors and operations preserve it.
///
/// # Examples
///
/// ```
/// use spechd_hdc::BinaryHypervector;
///
/// let a = BinaryHypervector::from_fn(128, |i| i % 2 == 0);
/// let b = BinaryHypervector::from_fn(128, |i| i % 4 == 0);
/// assert_eq!(a.hamming(&b), 32);           // bits 2, 6, 10, ... differ
/// assert_eq!((&a ^ &b).count_ones(), 32);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHypervector {
    /// Creates an all-zero hypervector of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimensionality must be positive");
        Self {
            dim,
            words: vec![0; dim.div_ceil(64)],
        }
    }

    /// Creates an all-ones hypervector of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn ones(dim: usize) -> Self {
        let mut hv = Self::zeros(dim);
        for w in &mut hv.words {
            *w = u64::MAX;
        }
        hv.mask_tail();
        hv
    }

    /// Creates a hypervector whose bit `i` is `f(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut hv = Self::zeros(dim);
        for i in 0..dim {
            if f(i) {
                hv.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        hv
    }

    /// Creates a uniformly random hypervector (each bit i.i.d. fair).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random<R: Rng>(dim: usize, rng: &mut R) -> Self {
        let mut hv = Self::zeros(dim);
        for w in &mut hv.words {
            *w = rng.next_u64();
        }
        hv.mask_tail();
        hv
    }

    /// Builds a hypervector from raw little-endian packed words.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != dim.div_ceil(64)`, if `dim == 0`, or if any
    /// bit beyond `dim` is set.
    pub fn from_words(dim: usize, words: Vec<u64>) -> Self {
        assert!(dim > 0, "hypervector dimensionality must be positive");
        assert_eq!(words.len(), dim.div_ceil(64), "word count must match dim");
        let hv = Self { dim, words };
        let mut check = hv.clone();
        check.mask_tail();
        assert!(check == hv, "bits beyond dim must be zero");
        hv
    }

    /// The dimensionality `D` (number of usable bits).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed 64-bit words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Storage footprint in bytes (`dim / 8` rounded up to a word).
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits (hardware `popcount`).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`: `popcount(self XOR other)`.
    ///
    /// This is the FPGA distance kernel's inner operation — a fully
    /// unrolled XOR feeding a popcount tree in the paper's architecture.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(self.dim, other.dim, "hamming requires equal dimensionality");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Normalized Hamming distance in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn hamming_normalized(&self, other: &Self) -> f64 {
        self.hamming(other) as f64 / self.dim as f64
    }

    /// Cosine-like similarity in `[-1, 1]` for binary vectors:
    /// `1 - 2 * hamming / dim`.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn similarity(&self, other: &Self) -> f64 {
        1.0 - 2.0 * self.hamming_normalized(other)
    }

    /// In-place XOR (binding).
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.dim, other.dim, "xor requires equal dimensionality");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Cyclic permutation by `k` bit positions (used as a sequence-binding
    /// primitive in HDC literature; exposed for extension encoders).
    pub fn rotate(&self, k: usize) -> Self {
        let k = k % self.dim;
        Self::from_fn(self.dim, |i| self.bit((i + self.dim - k) % self.dim))
    }

    /// Flips `count` distinct, uniformly chosen bits. Used to build
    /// correlated level memories.
    ///
    /// # Panics
    ///
    /// Panics if `count > dim`.
    pub fn flip_random_bits<R: Rng>(&mut self, count: usize, rng: &mut R) {
        assert!(count <= self.dim, "cannot flip more bits than dim");
        for idx in spechd_rng::sample_indices(self.dim, count, rng) {
            self.flip_bit(idx);
        }
    }

    /// Iterator over all bits, LSB-first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.dim).map(move |i| self.bit(i))
    }

    fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BinaryHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BinaryHypervector {{ dim: {}, ones: {}, head: ",
            self.dim,
            self.count_ones()
        )?;
        for i in 0..self.dim.min(16) {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if self.dim > 16 {
            write!(f, "…")?;
        }
        write!(f, " }}")
    }
}

impl BitXor for &BinaryHypervector {
    type Output = BinaryHypervector;

    fn bitxor(self, rhs: Self) -> BinaryHypervector {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl BitAnd for &BinaryHypervector {
    type Output = BinaryHypervector;

    fn bitand(self, rhs: Self) -> BinaryHypervector {
        assert_eq!(self.dim, rhs.dim, "and requires equal dimensionality");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&rhs.words) {
            *a &= b;
        }
        out
    }
}

impl BitOr for &BinaryHypervector {
    type Output = BinaryHypervector;

    fn bitor(self, rhs: Self) -> BinaryHypervector {
        assert_eq!(self.dim, rhs.dim, "or requires equal dimensionality");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&rhs.words) {
            *a |= b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::Xoshiro256StarStar;

    #[test]
    fn zeros_and_ones_counts() {
        let z = BinaryHypervector::zeros(100);
        let o = BinaryHypervector::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.hamming(&o), 100);
    }

    #[test]
    fn tail_bits_masked_for_non_word_dims() {
        for dim in [1, 63, 65, 100, 127, 2048, 2049] {
            let o = BinaryHypervector::ones(dim);
            assert_eq!(o.count_ones() as usize, dim, "dim {dim}");
        }
    }

    #[test]
    fn from_fn_and_bit_roundtrip() {
        let hv = BinaryHypervector::from_fn(130, |i| i % 3 == 0);
        for i in 0..130 {
            assert_eq!(hv.bit(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn set_and_flip_bits() {
        let mut hv = BinaryHypervector::zeros(70);
        hv.set_bit(69, true);
        assert!(hv.bit(69));
        hv.flip_bit(69);
        assert!(!hv.bit(69));
        hv.flip_bit(0);
        assert!(hv.bit(0));
        assert_eq!(hv.count_ones(), 1);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let hv = BinaryHypervector::random(4096, &mut rng);
        let ones = hv.count_ones();
        assert!((1800..2300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn random_pair_hamming_near_half() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let a = BinaryHypervector::random(2048, &mut rng);
        let b = BinaryHypervector::random(2048, &mut rng);
        let d = a.hamming(&b);
        assert!((850..1200).contains(&d), "hamming = {d}");
    }

    #[test]
    fn xor_involution() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let a = BinaryHypervector::random(256, &mut rng);
        let b = BinaryHypervector::random(256, &mut rng);
        let bound = &a ^ &b;
        let recovered = &bound ^ &b;
        assert_eq!(recovered, a);
    }

    #[test]
    fn hamming_is_symmetric_and_zero_on_self() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let a = BinaryHypervector::random(300, &mut rng);
        let b = BinaryHypervector::random(300, &mut rng);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn similarity_bounds() {
        let z = BinaryHypervector::zeros(64);
        let o = BinaryHypervector::ones(64);
        assert_eq!(z.similarity(&z), 1.0);
        assert_eq!(z.similarity(&o), -1.0);
    }

    #[test]
    fn and_or_operators() {
        let a = BinaryHypervector::from_fn(8, |i| i < 4);
        let b = BinaryHypervector::from_fn(8, |i| (2..6).contains(&i));
        assert_eq!((&a & &b).count_ones(), 2);
        assert_eq!((&a | &b).count_ones(), 6);
    }

    #[test]
    fn rotate_preserves_weight_and_inverts() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let a = BinaryHypervector::random(100, &mut rng);
        let r = a.rotate(17);
        assert_eq!(r.count_ones(), a.count_ones());
        let back = r.rotate(100 - 17);
        assert_eq!(back, a);
    }

    #[test]
    fn rotate_zero_is_identity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let a = BinaryHypervector::random(64, &mut rng);
        assert_eq!(a.rotate(0), a);
        assert_eq!(a.rotate(64), a);
    }

    #[test]
    fn flip_random_bits_changes_exactly_that_many() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let a = BinaryHypervector::random(512, &mut rng);
        let mut b = a.clone();
        b.flip_random_bits(37, &mut rng);
        assert_eq!(a.hamming(&b), 37);
    }

    #[test]
    fn from_words_roundtrip() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let a = BinaryHypervector::random(200, &mut rng);
        let b = BinaryHypervector::from_words(200, a.words().to_vec());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be zero")]
    fn from_words_rejects_dirty_tail() {
        BinaryHypervector::from_words(10, vec![u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn hamming_dim_mismatch_panics() {
        let a = BinaryHypervector::zeros(64);
        let b = BinaryHypervector::zeros(128);
        a.hamming(&b);
    }

    #[test]
    fn storage_bytes_at_paper_dim() {
        let hv = BinaryHypervector::zeros(2048);
        assert_eq!(hv.storage_bytes(), 256);
    }

    #[test]
    fn debug_is_nonempty() {
        let hv = BinaryHypervector::zeros(32);
        let s = format!("{hv:?}");
        assert!(s.contains("dim: 32"));
    }
}
