//! Pre-allocated hypervector memories: random ID vectors and correlated
//! Level vectors.
//!
//! The SpecHD encoder keeps two read-only arrays in FPGA on-chip memory,
//! partitioned by HLS pragmas so all lanes can be read in parallel:
//! `ID[0, f]` with one random hypervector per m/z bin, and `L[0, q]` with one
//! hypervector per intensity level. The ID memory is i.i.d. random so that
//! distinct m/z bins are quasi-orthogonal; the Level memory is *correlated*
//! — adjacent levels differ in only `D / (2(q-1))` bits — so that similar
//! intensities produce similar codes.

use crate::BinaryHypervector;
use spechd_rng::Xoshiro256StarStar;

/// Item memory of independent random hypervectors (`ID[0, f]`).
///
/// # Examples
///
/// ```
/// use spechd_hdc::ItemMemory;
/// let ids = ItemMemory::random(64, 2048, 42);
/// // Distinct entries are quasi-orthogonal: Hamming distance ≈ D/2.
/// let d = ids.get(0).hamming(ids.get(1));
/// assert!((850..1200).contains(&d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemMemory {
    vectors: Vec<BinaryHypervector>,
    dim: usize,
}

impl ItemMemory {
    /// Allocates `count` independent random hypervectors of dimensionality
    /// `dim`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `dim == 0`.
    pub fn random(count: usize, dim: usize, seed: u64) -> Self {
        assert!(count > 0, "item memory needs at least one entry");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let vectors = (0..count)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        Self { vectors, dim }
    }

    /// Builds an item memory from explicit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or dimensionalities are inconsistent.
    pub fn from_vectors(vectors: Vec<BinaryHypervector>) -> Self {
        assert!(!vectors.is_empty(), "item memory needs at least one entry");
        let dim = vectors[0].dim();
        assert!(
            vectors.iter().all(|v| v.dim() == dim),
            "all item memory entries must share one dimensionality"
        );
        Self { vectors, dim }
    }

    /// Number of entries `f`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the memory is empty (never true for constructed memories).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &BinaryHypervector {
        &self.vectors[index]
    }

    /// Iterates over the stored vectors.
    pub fn iter(&self) -> impl Iterator<Item = &BinaryHypervector> {
        self.vectors.iter()
    }

    /// Total storage in bytes (what the paper keeps in partitioned BRAM).
    pub fn storage_bytes(&self) -> usize {
        self.vectors.iter().map(|v| v.storage_bytes()).sum()
    }

    /// Returns the index of the entry nearest to `query` in Hamming
    /// distance, together with that distance (associative recall).
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn nearest(&self, query: &BinaryHypervector) -> (usize, u32) {
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.hamming(query)))
            .min_by_key(|&(_, d)| d)
            .expect("item memory is never empty")
    }
}

/// Correlated level memory (`L[0, q]`) for quantized intensities.
///
/// Level 0 is random; each subsequent level flips a fresh, disjoint batch of
/// `D / (2(q-1))` bit positions, so `hamming(L[a], L[b]) ≈ |a − b| · D/(2(q-1))`
/// and the extreme levels differ in about half their bits (quasi-orthogonal),
/// which is the standard thermometer-style construction used by HyperSpec
/// and SpecHD.
///
/// # Examples
///
/// ```
/// use spechd_hdc::LevelMemory;
/// let levels = LevelMemory::new(16, 2048, 1);
/// let near = levels.get(3).hamming(levels.get(4));
/// let far = levels.get(0).hamming(levels.get(15));
/// assert!(near < far);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMemory {
    vectors: Vec<BinaryHypervector>,
    dim: usize,
}

impl LevelMemory {
    /// Builds a correlated level memory with `levels` entries of
    /// dimensionality `dim`, seeded deterministically.
    ///
    /// The flipped positions form a random partition of a `D/2`-subset: the
    /// positions flipped between consecutive levels are disjoint, making the
    /// inter-level distance exactly linear in the level gap.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `dim == 0`.
    pub fn new(levels: usize, dim: usize, seed: u64) -> Self {
        assert!(levels >= 2, "level memory needs at least two levels");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF);
        let base = BinaryHypervector::random(dim, &mut rng);

        // Choose D/2 positions and split them into (levels-1) nearly equal
        // disjoint batches; level k flips batches 0..k of the base vector.
        let half = dim / 2;
        let mut positions: Vec<usize> = (0..dim).collect();
        spechd_rng::shuffle(&mut positions, &mut rng);
        positions.truncate(half);

        let segments = levels - 1;
        let mut vectors = Vec::with_capacity(levels);
        vectors.push(base.clone());
        let mut current = base;
        for seg in 0..segments {
            let start = seg * half / segments;
            let end = (seg + 1) * half / segments;
            for &pos in &positions[start..end] {
                current.flip_bit(pos);
            }
            vectors.push(current.clone());
        }
        Self { vectors, dim }
    }

    /// Number of levels `q`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the memory is empty (never true for constructed memories).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the vector for level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &BinaryHypervector {
        &self.vectors[index]
    }

    /// Iterates over the level vectors from level 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = &BinaryHypervector> {
        self.vectors.iter()
    }

    /// Total storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.vectors.iter().map(|v| v.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_memory_deterministic() {
        let a = ItemMemory::random(10, 256, 5);
        let b = ItemMemory::random(10, 256, 5);
        assert_eq!(a, b);
        let c = ItemMemory::random(10, 256, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn item_memory_entries_quasi_orthogonal() {
        let mem = ItemMemory::random(20, 2048, 1);
        for i in 0..mem.len() {
            for j in (i + 1)..mem.len() {
                let d = mem.get(i).hamming(mem.get(j));
                assert!(
                    (820..1230).contains(&d),
                    "entries {i},{j} too close/far: {d}"
                );
            }
        }
    }

    #[test]
    fn item_memory_nearest_recalls_noisy_entry() {
        let mem = ItemMemory::random(32, 2048, 2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for idx in [0usize, 7, 31] {
            let mut noisy = mem.get(idx).clone();
            noisy.flip_random_bits(300, &mut rng); // 15% noise
            let (found, d) = mem.nearest(&noisy);
            assert_eq!(found, idx);
            assert_eq!(d, 300);
        }
    }

    #[test]
    fn item_memory_storage() {
        let mem = ItemMemory::random(4, 2048, 0);
        assert_eq!(mem.storage_bytes(), 4 * 256);
    }

    #[test]
    fn from_vectors_validates() {
        let v = vec![BinaryHypervector::zeros(64), BinaryHypervector::ones(64)];
        let mem = ItemMemory::from_vectors(v);
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.dim(), 64);
    }

    #[test]
    #[should_panic(expected = "one dimensionality")]
    fn from_vectors_rejects_mixed_dims() {
        ItemMemory::from_vectors(vec![
            BinaryHypervector::zeros(64),
            BinaryHypervector::zeros(128),
        ]);
    }

    #[test]
    fn level_memory_distance_linear_in_gap() {
        let q = 17;
        let dim = 2048;
        let levels = LevelMemory::new(q, dim, 9);
        let step = dim / 2 / (q - 1); // 64 bits per level step
        for a in 0..q {
            for b in a..q {
                let d = levels.get(a).hamming(levels.get(b)) as usize;
                let expect = (b - a) * step;
                assert!(
                    d.abs_diff(expect) <= (q - 1), // rounding slack from uneven batches
                    "levels {a}->{b}: d={d} expected≈{expect}"
                );
            }
        }
    }

    #[test]
    fn level_memory_extremes_near_orthogonal() {
        let levels = LevelMemory::new(32, 2048, 4);
        let d = levels.get(0).hamming(levels.get(31));
        assert_eq!(d, 1024, "extremes must differ in exactly D/2 bits");
    }

    #[test]
    fn level_memory_monotone_in_gap() {
        let levels = LevelMemory::new(8, 1024, 11);
        let base = levels.get(0);
        let mut prev = 0;
        for k in 1..8 {
            let d = base.hamming(levels.get(k));
            assert!(d > prev, "distance must grow with level gap");
            prev = d;
        }
    }

    #[test]
    fn level_memory_deterministic() {
        assert_eq!(LevelMemory::new(8, 512, 3), LevelMemory::new(8, 512, 3));
        assert_ne!(LevelMemory::new(8, 512, 3), LevelMemory::new(8, 512, 4));
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn level_memory_one_level_panics() {
        LevelMemory::new(1, 64, 0);
    }

    #[test]
    fn level_memory_len_and_dim() {
        let levels = LevelMemory::new(5, 100, 0);
        assert_eq!(levels.len(), 5);
        assert_eq!(levels.dim(), 100);
        assert_eq!(levels.iter().count(), 5);
    }
}
