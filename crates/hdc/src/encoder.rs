//! The ID-Level spectrum encoder (Eq. 2 of the SpecHD paper).

use crate::{
    BinaryHypervector, HvPack, IntensityQuantizer, IntensityScale, ItemMemory, LevelMemory,
    MajorityAccumulator, MzQuantizer,
};

/// Configuration for [`IdLevelEncoder`].
///
/// The paper's deployed configuration is `dim = 2048`; `mz_bins` (`f`) and
/// `intensity_levels` (`q`) control the two item memories held in
/// partitioned on-chip RAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Hypervector dimensionality `D` (paper: 2048).
    pub dim: usize,
    /// Number of m/z quantization bins `f` (size of the ID memory).
    pub mz_bins: usize,
    /// Number of intensity quantization levels `q` (size of the Level memory).
    pub intensity_levels: usize,
    /// The m/z range covered by the ID memory; values outside clamp.
    pub mz_range: (f64, f64),
    /// Seed for the two item memories.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            dim: 2048,
            mz_bins: 2048,
            intensity_levels: 64,
            mz_range: (200.0, 2000.0),
            seed: 0x5BEC_0CD5,
        }
    }
}

/// Encodes peak lists into binary hypervectors with the ID-Level scheme.
///
/// For each peak `(mz, intensity)` the encoder looks up `ID[bin(mz)]` and
/// `L[level(intensity)]`, XORs them, and accumulates the bound vectors into
/// per-dimension counters; a pointwise majority binarizes the result
/// (Eq. 2):
///
/// ```text
/// spectra_i = majority( Σ_peaks ID[f(mz)] ⊕ L[g(intensity)] )
/// ```
///
/// The encoder is deterministic for a given [`EncoderConfig`]; two encoders
/// built from the same config produce identical hypervectors, which is what
/// lets SpecHD store HVs once and re-cluster later ("one-time
/// preprocessing", §IV-B of the paper).
///
/// # Examples
///
/// ```
/// use spechd_hdc::{EncoderConfig, IdLevelEncoder};
/// let encoder = IdLevelEncoder::new(EncoderConfig::default());
/// let hv = encoder.encode(&[(500.0, 1.0), (600.5, 0.3)]);
/// assert_eq!(hv.dim(), 2048);
/// ```
#[derive(Debug, Clone)]
pub struct IdLevelEncoder {
    config: EncoderConfig,
    id_memory: ItemMemory,
    level_memory: LevelMemory,
    mz_quantizer: MzQuantizer,
    intensity_quantizer: IntensityQuantizer,
}

impl IdLevelEncoder {
    /// Builds the encoder, allocating both item memories.
    ///
    /// # Panics
    ///
    /// Panics if any config field is degenerate (zero dim/bins, fewer than
    /// two levels, or an empty m/z range).
    pub fn new(config: EncoderConfig) -> Self {
        let id_memory = ItemMemory::random(config.mz_bins, config.dim, config.seed);
        let level_memory = LevelMemory::new(
            config.intensity_levels,
            config.dim,
            config.seed.wrapping_add(1),
        );
        let mz_quantizer = MzQuantizer::new(config.mz_bins, config.mz_range);
        let intensity_quantizer =
            IntensityQuantizer::new(config.intensity_levels, IntensityScale::Sqrt);
        Self {
            config,
            id_memory,
            level_memory,
            mz_quantizer,
            intensity_quantizer,
        }
    }

    /// The configuration this encoder was built from.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The ID item memory (`ID[0, f]`).
    pub fn id_memory(&self) -> &ItemMemory {
        &self.id_memory
    }

    /// The correlated level memory (`L[0, q]`).
    pub fn level_memory(&self) -> &LevelMemory {
        &self.level_memory
    }

    /// On-chip memory footprint of both item memories in bytes — the
    /// quantity the paper partitions across BRAM banks.
    pub fn item_memory_bytes(&self) -> usize {
        self.id_memory.storage_bytes() + self.level_memory.storage_bytes()
    }

    /// Encodes a peak list of `(mz, relative_intensity)` pairs.
    ///
    /// Intensities are expected relative to the base peak (`[0, 1]`); the
    /// preprocessing crate produces exactly this form. An empty peak list
    /// encodes to the all-zero hypervector.
    pub fn encode(&self, peaks: &[(f64, f64)]) -> BinaryHypervector {
        let mut acc = MajorityAccumulator::new(self.config.dim);
        self.encode_into(peaks, &mut acc)
    }

    /// Encodes reusing a caller-provided accumulator (cleared first). This
    /// mirrors the streaming HLS kernel, which reuses one counter array for
    /// every spectrum, and avoids reallocation in hot loops.
    pub fn encode_into(
        &self,
        peaks: &[(f64, f64)],
        acc: &mut MajorityAccumulator,
    ) -> BinaryHypervector {
        assert_eq!(
            acc.dim(),
            self.config.dim,
            "accumulator dimensionality mismatch"
        );
        self.accumulate(peaks, acc);
        acc.finalize()
    }

    /// Encodes a batch of peak lists, reusing one accumulator.
    pub fn encode_batch(&self, spectra: &[Vec<(f64, f64)>]) -> Vec<BinaryHypervector> {
        let mut acc = MajorityAccumulator::new(self.config.dim);
        spectra
            .iter()
            .map(|peaks| self.encode_into(peaks, &mut acc))
            .collect()
    }

    /// Encodes a batch of peak lists straight into a contiguous [`HvPack`],
    /// reusing one accumulator and binarizing each spectrum in place into
    /// its packed row — no per-spectrum `BinaryHypervector` allocation.
    /// Bit-exact with [`IdLevelEncoder::encode_batch`].
    pub fn encode_batch_packed(&self, spectra: &[Vec<(f64, f64)>]) -> HvPack {
        let mut pack = HvPack::with_capacity(self.config.dim, spectra.len());
        let mut acc = MajorityAccumulator::new(self.config.dim);
        self.encode_batch_packed_into(spectra, &mut acc, &mut pack);
        pack
    }

    /// Appends the encodings of `spectra` to an existing pack, reusing the
    /// caller's accumulator — the incremental form of
    /// [`IdLevelEncoder::encode_batch_packed`] the streaming sharder uses
    /// to flush raw-spectrum buffers into a shard's pack without
    /// per-flush allocation.
    ///
    /// # Panics
    ///
    /// Panics if the pack's or accumulator's dimensionality differs from
    /// the encoder's.
    pub fn encode_batch_packed_into(
        &self,
        spectra: &[Vec<(f64, f64)>],
        acc: &mut MajorityAccumulator,
        pack: &mut HvPack,
    ) {
        assert_eq!(pack.dim(), self.config.dim, "pack dimensionality mismatch");
        pack.reserve(spectra.len());
        for peaks in spectra {
            self.encode_into_pack(peaks, acc, pack);
        }
    }

    /// Encodes one peak list and appends it as a new row of `pack`.
    ///
    /// # Panics
    ///
    /// Panics if the pack's or accumulator's dimensionality differs from
    /// the encoder's.
    pub fn encode_into_pack(
        &self,
        peaks: &[(f64, f64)],
        acc: &mut MajorityAccumulator,
        pack: &mut HvPack,
    ) {
        assert_eq!(pack.dim(), self.config.dim, "pack dimensionality mismatch");
        assert_eq!(
            acc.dim(),
            self.config.dim,
            "accumulator dimensionality mismatch"
        );
        self.accumulate(peaks, acc);
        acc.finalize_into_words(pack.push_zeroed());
    }

    /// Clears `acc` and accumulates every bound `ID ⊕ L` term of `peaks`.
    fn accumulate(&self, peaks: &[(f64, f64)], acc: &mut MajorityAccumulator) {
        acc.clear();
        for &(mz, intensity) in peaks {
            let id = self.id_memory.get(self.mz_quantizer.quantize(mz));
            let level = self
                .level_memory
                .get(self.intensity_quantizer.quantize(intensity));
            // Bind: ID ⊕ L, then accumulate the bound vector.
            let bound = id ^ level;
            acc.add(&bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_encoder() -> IdLevelEncoder {
        IdLevelEncoder::new(EncoderConfig {
            dim: 2048,
            mz_bins: 512,
            intensity_levels: 32,
            mz_range: (200.0, 2000.0),
            seed: 99,
        })
    }

    #[test]
    fn empty_peak_list_encodes_to_zeros() {
        let enc = test_encoder();
        assert_eq!(enc.encode(&[]), BinaryHypervector::zeros(2048));
    }

    #[test]
    fn encoding_is_deterministic_across_encoder_instances() {
        let peaks = vec![(300.0, 1.0), (450.5, 0.4), (999.9, 0.1)];
        let a = test_encoder().encode(&peaks);
        let b = test_encoder().encode(&peaks);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_codes() {
        let peaks = vec![(300.0, 1.0), (450.5, 0.4)];
        let cfg = EncoderConfig {
            seed: 1,
            ..EncoderConfig::default()
        };
        let a = IdLevelEncoder::new(cfg).encode(&peaks);
        let b = IdLevelEncoder::new(EncoderConfig { seed: 2, ..cfg }).encode(&peaks);
        assert!(
            a.hamming(&b) > 700,
            "independent memories must decorrelate codes"
        );
    }

    #[test]
    fn similar_spectra_closer_than_dissimilar() {
        let enc = test_encoder();
        let base: Vec<(f64, f64)> = (0..30)
            .map(|i| (250.0 + 55.0 * i as f64, 1.0 / (1.0 + i as f64)))
            .collect();
        // Perturb intensities slightly.
        let similar: Vec<(f64, f64)> = base
            .iter()
            .map(|&(mz, it)| (mz, (it * 1.1_f64).min(1.0)))
            .collect();
        // Entirely different m/z positions.
        let different: Vec<(f64, f64)> = (0..30)
            .map(|i| (233.0 + 57.3 * i as f64, 1.0 / (1.0 + i as f64)))
            .collect();
        let h_base = enc.encode(&base);
        let h_sim = enc.encode(&similar);
        let h_diff = enc.encode(&different);
        assert!(h_base.hamming(&h_sim) < h_base.hamming(&h_diff));
    }

    #[test]
    fn single_peak_encodes_to_bound_pair() {
        let enc = test_encoder();
        let hv = enc.encode(&[(300.0, 1.0)]);
        let id = enc.id_memory().get(enc.mz_quantizer.quantize(300.0));
        let level = enc
            .level_memory()
            .get(enc.intensity_quantizer.quantize(1.0));
        assert_eq!(hv, id ^ level);
    }

    #[test]
    fn peak_order_does_not_matter() {
        let enc = test_encoder();
        let fwd = vec![(300.0, 1.0), (500.0, 0.5), (900.0, 0.2)];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(enc.encode(&fwd), enc.encode(&rev));
    }

    #[test]
    fn encode_into_matches_encode() {
        let enc = test_encoder();
        let peaks = vec![(310.0, 0.8), (411.0, 0.6), (512.0, 0.4)];
        let mut acc = MajorityAccumulator::new(2048);
        assert_eq!(enc.encode_into(&peaks, &mut acc), enc.encode(&peaks));
        // Accumulator is reusable.
        let peaks2 = vec![(820.0, 1.0)];
        assert_eq!(enc.encode_into(&peaks2, &mut acc), enc.encode(&peaks2));
    }

    #[test]
    fn encode_batch_matches_individual() {
        let enc = test_encoder();
        let spectra = vec![
            vec![(300.0, 1.0)],
            vec![(400.0, 0.5), (600.0, 0.25)],
            vec![],
        ];
        let batch = enc.encode_batch(&spectra);
        for (hv, peaks) in batch.iter().zip(&spectra) {
            assert_eq!(*hv, enc.encode(peaks));
        }
    }

    #[test]
    fn encode_batch_packed_matches_encode_batch() {
        let enc = test_encoder();
        let spectra = vec![
            vec![(300.0, 1.0)],
            vec![(400.0, 0.5), (600.0, 0.25), (850.0, 0.9)],
            vec![],
            vec![(1999.0, 0.1)],
        ];
        let pack = enc.encode_batch_packed(&spectra);
        assert_eq!(pack.len(), spectra.len());
        assert_eq!(pack.dim(), enc.dim());
        assert_eq!(pack.to_hypervectors(), enc.encode_batch(&spectra));
    }

    #[test]
    fn incremental_pack_encoding_matches_batch() {
        let enc = test_encoder();
        let spectra = vec![
            vec![(300.0, 1.0)],
            vec![(400.0, 0.5), (600.0, 0.25)],
            vec![],
            vec![(850.0, 0.9), (1999.0, 0.1)],
        ];
        let batch = enc.encode_batch_packed(&spectra);
        // Same content arriving as chunks into a recycled pack.
        let mut pack = HvPack::new(enc.dim());
        let mut acc = MajorityAccumulator::new(enc.dim());
        enc.encode_batch_packed_into(&spectra[..1], &mut acc, &mut pack);
        enc.encode_batch_packed_into(&spectra[1..3], &mut acc, &mut pack);
        enc.encode_into_pack(&spectra[3], &mut acc, &mut pack);
        assert_eq!(pack, batch);
        // Reuse after clear stays bit-exact.
        pack.clear();
        enc.encode_batch_packed_into(&spectra, &mut acc, &mut pack);
        assert_eq!(pack, batch);
    }

    #[test]
    #[should_panic(expected = "pack dimensionality mismatch")]
    fn encode_into_pack_rejects_wrong_dim() {
        let enc = test_encoder();
        let mut pack = HvPack::new(64);
        let mut acc = MajorityAccumulator::new(2048);
        enc.encode_into_pack(&[(300.0, 1.0)], &mut acc, &mut pack);
    }

    #[test]
    fn intensity_changes_move_code_less_than_mz_changes() {
        // The correlated level memory makes small intensity shifts cheap,
        // while crossing into another m/z bin swaps an entire random ID.
        let enc = test_encoder();
        let base = vec![(500.0, 0.5); 1];
        let intensity_shift = vec![(500.0, 0.55); 1];
        let mz_shift = vec![(700.0, 0.5); 1];
        let h = enc.encode(&base);
        let d_int = h.hamming(&enc.encode(&intensity_shift));
        let d_mz = h.hamming(&enc.encode(&mz_shift));
        assert!(
            d_int < d_mz,
            "intensity jitter ({d_int}) must cost less than mz jump ({d_mz})"
        );
    }

    #[test]
    fn item_memory_bytes_accounts_for_both_memories() {
        let enc = test_encoder();
        let expect = (512 + 32) * 2048 / 8;
        assert_eq!(enc.item_memory_bytes(), expect);
    }

    #[test]
    fn default_config_matches_paper_dim() {
        let cfg = EncoderConfig::default();
        assert_eq!(cfg.dim, 2048);
    }
}
