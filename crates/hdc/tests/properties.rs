//! Property-style tests for the HDC core invariants.
//!
//! The workspace is dependency-free by design (the lock file pins a
//! std-only graph), so instead of `proptest` these tests draw their
//! random cases from the in-repo deterministic PRNG: every test loops
//! over a fixed number of seeded cases, which keeps failures perfectly
//! reproducible.

use spechd_hdc::{
    BinaryHypervector, EncoderConfig, IdLevelEncoder, LevelMemory, MajorityAccumulator,
};
use spechd_rng::{Rng, Xoshiro256StarStar};

const CASES: u64 = 64;

fn random_hv(dim: usize, rng: &mut Xoshiro256StarStar) -> BinaryHypervector {
    let mut sub = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
    BinaryHypervector::random(dim, &mut sub)
}

fn random_peaks(rng: &mut Xoshiro256StarStar, min_len: usize, max_len: usize) -> Vec<(f64, f64)> {
    let len = rng.range_usize(min_len, max_len);
    (0..len)
        .map(|_| (rng.range_f64(200.0, 2000.0), rng.range_f64(0.0, 1.0)))
        .collect()
}

#[test]
fn xor_is_involutive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x1000 + case);
        let a = random_hv(256, &mut rng);
        let b = random_hv(256, &mut rng);
        let bound = &a ^ &b;
        assert_eq!(&(&bound ^ &b), &a);
        assert_eq!(&(&bound ^ &a), &b);
    }
}

#[test]
fn xor_is_commutative() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x2000 + case);
        let a = random_hv(192, &mut rng);
        let b = random_hv(192, &mut rng);
        assert_eq!(&a ^ &b, &b ^ &a);
    }
}

#[test]
fn hamming_metric_axioms() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x3000 + case);
        let a = random_hv(320, &mut rng);
        let b = random_hv(320, &mut rng);
        let c = random_hv(320, &mut rng);
        // Identity of indiscernibles (one direction) + symmetry + triangle.
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }
}

#[test]
fn hamming_bounded_by_dim() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x4000 + case);
        let a = random_hv(128, &mut rng);
        let b = random_hv(128, &mut rng);
        assert!(a.hamming(&b) <= 128);
    }
}

#[test]
fn xor_distance_preservation() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x5000 + case);
        let a = random_hv(256, &mut rng);
        let b = random_hv(256, &mut rng);
        let key = random_hv(256, &mut rng);
        // Binding with a shared key is an isometry of Hamming space.
        assert_eq!((&a ^ &key).hamming(&(&b ^ &key)), a.hamming(&b));
    }
}

#[test]
fn count_ones_consistent_with_zero_distance() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x6000 + case);
        let a = random_hv(512, &mut rng);
        let z = BinaryHypervector::zeros(512);
        assert_eq!(a.hamming(&z), a.count_ones());
    }
}

#[test]
fn rotation_is_isometric() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x7000 + case);
        let a = random_hv(200, &mut rng);
        let b = random_hv(200, &mut rng);
        let k = rng.range_usize(0, 400);
        assert_eq!(a.rotate(k).hamming(&b.rotate(k)), a.hamming(&b));
    }
}

#[test]
fn majority_within_union_bounds() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x8000 + case);
        // Every set bit of the majority must be set in at least one member.
        let dim = 160;
        let n = rng.range_usize(1, 8);
        let hvs: Vec<BinaryHypervector> = (0..n).map(|_| random_hv(dim, &mut rng)).collect();
        let mut acc = MajorityAccumulator::new(dim);
        for h in &hvs {
            acc.add(h);
        }
        let maj = acc.finalize();
        let mut union = BinaryHypervector::zeros(dim);
        for h in &hvs {
            union = &union | h;
        }
        assert_eq!(&(&maj & &union), &maj, "majority must be subset of union");
    }
}

#[test]
fn level_memory_gap_monotone() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x9000 + case);
        let q = rng.range_usize(3, 24);
        let seed = rng.next_u64();
        let levels = LevelMemory::new(q, 1024, seed);
        let base = levels.get(0);
        let mut prev = 0u32;
        for k in 1..q {
            let d = base.hamming(levels.get(k));
            assert!(d >= prev, "level distance must be non-decreasing in gap");
            prev = d;
        }
    }
}

#[test]
fn encoder_deterministic() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xa000 + case);
        let seed = rng.next_u64();
        let peaks = random_peaks(&mut rng, 0, 40);
        let cfg = EncoderConfig {
            dim: 512,
            mz_bins: 128,
            intensity_levels: 16,
            mz_range: (200.0, 2000.0),
            seed,
        };
        let a = IdLevelEncoder::new(cfg).encode(&peaks);
        let b = IdLevelEncoder::new(cfg).encode(&peaks);
        assert_eq!(a, b);
    }
}

#[test]
fn encoder_permutation_invariant() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xb000 + case);
        let peaks = random_peaks(&mut rng, 1, 30);
        let rot = rng.range_usize(0, 30);
        let cfg = EncoderConfig {
            dim: 512,
            mz_bins: 128,
            intensity_levels: 16,
            mz_range: (200.0, 2000.0),
            seed: 5,
        };
        let enc = IdLevelEncoder::new(cfg);
        let mut rotated = peaks.clone();
        rotated.rotate_left(rot % peaks.len().max(1));
        assert_eq!(enc.encode(&peaks), enc.encode(&rotated));
    }
}
