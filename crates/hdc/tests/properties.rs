//! Property-based tests for the HDC core invariants.

use proptest::prelude::*;
use spechd_hdc::{
    BinaryHypervector, EncoderConfig, IdLevelEncoder, LevelMemory, MajorityAccumulator,
};
use spechd_rng::Xoshiro256StarStar;

fn hv_strategy(dim: usize) -> impl Strategy<Value = BinaryHypervector> {
    any::<u64>().prop_map(move |seed| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xor_is_involutive(a in hv_strategy(256), b in hv_strategy(256)) {
        let bound = &a ^ &b;
        prop_assert_eq!(&(&bound ^ &b), &a);
        prop_assert_eq!(&(&bound ^ &a), &b);
    }

    #[test]
    fn xor_is_commutative(a in hv_strategy(192), b in hv_strategy(192)) {
        prop_assert_eq!(&a ^ &b, &b ^ &a);
    }

    #[test]
    fn hamming_metric_axioms(
        a in hv_strategy(320),
        b in hv_strategy(320),
        c in hv_strategy(320),
    ) {
        // Identity of indiscernibles (one direction) + symmetry + triangle.
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn hamming_bounded_by_dim(a in hv_strategy(128), b in hv_strategy(128)) {
        prop_assert!(a.hamming(&b) <= 128);
    }

    #[test]
    fn xor_distance_preservation(
        a in hv_strategy(256),
        b in hv_strategy(256),
        key in hv_strategy(256),
    ) {
        // Binding with a shared key is an isometry of Hamming space.
        prop_assert_eq!((&a ^ &key).hamming(&(&b ^ &key)), a.hamming(&b));
    }

    #[test]
    fn count_ones_consistent_with_zero_distance(a in hv_strategy(512)) {
        let z = BinaryHypervector::zeros(512);
        prop_assert_eq!(a.hamming(&z), a.count_ones());
    }

    #[test]
    fn rotation_is_isometric(a in hv_strategy(200), b in hv_strategy(200), k in 0usize..400) {
        prop_assert_eq!(a.rotate(k).hamming(&b.rotate(k)), a.hamming(&b));
    }

    #[test]
    fn majority_within_union_bounds(seeds in proptest::collection::vec(any::<u64>(), 1..8)) {
        // Every set bit of the majority must be set in at least one member.
        let dim = 160;
        let hvs: Vec<BinaryHypervector> = seeds
            .iter()
            .map(|&s| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(s);
                BinaryHypervector::random(dim, &mut rng)
            })
            .collect();
        let mut acc = MajorityAccumulator::new(dim);
        for h in &hvs {
            acc.add(h);
        }
        let maj = acc.finalize();
        let mut union = BinaryHypervector::zeros(dim);
        for h in &hvs {
            union = &union | h;
        }
        prop_assert_eq!(&(&maj & &union), &maj, "majority must be subset of union");
    }

    #[test]
    fn level_memory_gap_monotone(q in 3usize..24, seed in any::<u64>()) {
        let levels = LevelMemory::new(q, 1024, seed);
        let base = levels.get(0);
        let mut prev = 0u32;
        for k in 1..q {
            let d = base.hamming(levels.get(k));
            prop_assert!(d >= prev, "level distance must be non-decreasing in gap");
            prev = d;
        }
    }

    #[test]
    fn encoder_deterministic(
        seed in any::<u64>(),
        peaks in proptest::collection::vec((200.0f64..2000.0, 0.0f64..1.0), 0..40),
    ) {
        let cfg = EncoderConfig { seed, ..EncoderConfig { dim: 512, mz_bins: 128, intensity_levels: 16, mz_range: (200.0, 2000.0), seed: 0 } };
        let a = IdLevelEncoder::new(cfg).encode(&peaks);
        let b = IdLevelEncoder::new(cfg).encode(&peaks);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn encoder_permutation_invariant(
        peaks in proptest::collection::vec((200.0f64..2000.0, 0.0f64..1.0), 1..30),
        rot in 0usize..30,
    ) {
        let cfg = EncoderConfig { dim: 512, mz_bins: 128, intensity_levels: 16, mz_range: (200.0, 2000.0), seed: 5 };
        let enc = IdLevelEncoder::new(cfg);
        let mut rotated = peaks.clone();
        rotated.rotate_left(rot % peaks.len().max(1));
        prop_assert_eq!(enc.encode(&peaks), enc.encode(&rotated));
    }
}
