//! MS/MS spectrum and precursor types.

use crate::{MsError, Peak};
use std::fmt;

/// The precursor ion that was selected for fragmentation.
///
/// # Examples
///
/// ```
/// use spechd_ms::Precursor;
/// let p = Precursor::new(742.338, 2).unwrap();
/// // Neutral (uncharged) mass: (m/z − proton) × z
/// assert!((p.neutral_mass() - 1482.66).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precursor {
    mz: f64,
    charge: u8,
}

impl Precursor {
    /// Creates a precursor.
    ///
    /// # Errors
    ///
    /// Returns [`MsError::InvalidSpectrum`] if `mz` is not finite/positive
    /// or `charge` is zero.
    pub fn new(mz: f64, charge: u8) -> Result<Self, MsError> {
        if !mz.is_finite() || mz <= 0.0 {
            return Err(MsError::InvalidSpectrum(format!(
                "precursor m/z {mz} must be positive"
            )));
        }
        if charge == 0 {
            return Err(MsError::InvalidSpectrum(
                "precursor charge must be non-zero".into(),
            ));
        }
        Ok(Self { mz, charge })
    }

    /// Mass-to-charge ratio of the precursor ion.
    pub fn mz(&self) -> f64 {
        self.mz
    }

    /// Charge state `z`.
    pub fn charge(&self) -> u8 {
        self.charge
    }

    /// Neutral (uncharged) monoisotopic mass: `(mz − proton) × z`.
    pub fn neutral_mass(&self) -> f64 {
        (self.mz - crate::PROTON_MASS) * f64::from(self.charge)
    }
}

impl fmt::Display for Precursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}/{}+", self.mz, self.charge)
    }
}

/// A tandem mass spectrum: an identifier, a precursor and a peak list
/// sorted by ascending m/z.
///
/// Construction validates every peak ([`Peak::is_valid`]) and sorts the
/// list, so downstream code (preprocessing, encoding) can rely on ordering
/// without re-checking.
///
/// # Examples
///
/// ```
/// use spechd_ms::{Peak, Precursor, Spectrum};
/// let spectrum = Spectrum::new(
///     "scan=1",
///     Precursor::new(500.3, 2)?,
///     vec![Peak::new(300.1, 10.0), Peak::new(200.2, 40.0)],
/// )?;
/// assert_eq!(spectrum.peaks()[0].mz, 200.2); // sorted on construction
/// assert_eq!(spectrum.base_peak().unwrap().intensity, 40.0);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    title: String,
    precursor: Precursor,
    retention_time: Option<f64>,
    peaks: Vec<Peak>,
}

impl Spectrum {
    /// Creates a spectrum, validating and sorting the peaks by m/z.
    ///
    /// # Errors
    ///
    /// Returns [`MsError::InvalidSpectrum`] if any peak has a non-finite or
    /// non-positive m/z or a negative/non-finite intensity.
    pub fn new(
        title: impl Into<String>,
        precursor: Precursor,
        mut peaks: Vec<Peak>,
    ) -> Result<Self, MsError> {
        for p in &peaks {
            if !p.is_valid() {
                return Err(MsError::InvalidSpectrum(format!("invalid peak {p:?}")));
            }
        }
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        Ok(Self {
            title: title.into(),
            precursor,
            retention_time: None,
            peaks,
        })
    }

    /// Sets the retention time (seconds) and returns `self` for chaining.
    pub fn with_retention_time(mut self, seconds: f64) -> Self {
        self.retention_time = Some(seconds);
        self
    }

    /// Identifier (scan title).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The precursor ion.
    pub fn precursor(&self) -> Precursor {
        self.precursor
    }

    /// Retention time in seconds, if known.
    pub fn retention_time(&self) -> Option<f64> {
        self.retention_time
    }

    /// The peak list, sorted by ascending m/z.
    pub fn peaks(&self) -> &[Peak] {
        &self.peaks
    }

    /// Number of peaks.
    pub fn peak_count(&self) -> usize {
        self.peaks.len()
    }

    /// Whether the spectrum has no peaks.
    pub fn is_empty(&self) -> bool {
        self.peaks.is_empty()
    }

    /// The most intense peak, if any.
    pub fn base_peak(&self) -> Option<Peak> {
        self.peaks
            .iter()
            .copied()
            .max_by(|a, b| a.intensity.total_cmp(&b.intensity))
    }

    /// Sum of all peak intensities.
    pub fn total_ion_current(&self) -> f64 {
        self.peaks.iter().map(|p| f64::from(p.intensity)).sum()
    }

    /// The (min, max) m/z of the peak list, if non-empty.
    pub fn mz_range(&self) -> Option<(f64, f64)> {
        match (self.peaks.first(), self.peaks.last()) {
            (Some(a), Some(b)) => Some((a.mz, b.mz)),
            _ => None,
        }
    }

    /// Peaks as `(mz, relative_intensity)` pairs normalized to the base
    /// peak — the exact input shape of the HDC encoder. Returns an empty
    /// vector for empty spectra.
    pub fn relative_peaks(&self) -> Vec<(f64, f64)> {
        let base = match self.base_peak() {
            Some(p) if p.intensity > 0.0 => f64::from(p.intensity),
            _ => return self.peaks.iter().map(|p| (p.mz, 0.0)).collect(),
        };
        self.peaks
            .iter()
            .map(|p| (p.mz, f64::from(p.intensity) / base))
            .collect()
    }

    /// Replaces the peak list (sorting and validating the new one).
    ///
    /// # Errors
    ///
    /// Returns [`MsError::InvalidSpectrum`] under the same conditions as
    /// [`Spectrum::new`].
    pub fn with_peaks(&self, peaks: Vec<Peak>) -> Result<Self, MsError> {
        let mut s = Self::new(self.title.clone(), self.precursor, peaks)?;
        s.retention_time = self.retention_time;
        Ok(s)
    }

    /// Approximate serialized size in bytes (title + 12 bytes per peak +
    /// fixed header), used by compression accounting.
    pub fn approx_bytes(&self) -> usize {
        self.title.len() + 24 + 12 * self.peaks.len()
    }
}

impl fmt::Display for Spectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Spectrum({}, {}, {} peaks)",
            self.title,
            self.precursor,
            self.peaks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum() -> Spectrum {
        Spectrum::new(
            "t",
            Precursor::new(500.0, 2).unwrap(),
            vec![
                Peak::new(300.0, 10.0),
                Peak::new(100.0, 50.0),
                Peak::new(200.0, 30.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn precursor_validation() {
        assert!(Precursor::new(500.0, 2).is_ok());
        assert!(Precursor::new(-1.0, 2).is_err());
        assert!(Precursor::new(f64::NAN, 2).is_err());
        assert!(Precursor::new(500.0, 0).is_err());
    }

    #[test]
    fn neutral_mass() {
        let p = Precursor::new(500.0, 3).unwrap();
        let expect = (500.0 - crate::PROTON_MASS) * 3.0;
        assert!((p.neutral_mass() - expect).abs() < 1e-9);
    }

    #[test]
    fn peaks_sorted_on_construction() {
        let s = spectrum();
        let mzs: Vec<f64> = s.peaks().iter().map(|p| p.mz).collect();
        assert_eq!(mzs, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn invalid_peak_rejected() {
        let r = Spectrum::new(
            "t",
            Precursor::new(500.0, 2).unwrap(),
            vec![Peak::new(100.0, -3.0)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn base_peak_and_tic() {
        let s = spectrum();
        assert_eq!(s.base_peak().unwrap(), Peak::new(100.0, 50.0));
        assert!((s.total_ion_current() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_spectrum_allowed() {
        let s = Spectrum::new("e", Precursor::new(400.0, 2).unwrap(), vec![]).unwrap();
        assert!(s.is_empty());
        assert!(s.base_peak().is_none());
        assert!(s.mz_range().is_none());
        assert!(s.relative_peaks().is_empty());
    }

    #[test]
    fn relative_peaks_normalized() {
        let s = spectrum();
        let rel = s.relative_peaks();
        assert_eq!(rel.len(), 3);
        assert!((rel[0].1 - 1.0).abs() < 1e-9, "base peak is 1.0");
        assert!((rel[1].1 - 0.6).abs() < 1e-9);
        assert!((rel[2].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn relative_peaks_all_zero_intensities() {
        let s = Spectrum::new(
            "z",
            Precursor::new(400.0, 2).unwrap(),
            vec![Peak::new(100.0, 0.0), Peak::new(200.0, 0.0)],
        )
        .unwrap();
        assert_eq!(s.relative_peaks(), vec![(100.0, 0.0), (200.0, 0.0)]);
    }

    #[test]
    fn retention_time_builder() {
        let s = spectrum().with_retention_time(123.4);
        assert_eq!(s.retention_time(), Some(123.4));
    }

    #[test]
    fn with_peaks_preserves_metadata() {
        let s = spectrum().with_retention_time(9.0);
        let s2 = s.with_peaks(vec![Peak::new(50.0, 1.0)]).unwrap();
        assert_eq!(s2.title(), "t");
        assert_eq!(s2.retention_time(), Some(9.0));
        assert_eq!(s2.peak_count(), 1);
    }

    #[test]
    fn mz_range() {
        let s = spectrum();
        assert_eq!(s.mz_range(), Some((100.0, 300.0)));
    }

    #[test]
    fn display_nonempty() {
        let s = spectrum();
        assert!(format!("{s}").contains("3 peaks"));
    }

    #[test]
    fn approx_bytes_scales_with_peaks() {
        let s = spectrum();
        assert_eq!(s.approx_bytes(), 1 + 24 + 36);
    }
}
