//! Mass spectrometry substrate for the SpecHD reproduction.
//!
//! This crate provides everything SpecHD consumes from the proteomics world:
//!
//! * A typed data model for MS/MS spectra: [`Peak`], [`Precursor`],
//!   [`Spectrum`], [`SpectrumDataset`].
//! * Peptide chemistry: [`Peptide`] with monoisotopic masses and b/y
//!   fragment-ion generation ([`fragment`]).
//! * A **synthetic dataset generator** ([`synth`]) producing labelled
//!   MS/MS runs with realistic cluster-size (Zipf), noise and jitter
//!   models — the stand-in for the PRIDE datasets the paper clusters
//!   (documented in `DESIGN.md`).
//! * The five Table-I dataset profiles ([`profiles`]) at full scale for the
//!   performance models.
//! * File formats ([`formats`]): MGF and MS2 read/write, and a minimal
//!   mzML reader/writer with hand-rolled base64.
//! * Streaming sources ([`stream`]): the [`stream::SpectrumStream`] trait
//!   with dataset, iterator, channel and lazy-synthetic adapters, feeding
//!   the sharded streaming pipeline in `spechd-core`.
//!
//! # Example
//!
//! ```
//! use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
//!
//! let config = SyntheticConfig { num_spectra: 200, num_peptides: 40, seed: 1,
//!     ..SyntheticConfig::default() };
//! let dataset = SyntheticGenerator::new(config).generate();
//! assert_eq!(dataset.len(), 200);
//! assert!(dataset.identified_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
pub mod formats;
pub mod fragment;
mod peak;
mod peptide;
pub mod profiles;
mod spectrum;
pub mod stream;
pub mod synth;

pub use dataset::{DatasetStats, SpectrumDataset};
pub use error::MsError;
pub use peak::Peak;
pub use peptide::{Peptide, AMINO_ACIDS, PROTON_MASS, WATER_MASS};
pub use spectrum::{Precursor, Spectrum};

/// Average mass of a hydrogen atom in Dalton, as used by Eq. (1) of the
/// SpecHD paper for precursor bucketing (`1.00794`).
pub const HYDROGEN_AVG_MASS: f64 = 1.00794;
