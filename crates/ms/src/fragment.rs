//! Theoretical fragment-ion generation (b/y ions).
//!
//! Collision-induced dissociation predominantly cleaves the peptide
//! backbone at amide bonds, producing *b* ions (N-terminal fragments) and
//! *y* ions (C-terminal fragments). The synthetic data generator and the
//! database search engine both derive their theoretical spectra from this
//! module, so a search against synthetic data behaves like a search against
//! instrument data with matched chemistry.

use crate::{Peak, Peptide, PROTON_MASS, WATER_MASS};

/// A fragment-ion series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IonSeries {
    /// N-terminal fragments: `b_i = sum(residues[..i]) + proton`.
    B,
    /// C-terminal fragments: `y_i = sum(residues[len-i..]) + water + proton`.
    Y,
}

/// One theoretical fragment ion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentIon {
    /// Which series the ion belongs to.
    pub series: IonSeries,
    /// Fragment length (the `i` in `b_i`/`y_i`), in `1..len`.
    pub ordinal: usize,
    /// Fragment charge state.
    pub charge: u8,
    /// Theoretical m/z.
    pub mz: f64,
}

/// Generates the complete b/y ion series for `peptide` at every fragment
/// charge in `1..=max_fragment_charge`, sorted by m/z.
///
/// # Panics
///
/// Panics if `max_fragment_charge == 0`.
///
/// # Examples
///
/// ```
/// use spechd_ms::fragment::{fragment_ions, IonSeries};
/// use spechd_ms::Peptide;
/// let p: Peptide = "PEPTIDEK".parse()?;
/// let ions = fragment_ions(&p, 1);
/// // 7 b-ions + 7 y-ions at charge 1.
/// assert_eq!(ions.len(), 14);
/// assert!(ions.windows(2).all(|w| w[0].mz <= w[1].mz));
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
pub fn fragment_ions(peptide: &Peptide, max_fragment_charge: u8) -> Vec<FragmentIon> {
    assert!(max_fragment_charge > 0, "fragment charge must be positive");
    let residues = peptide.residue_masses();
    let n = residues.len();
    let mut ions = Vec::with_capacity(2 * (n.saturating_sub(1)) * max_fragment_charge as usize);

    // Prefix sums for b ions, suffix sums for y ions.
    let mut prefix = 0.0;
    let mut prefixes = Vec::with_capacity(n);
    for &r in &residues {
        prefix += r;
        prefixes.push(prefix);
    }
    let total: f64 = prefix;

    for i in 1..n {
        let b_neutral = prefixes[i - 1];
        let y_neutral = total - prefixes[i - 1] + WATER_MASS;
        for z in 1..=max_fragment_charge {
            let zf = f64::from(z);
            ions.push(FragmentIon {
                series: IonSeries::B,
                ordinal: i,
                charge: z,
                mz: (b_neutral + zf * PROTON_MASS) / zf,
            });
            ions.push(FragmentIon {
                series: IonSeries::Y,
                ordinal: n - i,
                charge: z,
                mz: (y_neutral + zf * PROTON_MASS) / zf,
            });
        }
    }
    ions.sort_by(|a, b| a.mz.total_cmp(&b.mz));
    ions
}

/// Builds a theoretical peak list for `peptide`.
///
/// Intensities follow the empirical regularities search engines rely on:
/// y ions are roughly twice as intense as b ions, and mid-sequence
/// fragments are stronger than terminal ones (a smooth parabolic envelope).
/// The output is deterministic — noise is added by the synthetic generator,
/// not here.
pub fn theoretical_spectrum(peptide: &Peptide, max_fragment_charge: u8) -> Vec<Peak> {
    let n = peptide.len();
    let ions = fragment_ions(peptide, max_fragment_charge);
    ions.iter()
        .map(|ion| {
            let series_factor = match ion.series {
                IonSeries::Y => 1.0,
                IonSeries::B => 0.5,
            };
            // Parabolic envelope peaking at mid-sequence, in (0, 1].
            let x = ion.ordinal as f64 / n as f64;
            let envelope = (4.0 * x * (1.0 - x)).max(0.08);
            let charge_factor = 1.0 / f64::from(ion.charge);
            Peak::new(
                ion.mz,
                (1000.0 * series_factor * envelope * charge_factor) as f32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peptide() -> Peptide {
        Peptide::new("SAMPLER").unwrap()
    }

    #[test]
    fn ion_counts() {
        let p = peptide(); // 7 residues -> 6 cleavage sites
        assert_eq!(fragment_ions(&p, 1).len(), 12);
        assert_eq!(fragment_ions(&p, 2).len(), 24);
    }

    #[test]
    fn b1_is_first_residue_plus_proton() {
        let p = peptide();
        let ions = fragment_ions(&p, 1);
        let b1 = ions
            .iter()
            .find(|i| i.series == IonSeries::B && i.ordinal == 1)
            .unwrap();
        let expect = 87.032_028 + PROTON_MASS; // serine
        assert!((b1.mz - expect).abs() < 1e-6);
    }

    #[test]
    fn y1_is_last_residue_plus_water_plus_proton() {
        let p = peptide();
        let ions = fragment_ions(&p, 1);
        let y1 = ions
            .iter()
            .find(|i| i.series == IonSeries::Y && i.ordinal == 1)
            .unwrap();
        let expect = 156.101_111 + WATER_MASS + PROTON_MASS; // arginine
        assert!((y1.mz - expect).abs() < 1e-6);
    }

    #[test]
    fn complementary_pairs_sum_to_precursor_mass() {
        // b_i + y_(n-i) = M + 2 protons (for singly charged fragments).
        let p = peptide();
        let ions = fragment_ions(&p, 1);
        let m = p.monoisotopic_mass();
        let n = p.len();
        for i in 1..n {
            let b = ions
                .iter()
                .find(|ion| ion.series == IonSeries::B && ion.ordinal == i)
                .unwrap();
            let y = ions
                .iter()
                .find(|ion| ion.series == IonSeries::Y && ion.ordinal == n - i)
                .unwrap();
            let sum = b.mz + y.mz;
            assert!((sum - (m + 2.0 * PROTON_MASS)).abs() < 1e-6, "site {i}");
        }
    }

    #[test]
    fn ions_sorted_by_mz() {
        let ions = fragment_ions(&peptide(), 2);
        assert!(ions.windows(2).all(|w| w[0].mz <= w[1].mz));
    }

    #[test]
    fn doubly_charged_fragments_at_half_mz() {
        let p = peptide();
        let ions = fragment_ions(&p, 2);
        let b3_1 = ions
            .iter()
            .find(|i| i.series == IonSeries::B && i.ordinal == 3 && i.charge == 1)
            .unwrap();
        let b3_2 = ions
            .iter()
            .find(|i| i.series == IonSeries::B && i.ordinal == 3 && i.charge == 2)
            .unwrap();
        let neutral = (b3_1.mz - PROTON_MASS) * 1.0;
        let expect = (neutral + 2.0 * PROTON_MASS) / 2.0;
        assert!((b3_2.mz - expect).abs() < 1e-9);
    }

    #[test]
    fn theoretical_spectrum_valid_and_y_dominant() {
        let p = peptide();
        let peaks = theoretical_spectrum(&p, 1);
        assert_eq!(peaks.len(), 12);
        assert!(peaks.iter().all(|pk| pk.is_valid()));
        // Total y intensity should exceed total b intensity.
        let ions = fragment_ions(&p, 1);
        let (mut yb, mut bb) = (0.0f64, 0.0f64);
        for (peak, ion) in peaks.iter().zip(ions.iter()) {
            match ion.series {
                IonSeries::Y => yb += f64::from(peak.intensity),
                IonSeries::B => bb += f64::from(peak.intensity),
            }
        }
        assert!(yb > bb);
    }

    #[test]
    fn theoretical_spectrum_deterministic() {
        let p = peptide();
        assert_eq!(theoretical_spectrum(&p, 2), theoretical_spectrum(&p, 2));
    }

    #[test]
    fn single_residue_has_no_fragments() {
        let p = Peptide::new("K").unwrap();
        assert!(fragment_ions(&p, 1).is_empty());
        assert!(theoretical_spectrum(&p, 1).is_empty());
    }
}
