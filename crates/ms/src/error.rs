//! Error type shared by the MS data model and file format parsers.

use std::fmt;

/// Errors produced by spectrum construction and file format I/O.
#[derive(Debug)]
pub enum MsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A file could not be parsed; carries the 1-based line number (0 when
    /// unknown, e.g. for binary payload errors) and a description.
    Parse {
        /// 1-based line number of the offending input, 0 if not line-oriented.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A spectrum violated a model invariant (non-finite m/z, negative
    /// intensity, zero charge, ...).
    InvalidSpectrum(String),
}

impl MsError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        MsError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for MsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsError::Io(e) => write!(f, "i/o error: {e}"),
            MsError::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            MsError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            MsError::InvalidSpectrum(msg) => write!(f, "invalid spectrum: {msg}"),
        }
    }
}

impl std::error::Error for MsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MsError {
    fn from(e: std::io::Error) -> Self {
        MsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_variants() {
        let p = MsError::parse(12, "bad token");
        assert_eq!(p.to_string(), "parse error at line 12: bad token");
        let p0 = MsError::parse(0, "bad payload");
        assert_eq!(p0.to_string(), "parse error: bad payload");
        let i = MsError::InvalidSpectrum("negative intensity".into());
        assert!(i.to_string().contains("negative intensity"));
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = MsError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MsError>();
    }
}
