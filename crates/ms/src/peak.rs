//! A single mass-spectral peak.

use std::fmt;

/// One peak of an MS/MS spectrum: a mass-to-charge ratio and an intensity.
///
/// This is a passive, compound value in the C-struct spirit, so the fields
/// are public; [`crate::Spectrum`] enforces the invariants (finiteness,
/// ordering) at the container level.
///
/// # Examples
///
/// ```
/// use spechd_ms::Peak;
/// let p = Peak::new(445.12, 1520.0);
/// assert!(p.mz > 445.0 && p.intensity > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Peak {
    /// Mass-to-charge ratio in Thomson.
    pub mz: f64,
    /// Ion intensity (arbitrary units; relative after normalization).
    pub intensity: f32,
}

impl Peak {
    /// Creates a peak.
    pub fn new(mz: f64, intensity: f32) -> Self {
        Self { mz, intensity }
    }

    /// Whether both fields are finite and the intensity is non-negative.
    pub fn is_valid(&self) -> bool {
        self.mz.is_finite() && self.mz > 0.0 && self.intensity.is_finite() && self.intensity >= 0.0
    }
}

impl fmt::Display for Peak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} {:.2}", self.mz, self.intensity)
    }
}

impl From<(f64, f32)> for Peak {
    fn from((mz, intensity): (f64, f32)) -> Self {
        Self { mz, intensity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_checks() {
        assert!(Peak::new(100.0, 5.0).is_valid());
        assert!(Peak::new(100.0, 0.0).is_valid());
        assert!(!Peak::new(-1.0, 5.0).is_valid());
        assert!(!Peak::new(0.0, 5.0).is_valid());
        assert!(!Peak::new(f64::NAN, 5.0).is_valid());
        assert!(!Peak::new(100.0, f32::INFINITY).is_valid());
        assert!(!Peak::new(100.0, -2.0).is_valid());
    }

    #[test]
    fn display_format() {
        let p = Peak::new(445.1234, 1520.0);
        assert_eq!(p.to_string(), "445.1234 1520.00");
    }

    #[test]
    fn from_tuple() {
        let p: Peak = (10.5, 3.0f32).into();
        assert_eq!(p, Peak::new(10.5, 3.0));
    }
}
