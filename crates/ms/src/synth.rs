//! Synthetic MS/MS dataset generation with ground-truth labels.
//!
//! The SpecHD paper evaluates on PRIDE datasets (Table I) whose raw files
//! are tens of gigabytes and whose ground truth comes from an MSGF+
//! reanalysis. This module is the documented substitution (DESIGN.md §2):
//! it synthesizes labelled MS/MS runs whose *observable statistics* match
//! what the clustering algorithms care about —
//!
//! * replicate spectra of the same peptide are similar but jittered
//!   (m/z error in ppm, multiplicative intensity noise, peak dropout,
//!   additive noise peaks);
//! * cluster sizes follow a Zipf law (a few abundant peptides, a long tail
//!   of near-singletons);
//! * a configurable fraction of spectra is pure noise (unidentifiable);
//! * precursor charges are mixed (2+/3+ dominated, like tryptic digests).
//!
//! Every spectrum derived from a peptide carries that peptide's index as a
//! ground-truth label, enabling exact incorrect-clustering-ratio and
//! completeness computation.

use crate::fragment::theoretical_spectrum;
use crate::{Peak, Peptide, Precursor, Spectrum, SpectrumDataset};
use spechd_rng::{Rng, Xoshiro256StarStar, Zipf};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Total number of spectra to generate.
    pub num_spectra: usize,
    /// Size of the underlying peptide library.
    pub num_peptides: usize,
    /// Zipf exponent of the peptide abundance distribution (>1 ⇒ strong
    /// head, many tail singletons).
    pub zipf_exponent: f64,
    /// Relative probabilities of precursor charges 1+, 2+, 3+.
    pub charge_weights: [f64; 3],
    /// Peptide length range `[min, max]` (inclusive).
    pub peptide_len_range: (usize, usize),
    /// Gaussian fragment m/z jitter in parts-per-million.
    pub mz_jitter_ppm: f64,
    /// Gaussian precursor m/z jitter in parts-per-million.
    pub precursor_jitter_ppm: f64,
    /// Sigma of the log-normal multiplicative intensity noise.
    pub intensity_sigma: f64,
    /// Probability that each theoretical fragment peak is missing.
    pub peak_dropout: f64,
    /// Mean (Poisson) number of additive noise peaks per spectrum.
    pub noise_peaks_lambda: f64,
    /// Fraction of spectra that are pure noise (no peptide, label `None`).
    pub noise_spectrum_fraction: f64,
    /// Fraction of peptide-derived spectra whose label is hidden (`None`),
    /// modelling real runs where the search engine identifies only part of
    /// the data.
    pub hidden_label_fraction: f64,
    /// Fraction of library peptides that are *variants* of another library
    /// peptide, produced by swapping two adjacent residues: identical
    /// precursor mass (same bucket) and mostly shared fragment ions. These
    /// are the confusable cases that make the incorrect-clustering-ratio
    /// axis of Fig. 10 meaningful.
    pub family_fraction: f64,
    /// Instrument fragment m/z range; peaks outside are discarded.
    pub instrument_mz_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_spectra: 1_000,
            num_peptides: 250,
            zipf_exponent: 1.1,
            charge_weights: [0.05, 0.65, 0.30],
            peptide_len_range: (8, 22),
            mz_jitter_ppm: 20.0,
            precursor_jitter_ppm: 10.0,
            intensity_sigma: 0.35,
            peak_dropout: 0.12,
            noise_peaks_lambda: 8.0,
            noise_spectrum_fraction: 0.15,
            hidden_label_fraction: 0.10,
            family_fraction: 0.0,
            instrument_mz_range: (200.0, 2000.0),
            seed: 0x5EED_CAFE,
        }
    }
}

impl SyntheticConfig {
    /// A deliberately difficult preset for quality-curve experiments
    /// (Figs 6a/10/11): confusable peptide families, heavier noise and
    /// dropout, and a larger unidentifiable fraction — the regime where
    /// clustering tools separate, as on real PRIDE data.
    pub fn hard(num_spectra: usize, seed: u64) -> Self {
        Self {
            num_spectra,
            num_peptides: (num_spectra / 5).max(10),
            family_fraction: 0.15,
            noise_spectrum_fraction: 0.25,
            peak_dropout: 0.15,
            intensity_sigma: 0.4,
            noise_peaks_lambda: 10.0,
            mz_jitter_ppm: 20.0,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic synthetic dataset generator.
///
/// # Examples
///
/// ```
/// use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
/// let gen = SyntheticGenerator::new(SyntheticConfig {
///     num_spectra: 100, num_peptides: 25, seed: 7, ..SyntheticConfig::default()
/// });
/// let ds = gen.generate();
/// assert_eq!(ds.len(), 100);
/// // Same config ⇒ identical dataset.
/// let ds2 = SyntheticGenerator::new(gen.config().clone()).generate();
/// assert_eq!(ds.spectra()[0].title(), ds2.spectra()[0].title());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
    peptides: Vec<Peptide>,
}

impl SyntheticGenerator {
    /// Builds the generator, synthesizing the peptide library.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero peptides, empty
    /// length range, non-positive Zipf exponent, or all-zero charge
    /// weights).
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.num_peptides > 0, "need at least one peptide");
        assert!(
            config.peptide_len_range.0 >= 2
                && config.peptide_len_range.0 <= config.peptide_len_range.1,
            "peptide length range must be non-empty and >= 2"
        );
        assert!(config.zipf_exponent > 0.0, "zipf exponent must be positive");
        assert!(
            config.charge_weights.iter().sum::<f64>() > 0.0,
            "charge weights must not all be zero"
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
        let peptides = generate_peptide_library(
            config.num_peptides,
            config.peptide_len_range,
            config.family_fraction,
            &mut rng,
        );
        Self { config, peptides }
    }

    /// The configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The generated peptide library; label `k` in the output dataset
    /// refers to `peptide_library()[k]`.
    pub fn peptide_library(&self) -> &[Peptide] {
        &self.peptides
    }

    /// Generates the full labelled dataset.
    pub fn generate(&self) -> SpectrumDataset {
        let mut dataset = SpectrumDataset::new();
        let mut stream = self.stream();
        while let Some((s, label)) = stream.generate_next() {
            dataset.push(s, label);
        }
        dataset
    }

    /// A lazy generator yielding the exact spectrum sequence of
    /// [`SyntheticGenerator::generate`], one at a time — the synthetic
    /// source for streaming benches, which never materializes the dataset.
    pub fn stream(&self) -> SyntheticStream<'_> {
        // Use a stream distinct from the library stream so changing
        // num_spectra never changes the library.
        SyntheticStream {
            generator: self,
            rng: Xoshiro256StarStar::seed_from_u64(self.config.seed).stream(1),
            zipf: Zipf::new(self.peptides.len(), self.config.zipf_exponent),
            next_index: 0,
        }
    }

    fn draw_charge(&self, rng: &mut Xoshiro256StarStar) -> u8 {
        let w = &self.config.charge_weights;
        let total: f64 = w.iter().sum();
        let mut x = rng.next_f64() * total;
        for (i, &wi) in w.iter().enumerate() {
            if x < wi {
                return (i + 1) as u8;
            }
            x -= wi;
        }
        3
    }

    fn peptide_spectrum(
        &self,
        index: usize,
        pep_idx: usize,
        charge: u8,
        rng: &mut Xoshiro256StarStar,
    ) -> Spectrum {
        let cfg = &self.config;
        let peptide = &self.peptides[pep_idx];
        let max_frag_charge = if charge >= 3 { 2 } else { 1 };
        let mut peaks = Vec::new();
        for peak in theoretical_spectrum(peptide, max_frag_charge) {
            if rng.bernoulli(cfg.peak_dropout) {
                continue;
            }
            let jittered = jitter_ppm(peak.mz, cfg.mz_jitter_ppm, rng);
            if jittered < cfg.instrument_mz_range.0 || jittered > cfg.instrument_mz_range.1 {
                continue;
            }
            let noise = rng.log_normal(0.0, cfg.intensity_sigma) as f32;
            peaks.push(Peak::new(jittered, (peak.intensity * noise).max(1.0)));
        }
        // Additive chemical/electronic noise peaks at low intensity.
        let base = peaks
            .iter()
            .map(|p| p.intensity)
            .fold(0.0f32, f32::max)
            .max(1.0);
        let n_noise = rng.poisson(cfg.noise_peaks_lambda);
        for _ in 0..n_noise {
            let mz = rng.range_f64(cfg.instrument_mz_range.0, cfg.instrument_mz_range.1);
            let intensity = base * 0.05 * (-rng.next_f64().max(1e-9).ln()) as f32 * 0.5;
            peaks.push(Peak::new(mz, intensity.max(0.5)));
        }
        let precursor_mz = jitter_ppm(peptide.mz(charge), cfg.precursor_jitter_ppm, rng);
        let title = format!("synth:{index}:pep={pep_idx}:z={charge}");
        Spectrum::new(
            title,
            Precursor::new(precursor_mz, charge).expect("positive precursor"),
            peaks,
        )
        .expect("generator produces valid peaks")
        .with_retention_time(index as f64 * 0.5)
    }

    fn noise_spectrum(&self, index: usize, rng: &mut Xoshiro256StarStar) -> Spectrum {
        let cfg = &self.config;
        let count = 20 + rng.poisson(cfg.noise_peaks_lambda * 3.0) as usize;
        let peaks: Vec<Peak> = (0..count)
            .map(|_| {
                let mz = rng.range_f64(cfg.instrument_mz_range.0, cfg.instrument_mz_range.1);
                let intensity = (-rng.next_f64().max(1e-9).ln()) as f32 * 100.0;
                Peak::new(mz, intensity.max(0.5))
            })
            .collect();
        let charge = self.draw_charge(rng);
        let precursor_mz = rng.range_f64(300.0, 1500.0);
        Spectrum::new(
            format!("synth:{index}:noise:z={charge}"),
            Precursor::new(precursor_mz, charge).expect("positive precursor"),
            peaks,
        )
        .expect("generator produces valid peaks")
        .with_retention_time(index as f64 * 0.5)
    }
}

/// Lazy synthetic spectrum source (see [`SyntheticGenerator::stream`]).
///
/// Yields exactly `config.num_spectra` items, bit-identical to the dataset
/// [`SyntheticGenerator::generate`] would build, without holding more than
/// the spectrum in flight. Implements
/// [`SpectrumStream`](crate::stream::SpectrumStream).
#[derive(Debug)]
pub struct SyntheticStream<'a> {
    generator: &'a SyntheticGenerator,
    rng: Xoshiro256StarStar,
    zipf: Zipf,
    next_index: usize,
}

impl SyntheticStream<'_> {
    fn generate_next(&mut self) -> Option<(Spectrum, Option<u32>)> {
        let gen = self.generator;
        let cfg = &gen.config;
        if self.next_index >= cfg.num_spectra {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        Some(if self.rng.bernoulli(cfg.noise_spectrum_fraction) {
            (gen.noise_spectrum(index, &mut self.rng), None)
        } else {
            let pep_idx = self.zipf.sample(&mut self.rng) - 1;
            let charge = gen.draw_charge(&mut self.rng);
            let s = gen.peptide_spectrum(index, pep_idx, charge, &mut self.rng);
            let label = if self.rng.bernoulli(cfg.hidden_label_fraction) {
                None
            } else {
                Some(pep_idx as u32)
            };
            (s, label)
        })
    }
}

impl crate::stream::SpectrumStream for SyntheticStream<'_> {
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)> {
        self.generate_next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.generator.config.num_spectra - self.next_index;
        (rem, Some(rem))
    }
}

fn jitter_ppm(value: f64, ppm: f64, rng: &mut Xoshiro256StarStar) -> f64 {
    (value * (1.0 + rng.normal(0.0, ppm * 1e-6))).max(1.0)
}

/// Generates `count` distinct tryptic-like peptides (random residues,
/// C-terminal K or R). A `family_fraction` of the library consists of
/// adjacent-residue-swap variants of earlier peptides: same mass, mostly
/// shared fragments — the confusable cases real runs contain.
fn generate_peptide_library(
    count: usize,
    len_range: (usize, usize),
    family_fraction: f64,
    rng: &mut Xoshiro256StarStar,
) -> Vec<Peptide> {
    // Exclude I (isobaric with L) so every library peptide has a distinct
    // plausible sequence-to-mass story; keeps search-engine tests crisp.
    const RESIDUES: [char; 19] = [
        'A', 'C', 'D', 'E', 'F', 'G', 'H', 'K', 'L', 'M', 'N', 'P', 'Q', 'R', 'S', 'T', 'V', 'W',
        'Y',
    ];
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut peptides: Vec<Peptide> = Vec::with_capacity(count);
    while peptides.len() < count {
        let make_variant = !peptides.is_empty() && rng.bernoulli(family_fraction);
        let seq = if make_variant {
            // Swap two adjacent interior residues of an existing peptide.
            let base = rng.choose(&peptides).sequence().to_string();
            let mut chars: Vec<char> = base.chars().collect();
            if chars.len() < 4 {
                continue;
            }
            let pos = rng.range_usize(0, chars.len() - 2);
            if chars[pos] == chars[pos + 1] {
                continue; // identical residues: swap is a no-op, retry
            }
            chars.swap(pos, pos + 1);
            chars.into_iter().collect::<String>()
        } else {
            let len = rng.range_usize(len_range.0, len_range.1 + 1);
            let mut seq = String::with_capacity(len);
            for _ in 0..len - 1 {
                seq.push(*rng.choose(&RESIDUES));
            }
            seq.push(if rng.next_bool() { 'K' } else { 'R' });
            seq
        };
        if seen.insert(seq.clone()) {
            peptides.push(Peptide::new(seq).expect("library residues are valid"));
        }
    }
    peptides
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            num_spectra: 300,
            num_peptides: 60,
            seed: 11,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generates_requested_count() {
        let ds = SyntheticGenerator::new(small_config()).generate();
        assert_eq!(ds.len(), 300);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SyntheticGenerator::new(small_config()).generate();
        let b = SyntheticGenerator::new(small_config()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = SyntheticGenerator::new(small_config()).generate();
        let mut cfg = small_config();
        cfg.seed = 12;
        let b = SyntheticGenerator::new(cfg).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn library_size_and_validity() {
        let gen = SyntheticGenerator::new(small_config());
        assert_eq!(gen.peptide_library().len(), 60);
        for p in gen.peptide_library() {
            let last = p.sequence().chars().last().unwrap();
            assert!(last == 'K' || last == 'R', "tryptic terminus");
            assert!(p.len() >= 8 && p.len() <= 22);
        }
        // Distinctness.
        let set: std::collections::HashSet<&str> =
            gen.peptide_library().iter().map(|p| p.sequence()).collect();
        assert_eq!(set.len(), 60);
    }

    #[test]
    fn changing_num_spectra_keeps_library() {
        let mut cfg = small_config();
        let lib_a = SyntheticGenerator::new(cfg.clone())
            .peptide_library()
            .to_vec();
        cfg.num_spectra = 999;
        let lib_b = SyntheticGenerator::new(cfg).peptide_library().to_vec();
        assert_eq!(lib_a, lib_b);
    }

    #[test]
    fn noise_fraction_roughly_respected() {
        let mut cfg = small_config();
        cfg.num_spectra = 2_000;
        cfg.noise_spectrum_fraction = 0.25;
        cfg.hidden_label_fraction = 0.0;
        let ds = SyntheticGenerator::new(cfg).generate();
        let noise = ds.len() - ds.identified_count();
        let frac = noise as f64 / ds.len() as f64;
        assert!((frac - 0.25).abs() < 0.04, "noise fraction {frac}");
    }

    #[test]
    fn labels_match_titles() {
        let ds = SyntheticGenerator::new(small_config()).generate();
        for (s, label) in ds.iter() {
            if let Some(l) = label {
                assert!(
                    s.title().contains(&format!("pep={l}")),
                    "title {} vs label {l}",
                    s.title()
                );
            }
        }
    }

    #[test]
    fn zipf_head_peptide_has_many_replicates() {
        let mut cfg = small_config();
        cfg.num_spectra = 2_000;
        cfg.num_peptides = 1_000;
        cfg.zipf_exponent = 1.3;
        cfg.noise_spectrum_fraction = 0.0;
        cfg.hidden_label_fraction = 0.0;
        let ds = SyntheticGenerator::new(cfg).generate();
        let mut counts = std::collections::HashMap::new();
        for l in ds.labels().iter().flatten() {
            *counts.entry(*l).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let singletons = counts.values().filter(|&&c| c == 1).count();
        assert!(max > 100, "head cluster should be large, got {max}");
        assert!(
            singletons > 5,
            "tail should contain singletons, got {singletons}"
        );
    }

    #[test]
    fn precursor_mz_close_to_theoretical() {
        let gen = SyntheticGenerator::new(small_config());
        let ds = gen.generate();
        for (s, label) in ds.iter() {
            if let Some(l) = label {
                let pep = &gen.peptide_library()[l as usize];
                let z = s.precursor().charge();
                let theory = pep.mz(z);
                let ppm = (s.precursor().mz() - theory).abs() / theory * 1e6;
                assert!(ppm < 60.0, "precursor {ppm:.1} ppm off theory");
            }
        }
    }

    #[test]
    fn peaks_within_instrument_range() {
        let ds = SyntheticGenerator::new(small_config()).generate();
        for s in ds.spectra() {
            for p in s.peaks() {
                assert!(p.mz >= 200.0 && p.mz <= 2000.0, "peak {p:?}");
                assert!(p.is_valid());
            }
        }
    }

    #[test]
    fn replicates_share_peaks() {
        // Two spectra of the same peptide at the same charge must share many
        // fragment m/z values within tolerance; a spectrum of a different
        // peptide must share few. This is the core signal HDC exploits.
        let mut cfg = small_config();
        cfg.num_spectra = 3_000;
        cfg.noise_spectrum_fraction = 0.0;
        cfg.hidden_label_fraction = 0.0;
        let gen = SyntheticGenerator::new(cfg);
        let ds = gen.generate();
        // Find two replicates of the same (label, charge) and one other.
        let mut by_key: std::collections::HashMap<(u32, u8), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, (s, label)) in ds.iter().enumerate() {
            if let Some(l) = label {
                by_key
                    .entry((l, s.precursor().charge()))
                    .or_default()
                    .push(i);
            }
        }
        let (key, replicates) = by_key
            .iter()
            .find(|(_, v)| v.len() >= 2)
            .expect("replicates exist");
        let other = by_key
            .iter()
            .find(|(k, v)| k.0 != key.0 && !v.is_empty())
            .map(|(_, v)| v[0])
            .expect("another peptide exists");
        let shared = |a: &Spectrum, b: &Spectrum| -> usize {
            let tol = 0.05;
            a.peaks()
                .iter()
                .filter(|pa| b.peaks().iter().any(|pb| (pa.mz - pb.mz).abs() < tol))
                .count()
        };
        let s0 = ds.spectrum(replicates[0]);
        let s1 = ds.spectrum(replicates[1]);
        let s2 = ds.spectrum(other);
        assert!(
            shared(s0, s1) > shared(s0, s2),
            "replicates share {} peaks, strangers {}",
            shared(s0, s1),
            shared(s0, s2)
        );
    }

    #[test]
    fn stream_matches_generate() {
        use crate::stream::SpectrumStream as _;
        let gen = SyntheticGenerator::new(small_config());
        let ds = gen.generate();
        let mut stream = gen.stream();
        assert_eq!(stream.size_hint(), (300, Some(300)));
        for i in 0..ds.len() {
            let (s, label) = stream.next_spectrum().expect("stream length");
            assert_eq!(s, ds.spectra()[i], "spectrum {i}");
            assert_eq!(label, ds.labels()[i], "label {i}");
        }
        assert!(stream.next_spectrum().is_none());
        assert_eq!(stream.size_hint(), (0, Some(0)));
    }

    #[test]
    #[should_panic(expected = "at least one peptide")]
    fn zero_peptides_panics() {
        let mut cfg = small_config();
        cfg.num_peptides = 0;
        SyntheticGenerator::new(cfg);
    }
}
