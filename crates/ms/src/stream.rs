//! Streaming spectrum sources.
//!
//! The batch pipeline materializes a whole [`SpectrumDataset`] before any
//! downstream stage runs, so dataset size — not hardware — bounds what one
//! run can process. [`SpectrumStream`] is the pull-based counterpart: a
//! source hands out one `(Spectrum, label)` pair at a time, which lets the
//! consumer (the sharded streaming pipeline in `spechd-core`) keep only a
//! bounded window of raw spectra alive.
//!
//! Adapters cover the common source shapes:
//!
//! * [`DatasetStream`] — replays an in-memory dataset (the equivalence
//!   bridge between streaming and batch runs).
//! * [`IterStream`] — lifts any `Iterator<Item = (Spectrum, Option<u32>)>`.
//! * [`ChannelStream`] — drains an [`std::sync::mpsc`] receiver, blocking
//!   until producers hang up: the async-ingest shape where acquisition
//!   threads feed clustering.
//! * [`crate::synth::SyntheticStream`] — generates labelled synthetic
//!   spectra lazily, bit-identical to
//!   [`crate::synth::SyntheticGenerator::generate`].
//! * [`AssertSorted`] — marks a stream as ordered by neutral mass, which
//!   lets the consumer retire precursor-mass shards early (the paper's
//!   "data organization strategy based on precursor m/z sorting").

use crate::{Spectrum, SpectrumDataset, HYDROGEN_AVG_MASS};
use std::sync::mpsc::Receiver;

/// A pull-based source of spectra with optional ground-truth labels.
///
/// Implementations yield items until exhausted; `None` is final. The
/// stream is consumed exactly once, in order — the order *is* the item
/// index space of the run consuming it.
pub trait SpectrumStream {
    /// The next spectrum, or `None` when the stream has ended.
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)>;

    /// Whether spectra arrive in non-decreasing Eq. (1) neutral-mass order
    /// (`(mz − 1.00794) · charge`, see [`neutral_mass_key`]).
    ///
    /// When `true`, a consumer that shards by precursor mass may close a
    /// shard as soon as a heavier spectrum arrives, overlapping clustering
    /// with ingest. Returning `true` for an unsorted stream is a contract
    /// violation the consumer is entitled to panic on.
    fn sorted_by_mass(&self) -> bool {
        false
    }

    /// Lower/upper bounds on the remaining stream length, mirroring
    /// [`Iterator::size_hint`]. Purely an allocation hint.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// The sort key [`SpectrumStream::sorted_by_mass`] promises monotonicity
/// of: the Eq. (1) neutral mass `(mz − 1.00794) · charge`. Any bucketing
/// resolution preserves its order, so one sorted pass serves every
/// resolution.
pub fn neutral_mass_key(spectrum: &Spectrum) -> f64 {
    (spectrum.precursor().mz() - HYDROGEN_AVG_MASS) * f64::from(spectrum.precursor().charge())
}

/// Streams a borrowed [`SpectrumDataset`] in insertion order, cloning each
/// spectrum out. Reusable: construct one per replay.
///
/// # Examples
///
/// ```
/// use spechd_ms::stream::{DatasetStream, SpectrumStream};
/// use spechd_ms::SpectrumDataset;
///
/// let ds = SpectrumDataset::new();
/// let mut stream = DatasetStream::new(&ds);
/// assert!(stream.next_spectrum().is_none());
/// ```
#[derive(Debug)]
pub struct DatasetStream<'a> {
    dataset: &'a SpectrumDataset,
    next: usize,
}

impl<'a> DatasetStream<'a> {
    /// Creates a stream replaying `dataset` from the start.
    pub fn new(dataset: &'a SpectrumDataset) -> Self {
        Self { dataset, next: 0 }
    }
}

impl SpectrumStream for DatasetStream<'_> {
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some((self.dataset.spectra()[i].clone(), self.dataset.labels()[i]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.dataset.len() - self.next;
        (rem, Some(rem))
    }
}

/// Lifts any iterator of `(Spectrum, Option<u32>)` into a stream.
#[derive(Debug)]
pub struct IterStream<I> {
    iter: I,
}

impl<I: Iterator<Item = (Spectrum, Option<u32>)>> IterStream<I> {
    /// Wraps `iter`.
    pub fn new(iter: I) -> Self {
        Self { iter }
    }
}

impl<I: Iterator<Item = (Spectrum, Option<u32>)>> SpectrumStream for IterStream<I> {
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Drains an [`std::sync::mpsc`] channel of spectra: the shape where one or
/// more acquisition/parser threads produce while the clustering pipeline
/// consumes. [`SpectrumStream::next_spectrum`] blocks until an item arrives
/// or every sender is dropped (which ends the stream).
///
/// ## End-of-stream semantics
///
/// The stream ends when — and only when — **every** sender clone has been
/// dropped *and* the channel's buffer has been drained: items sent before
/// the last hang-up are always yielded first, in send order, and only then
/// does [`SpectrumStream::next_spectrum`] return `None`. Once it has
/// returned `None` the stream is fused (every later call is `None`).
///
/// Two producer-side shutdown protocols therefore look identical to the
/// consumer, which is exactly what a network front end needs:
///
/// * **Explicit close** — a producer finishes its batch and deliberately
///   drops its sender (the `spechd-server` `CloseJob` path: the last
///   participant closing a job drops the last sender, finalizing the
///   job's pipeline).
/// * **Abrupt producer death** — a producer thread panics or a client
///   socket disconnects mid-stream, dropping its sender in the unwind
///   (the `spechd-server` client-disconnect path). Everything it already
///   sent is still clustered; the pipeline finalizes cleanly instead of
///   hanging, because `mpsc` hang-up is observable no matter *why* the
///   sender dropped.
///
/// There is no out-of-band cancel: a consumer cannot distinguish a
/// graceful close from a crash, so pipelines built on `ChannelStream`
/// must treat both as "input complete" (and they do — `run_streaming`
/// finalizes all open shards and joins its worker scope on either).
///
/// # Examples
///
/// ```
/// use spechd_ms::stream::{ChannelStream, SpectrumStream};
/// use spechd_ms::{Peak, Precursor, Spectrum};
/// use std::sync::mpsc;
///
/// let (tx, rx) = mpsc::channel();
/// let s = Spectrum::new("scan=1", Precursor::new(500.0, 2)?, vec![Peak::new(210.0, 5.0)])?;
/// tx.send((s, None)).unwrap();
/// drop(tx);
/// let mut stream = ChannelStream::new(rx);
/// assert!(stream.next_spectrum().is_some());
/// assert!(stream.next_spectrum().is_none());
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug)]
pub struct ChannelStream {
    receiver: Receiver<(Spectrum, Option<u32>)>,
}

impl ChannelStream {
    /// Wraps a receiver; the stream ends when all senders hang up.
    pub fn new(receiver: Receiver<(Spectrum, Option<u32>)>) -> Self {
        Self { receiver }
    }
}

impl SpectrumStream for ChannelStream {
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)> {
        self.receiver.recv().ok()
    }
}

/// Marks an inner stream as sorted by non-decreasing neutral mass
/// (see [`neutral_mass_key`]), unlocking early shard retirement in
/// consumers. The claim is the caller's to get right; sharded consumers
/// verify monotonicity as keys arrive and panic on violations rather than
/// silently misclustering.
#[derive(Debug)]
pub struct AssertSorted<S> {
    inner: S,
}

impl<S: SpectrumStream> AssertSorted<S> {
    /// Asserts that `inner` yields spectra in non-decreasing
    /// [`neutral_mass_key`] order.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }
}

impl<S: SpectrumStream> SpectrumStream for AssertSorted<S> {
    fn next_spectrum(&mut self) -> Option<(Spectrum, Option<u32>)> {
        self.inner.next_spectrum()
    }

    fn sorted_by_mass(&self) -> bool {
        true
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Sorts a dataset by [`neutral_mass_key`] (stable, so equal-mass spectra
/// keep their relative order), returning the reordered dataset. The
/// convenience for feeding [`AssertSorted`] in tests and benches: batch-run
/// the sorted dataset, stream it sorted, compare.
pub fn sort_dataset_by_mass(dataset: &SpectrumDataset) -> SpectrumDataset {
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.sort_by(|&a, &b| {
        neutral_mass_key(&dataset.spectra()[a]).total_cmp(&neutral_mass_key(&dataset.spectra()[b]))
    });
    order
        .into_iter()
        .map(|i| (dataset.spectra()[i].clone(), dataset.labels()[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Peak, Precursor};

    fn spectrum(title: &str, mz: f64, charge: u8) -> Spectrum {
        Spectrum::new(
            title,
            Precursor::new(mz, charge).unwrap(),
            vec![Peak::new(300.0, 10.0)],
        )
        .unwrap()
    }

    fn dataset() -> SpectrumDataset {
        let mut ds = SpectrumDataset::new();
        ds.push(spectrum("b", 700.0, 2), Some(1));
        ds.push(spectrum("a", 500.0, 2), None);
        ds.push(spectrum("c", 400.0, 3), Some(2));
        ds
    }

    fn drain(s: &mut impl SpectrumStream) -> Vec<(Spectrum, Option<u32>)> {
        let mut out = Vec::new();
        while let Some(item) = s.next_spectrum() {
            out.push(item);
        }
        out
    }

    #[test]
    fn dataset_stream_replays_in_order() {
        let ds = dataset();
        let stream = DatasetStream::new(&ds);
        assert_eq!(stream.size_hint(), (3, Some(3)));
        assert!(!stream.sorted_by_mass());
        let items = drain(&mut { stream });
        assert_eq!(items.len(), 3);
        for (i, (s, l)) in items.iter().enumerate() {
            assert_eq!(s, &ds.spectra()[i]);
            assert_eq!(*l, ds.labels()[i]);
        }
    }

    #[test]
    fn iter_stream_lifts_iterators() {
        let ds = dataset();
        let items: Vec<(Spectrum, Option<u32>)> = ds.iter().map(|(s, l)| (s.clone(), l)).collect();
        let drained = drain(&mut IterStream::new(items.clone().into_iter()));
        assert_eq!(drained, items);
    }

    #[test]
    fn channel_stream_drains_buffer_after_explicit_close() {
        // Explicit close: producer sends everything, then deliberately
        // drops the sender. Buffered items must all be yielded, in send
        // order, before end-of-stream.
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..4 {
            tx.send((spectrum(&format!("s{i}"), 400.0 + f64::from(i), 2), Some(i)))
                .unwrap();
        }
        drop(tx); // close long before the consumer starts
        let mut stream = ChannelStream::new(rx);
        let items = drain(&mut stream);
        assert_eq!(items.len(), 4);
        assert!((0..4).all(|i| items[i as usize].1 == Some(i)));
        // Fused: once ended, the stream stays ended.
        assert!(stream.next_spectrum().is_none());
        assert!(stream.next_spectrum().is_none());
    }

    #[test]
    fn channel_stream_ends_only_when_last_sender_drops() {
        // Multiple producers (the multi-client server shape): dropping one
        // sender must not end the stream while another is still live.
        let (tx_a, rx) = std::sync::mpsc::channel();
        let tx_b = tx_a.clone();
        tx_a.send((spectrum("a", 400.0, 2), Some(0))).unwrap();
        drop(tx_a); // first producer hangs up (disconnect mid-stream)
        tx_b.send((spectrum("b", 500.0, 2), Some(1))).unwrap();
        let mut stream = ChannelStream::new(rx);
        assert_eq!(stream.next_spectrum().unwrap().1, Some(0));
        assert_eq!(stream.next_spectrum().unwrap().1, Some(1));
        // tx_b still live: the stream is not over. Prove it by sending
        // from another thread while the consumer blocks.
        let producer = std::thread::spawn(move || {
            tx_b.send((spectrum("c", 600.0, 2), Some(2))).unwrap();
            // tx_b drops here: *now* the stream may end.
        });
        assert_eq!(stream.next_spectrum().unwrap().1, Some(2));
        producer.join().unwrap();
        assert!(stream.next_spectrum().is_none());
    }

    #[test]
    fn channel_stream_abrupt_producer_death_looks_like_close() {
        // A producer that panics mid-stream drops its sender in the
        // unwind; the consumer sees everything already sent, then a clean
        // end-of-stream — not a hang.
        let (tx, rx) = std::sync::mpsc::channel();
        let producer = std::thread::spawn(move || {
            tx.send((spectrum("sent", 400.0, 2), Some(7))).unwrap();
            panic!("producer dies after one item");
        });
        assert!(producer.join().is_err());
        let items = drain(&mut ChannelStream::new(rx));
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].1, Some(7));
    }

    #[test]
    fn channel_stream_blocks_until_hangup() {
        let (tx, rx) = std::sync::mpsc::channel();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send((spectrum(&format!("s{i}"), 400.0 + i as f64, 2), Some(i)))
                    .unwrap();
            }
        });
        let items = drain(&mut ChannelStream::new(rx));
        producer.join().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[4].1, Some(4));
    }

    #[test]
    fn assert_sorted_sets_hint_and_passes_through() {
        let ds = sort_dataset_by_mass(&dataset());
        let stream = AssertSorted::new(DatasetStream::new(&ds));
        assert!(stream.sorted_by_mass());
        assert_eq!(stream.size_hint(), (3, Some(3)));
        let items = drain(&mut { stream });
        let keys: Vec<f64> = items.iter().map(|(s, _)| neutral_mass_key(s)).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys {keys:?}");
    }

    #[test]
    fn sort_preserves_multiset() {
        let ds = dataset();
        let sorted = sort_dataset_by_mass(&ds);
        assert_eq!(sorted.len(), ds.len());
        let mut titles: Vec<&str> = sorted.spectra().iter().map(|s| s.title()).collect();
        titles.sort_unstable();
        assert_eq!(titles, vec!["a", "b", "c"]);
        // Charge participates: (400−H)·3 ≈ 1197 outweighs (500−H)·2 ≈ 998,
        // so "c" sorts between "a" and "b" despite the lowest m/z.
        assert_eq!(sorted.spectra()[0].title(), "a");
        assert_eq!(sorted.spectra()[1].title(), "c");
        assert_eq!(sorted.spectra()[2].title(), "b");
    }

    #[test]
    fn neutral_mass_key_formula() {
        let s = spectrum("x", 500.5, 2);
        assert!((neutral_mass_key(&s) - (500.5 - HYDROGEN_AVG_MASS) * 2.0).abs() < 1e-12);
    }
}
