//! Mass spectrometry file formats.
//!
//! The MS acquisition pipeline (Fig. 1 of the paper) converts raw
//! instrument output into structured text/XML formats; SpecHD's
//! preprocessing consumes them. This module provides:
//!
//! * [`mgf`] — Mascot Generic Format, read/write (the most common exchange
//!   format for MS/MS peak lists).
//! * [`ms2`] — the MS2 text format, read/write.
//! * [`mzml`] — a minimal mzML reader/writer (uncompressed, base64-encoded
//!   32/64-bit binary arrays; see DESIGN.md §6 for the documented
//!   limitation regarding zlib-compressed files).
//! * [`base64`] — the RFC 4648 codec used by mzML binary arrays.
//!
//! All readers are line/byte tolerant: unknown headers are skipped, and
//! errors carry line numbers for diagnosis.

pub mod base64;
pub mod mgf;
pub mod ms2;
pub mod mzml;
