//! MS2 text format reader and writer.
//!
//! The MS2 format (McDonald et al. 2004) stores one fragmentation spectrum
//! per `S` record:
//!
//! ```text
//! H   CreationDate ...          (file-level headers)
//! S   42  42  500.25            (scan start, scan end, precursor m/z)
//! I   RTime   65.2              (per-spectrum info, optional)
//! Z   2   999.49                (charge, singly-protonated mass)
//! 210.1 33.0                    (peak lines)
//! ```

use crate::{MsError, Peak, Precursor, Spectrum, PROTON_MASS};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads all spectra from an MS2 stream.
///
/// When a spectrum carries several `Z` lines (ambiguous charge), the first
/// is used — the convention of most downstream tools.
///
/// # Errors
///
/// Returns [`MsError::Parse`] with a line number on malformed records and
/// [`MsError::Io`] on read failures.
///
/// # Examples
///
/// ```
/// use spechd_ms::formats::ms2;
/// let text = "H\tCreation\ttest\nS\t1\t1\t500.25\nZ\t2\t999.49\n210.1 33.0\n";
/// let spectra = ms2::read(text.as_bytes())?;
/// assert_eq!(spectra.len(), 1);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
pub fn read<R: Read>(reader: R) -> Result<Vec<Spectrum>, MsError> {
    let mut spectra = Vec::new();
    let mut current: Option<PendingSpectrum> = None;

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("H") => continue, // file header
            Some("S") => {
                if let Some(pending) = current.take() {
                    spectra.push(pending.build(lineno)?);
                }
                let scan = fields
                    .next()
                    .ok_or_else(|| MsError::parse(lineno, "S record missing scan number"))?;
                let _scan_end = fields.next();
                let mz: f64 = fields
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| MsError::parse(lineno, "S record missing precursor m/z"))?;
                current = Some(PendingSpectrum {
                    scan: scan.to_string(),
                    precursor_mz: mz,
                    charge: None,
                    rt: None,
                    peaks: Vec::new(),
                });
            }
            Some("Z") => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| MsError::parse(lineno, "Z record before S record"))?;
                let z: u8 = fields
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| MsError::parse(lineno, "invalid Z record"))?;
                if pending.charge.is_none() {
                    pending.charge = Some(z);
                }
            }
            Some("I") => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| MsError::parse(lineno, "I record before S record"))?;
                if let (Some("RTime"), Some(v)) = (fields.next(), fields.next()) {
                    pending.rt = v.parse::<f64>().ok();
                }
            }
            Some(first) => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| MsError::parse(lineno, "peak line before S record"))?;
                let mz: f64 = first.parse().map_err(|_| {
                    MsError::parse(lineno, format!("invalid peak line {trimmed:?}"))
                })?;
                let intensity: f32 =
                    fields.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        MsError::parse(lineno, format!("invalid peak line {trimmed:?}"))
                    })?;
                pending.peaks.push(Peak::new(mz, intensity));
            }
            None => unreachable!("split_whitespace on non-empty line yields a token"),
        }
    }
    if let Some(pending) = current.take() {
        spectra.push(pending.build(0)?);
    }
    Ok(spectra)
}

struct PendingSpectrum {
    scan: String,
    precursor_mz: f64,
    charge: Option<u8>,
    rt: Option<f64>,
    peaks: Vec<Peak>,
}

impl PendingSpectrum {
    fn build(self, lineno: usize) -> Result<Spectrum, MsError> {
        let precursor = Precursor::new(self.precursor_mz, self.charge.unwrap_or(2))
            .map_err(|e| MsError::parse(lineno, e.to_string()))?;
        let mut s = Spectrum::new(format!("scan={}", self.scan), precursor, self.peaks)
            .map_err(|e| MsError::parse(lineno, e.to_string()))?;
        if let Some(rt) = self.rt {
            s = s.with_retention_time(rt);
        }
        Ok(s)
    }
}

/// Writes spectra in MS2 format.
///
/// # Errors
///
/// Returns [`MsError::Io`] on write failures.
pub fn write<W: Write>(mut writer: W, spectra: &[Spectrum]) -> Result<(), MsError> {
    writeln!(writer, "H\tCreationDate\tspechd")?;
    writeln!(writer, "H\tExtractor\tspechd-ms")?;
    for (i, s) in spectra.iter().enumerate() {
        let scan = i + 1;
        writeln!(writer, "S\t{scan}\t{scan}\t{:.6}", s.precursor().mz())?;
        if let Some(rt) = s.retention_time() {
            writeln!(writer, "I\tRTime\t{rt:.3}")?;
        }
        let z = s.precursor().charge();
        let mh = (s.precursor().mz() - PROTON_MASS) * f64::from(z) + PROTON_MASS;
        writeln!(writer, "Z\t{z}\t{mh:.6}")?;
        for p in s.peaks() {
            writeln!(writer, "{:.5} {:.3}", p.mz, p.intensity)?;
        }
    }
    Ok(())
}

/// Serializes spectra to an MS2 string.
pub fn to_string(spectra: &[Spectrum]) -> String {
    let mut buf = Vec::new();
    write(&mut buf, spectra).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("MS2 output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        vec![
            Spectrum::new(
                "a",
                Precursor::new(500.25, 2).unwrap(),
                vec![Peak::new(210.1, 33.0), Peak::new(310.2, 11.5)],
            )
            .unwrap()
            .with_retention_time(65.2),
            Spectrum::new(
                "b",
                Precursor::new(612.4, 3).unwrap(),
                vec![Peak::new(250.0, 9.0)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let text = to_string(&sample());
        let parsed = read(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed[0].precursor().mz() - 500.25).abs() < 1e-6);
        assert_eq!(parsed[0].precursor().charge(), 2);
        assert_eq!(parsed[0].peak_count(), 2);
        assert!((parsed[0].retention_time().unwrap() - 65.2).abs() < 1e-3);
        assert_eq!(parsed[1].precursor().charge(), 3);
        assert_eq!(parsed[0].title(), "scan=1");
    }

    #[test]
    fn multiple_z_lines_take_first() {
        let text = "S\t1\t1\t500.0\nZ\t2\t999.0\nZ\t3\t1499.0\n100.0 1.0\n";
        let parsed = read(text.as_bytes()).unwrap();
        assert_eq!(parsed[0].precursor().charge(), 2);
    }

    #[test]
    fn missing_z_defaults_to_two() {
        let text = "S\t1\t1\t500.0\n100.0 1.0\n";
        let parsed = read(text.as_bytes()).unwrap();
        assert_eq!(parsed[0].precursor().charge(), 2);
    }

    #[test]
    fn peak_before_s_is_error() {
        let text = "100.0 1.0\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn z_before_s_is_error() {
        assert!(read("Z\t2\t999.0\n".as_bytes()).is_err());
    }

    #[test]
    fn malformed_s_record_is_error() {
        assert!(read("S\t1\n".as_bytes()).is_err());
        assert!(read("S\t1\t1\tnot_a_number\n".as_bytes()).is_err());
    }

    #[test]
    fn header_lines_ignored() {
        let text = "H\tCreationDate\tsomewhen\nS\t1\t1\t500.0\nZ\t2\t999.0\n100.0 1.0\n";
        assert_eq!(read(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(read("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn spectrum_without_peaks_allowed() {
        let text = "S\t1\t1\t500.0\nZ\t2\t999.0\n";
        let parsed = read(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].is_empty());
    }
}
