//! Mascot Generic Format (MGF) reader and writer.
//!
//! MGF is a line-oriented text format: each spectrum is a
//! `BEGIN IONS`/`END IONS` block with `KEY=VALUE` headers (`TITLE`,
//! `PEPMASS`, `CHARGE`, `RTINSECONDS`) followed by `m/z intensity` peak
//! lines. The reader skips unknown headers and comment lines (`#`, `;`),
//! matching the tolerance of common proteomics parsers.

use crate::{MsError, Peak, Precursor, Spectrum};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads all spectra from an MGF stream.
///
/// A `&mut` reference can be passed for any `R: Read`.
///
/// # Errors
///
/// Returns [`MsError::Parse`] (with line number) on malformed blocks and
/// [`MsError::Io`] on read failures. Spectra with a missing `PEPMASS` are
/// rejected; a missing `CHARGE` defaults to 2+ (the MGF convention for
/// unspecified tryptic data).
///
/// # Examples
///
/// ```
/// use spechd_ms::formats::mgf;
/// let text = "BEGIN IONS\nTITLE=scan=1\nPEPMASS=500.2\nCHARGE=2+\n\
///             210.1 33.0\n310.2 11.5\nEND IONS\n";
/// let spectra = mgf::read(text.as_bytes())?;
/// assert_eq!(spectra.len(), 1);
/// assert_eq!(spectra[0].peak_count(), 2);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
pub fn read<R: Read>(reader: R) -> Result<Vec<Spectrum>, MsError> {
    let mut spectra = Vec::new();
    let mut in_block = false;
    let mut title = String::new();
    let mut pepmass: Option<f64> = None;
    let mut charge: Option<u8> = None;
    let mut rt: Option<f64> = None;
    let mut peaks: Vec<Peak> = Vec::new();

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if line.eq_ignore_ascii_case("BEGIN IONS") {
            if in_block {
                return Err(MsError::parse(lineno, "nested BEGIN IONS"));
            }
            in_block = true;
            title.clear();
            pepmass = None;
            charge = None;
            rt = None;
            peaks.clear();
            continue;
        }
        if line.eq_ignore_ascii_case("END IONS") {
            if !in_block {
                return Err(MsError::parse(lineno, "END IONS without BEGIN IONS"));
            }
            let mz =
                pepmass.ok_or_else(|| MsError::parse(lineno, "spectrum block missing PEPMASS"))?;
            let z = charge.unwrap_or(2);
            let precursor =
                Precursor::new(mz, z).map_err(|e| MsError::parse(lineno, e.to_string()))?;
            let spec_title = if title.is_empty() {
                format!("index={}", spectra.len())
            } else {
                title.clone()
            };
            let mut s = Spectrum::new(spec_title, precursor, std::mem::take(&mut peaks))
                .map_err(|e| MsError::parse(lineno, e.to_string()))?;
            if let Some(seconds) = rt {
                s = s.with_retention_time(seconds);
            }
            spectra.push(s);
            in_block = false;
            continue;
        }
        if !in_block {
            // Global headers (e.g. COM=, SEARCH=) are permitted and skipped.
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            match key.trim().to_ascii_uppercase().as_str() {
                "TITLE" => title = value.trim().to_string(),
                "PEPMASS" => {
                    // PEPMASS may carry "mz [intensity]".
                    let first = value.split_whitespace().next().unwrap_or("");
                    pepmass = Some(first.parse::<f64>().map_err(|_| {
                        MsError::parse(lineno, format!("invalid PEPMASS {value:?}"))
                    })?);
                }
                "CHARGE" => {
                    charge = Some(parse_charge(value).ok_or_else(|| {
                        MsError::parse(lineno, format!("invalid CHARGE {value:?}"))
                    })?);
                }
                "RTINSECONDS" => {
                    rt = Some(value.trim().parse::<f64>().map_err(|_| {
                        MsError::parse(lineno, format!("invalid RTINSECONDS {value:?}"))
                    })?);
                }
                _ => {} // unknown header: skip
            }
            continue;
        }
        // Peak line: "mz intensity" (extra columns tolerated).
        let mut parts = line.split_whitespace();
        let mz: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| MsError::parse(lineno, format!("invalid peak line {line:?}")))?;
        let intensity: f32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| MsError::parse(lineno, format!("invalid peak line {line:?}")))?;
        peaks.push(Peak::new(mz, intensity));
    }
    if in_block {
        return Err(MsError::parse(0, "unterminated BEGIN IONS block"));
    }
    Ok(spectra)
}

fn parse_charge(value: &str) -> Option<u8> {
    let v = value.trim();
    // Accept "2", "2+", "+2"; take the first charge of a list like "2+ and 3+".
    let token = v.split([',', ' ']).next()?;
    let digits: String = token.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse::<u8>().ok().filter(|&z| z > 0)
}

/// Writes spectra as MGF.
///
/// A `&mut` reference can be passed for any `W: Write`.
///
/// # Errors
///
/// Returns [`MsError::Io`] on write failures.
pub fn write<W: Write>(mut writer: W, spectra: &[Spectrum]) -> Result<(), MsError> {
    for s in spectra {
        writeln!(writer, "BEGIN IONS")?;
        writeln!(writer, "TITLE={}", s.title())?;
        writeln!(writer, "PEPMASS={:.6}", s.precursor().mz())?;
        writeln!(writer, "CHARGE={}+", s.precursor().charge())?;
        if let Some(rt) = s.retention_time() {
            writeln!(writer, "RTINSECONDS={rt:.3}")?;
        }
        for p in s.peaks() {
            writeln!(writer, "{:.5} {:.3}", p.mz, p.intensity)?;
        }
        writeln!(writer, "END IONS")?;
    }
    Ok(())
}

/// Serializes spectra to an MGF string (convenience wrapper over
/// [`write()`]).
pub fn to_string(spectra: &[Spectrum]) -> String {
    let mut buf = Vec::new();
    write(&mut buf, spectra).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("MGF output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spectra() -> Vec<Spectrum> {
        vec![
            Spectrum::new(
                "scan=1",
                Precursor::new(500.25, 2).unwrap(),
                vec![Peak::new(210.1, 33.0), Peak::new(310.2, 11.5)],
            )
            .unwrap()
            .with_retention_time(65.2),
            Spectrum::new(
                "scan=2",
                Precursor::new(612.0, 3).unwrap(),
                vec![Peak::new(220.0, 5.0)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let spectra = sample_spectra();
        let text = to_string(&spectra);
        let parsed = read(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].title(), "scan=1");
        assert_eq!(parsed[0].precursor().charge(), 2);
        assert!((parsed[0].precursor().mz() - 500.25).abs() < 1e-6);
        assert_eq!(parsed[0].peak_count(), 2);
        assert!((parsed[0].retention_time().unwrap() - 65.2).abs() < 1e-3);
        assert_eq!(parsed[1].precursor().charge(), 3);
    }

    #[test]
    fn charge_formats() {
        assert_eq!(parse_charge("2+"), Some(2));
        assert_eq!(parse_charge("+3"), Some(3));
        assert_eq!(parse_charge(" 2 "), Some(2));
        assert_eq!(parse_charge("2+ and 3+"), Some(2));
        assert_eq!(parse_charge("zero"), None);
        assert_eq!(parse_charge("0"), None);
    }

    #[test]
    fn missing_charge_defaults_to_two() {
        let text = "BEGIN IONS\nTITLE=x\nPEPMASS=444.4\n100.0 1.0\nEND IONS\n";
        let spectra = read(text.as_bytes()).unwrap();
        assert_eq!(spectra[0].precursor().charge(), 2);
    }

    #[test]
    fn pepmass_with_intensity_column() {
        let text = "BEGIN IONS\nPEPMASS=444.4 12345.6\n100.0 1.0\nEND IONS\n";
        let spectra = read(text.as_bytes()).unwrap();
        assert!((spectra[0].precursor().mz() - 444.4).abs() < 1e-9);
    }

    #[test]
    fn missing_pepmass_is_error() {
        let text = "BEGIN IONS\nTITLE=x\n100.0 1.0\nEND IONS\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("PEPMASS"));
    }

    #[test]
    fn unterminated_block_is_error() {
        let text = "BEGIN IONS\nPEPMASS=444.4\n100.0 1.0\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn nested_begin_is_error() {
        let text = "BEGIN IONS\nBEGIN IONS\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn end_without_begin_is_error() {
        let text = "END IONS\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_unknown_headers_skipped() {
        let text = "# comment\nCOM=run42\nBEGIN IONS\nTITLE=x\nPEPMASS=400\n\
                    SCANS=17\n; another comment\n100.0 1.0 extra_col\nEND IONS\n";
        let spectra = read(text.as_bytes()).unwrap();
        assert_eq!(spectra.len(), 1);
        assert_eq!(spectra[0].peak_count(), 1);
    }

    #[test]
    fn bad_peak_line_is_error() {
        let text = "BEGIN IONS\nPEPMASS=400\nnot_a_number 1.0\nEND IONS\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "got: {err}");
    }

    #[test]
    fn empty_title_gets_index() {
        let text = "BEGIN IONS\nPEPMASS=400\n100.0 1.0\nEND IONS\n";
        let spectra = read(text.as_bytes()).unwrap();
        assert_eq!(spectra[0].title(), "index=0");
    }

    #[test]
    fn empty_input_gives_empty_vec() {
        assert!(read("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn peaks_sorted_after_read() {
        let text = "BEGIN IONS\nPEPMASS=400\n300.0 1.0\n100.0 2.0\nEND IONS\n";
        let spectra = read(text.as_bytes()).unwrap();
        assert!(spectra[0].peaks()[0].mz < spectra[0].peaks()[1].mz);
    }
}
