//! Minimal mzML reader and writer.
//!
//! mzML is the PSI standard XML format for mass spectrometry runs. This
//! module implements the subset SpecHD's pipeline needs:
//!
//! * **Writer** — emits well-formed mzML with one `<spectrum>` element per
//!   spectrum, 64-bit m/z and 32-bit intensity arrays, base64-encoded,
//!   uncompressed.
//! * **Reader** — a lightweight scanner (no general XML parser) that
//!   extracts `<spectrum>` elements, their `selected ion m/z` / `charge
//!   state` cvParams and their binary data arrays. zlib-compressed arrays
//!   are rejected with a clear error (documented limitation, DESIGN.md §6).
//!
//! The reader accepts any mzML whose binary arrays are uncompressed and
//! whose cvParams use the standard accessions (`MS:1000744`, `MS:1000041`,
//! `MS:1000514`, `MS:1000515`, `MS:1000523`, `MS:1000521`).

use crate::formats::base64;
use crate::{MsError, Peak, Precursor, Spectrum};
use std::io::{Read, Write};

/// Reads all MS2-level spectra from an mzML stream.
///
/// # Errors
///
/// Returns [`MsError::Parse`] for structurally invalid documents,
/// compressed binary arrays or mismatched array lengths, and
/// [`MsError::Io`] on read failures.
pub fn read<R: Read>(mut reader: R) -> Result<Vec<Spectrum>, MsError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_str(&text)
}

/// Reads all spectra from an mzML document held in memory.
///
/// # Errors
///
/// See [`read`].
pub fn read_str(text: &str) -> Result<Vec<Spectrum>, MsError> {
    let mut spectra = Vec::new();
    let mut cursor = 0usize;
    while let Some(start_rel) = text[cursor..].find("<spectrum ") {
        let start = cursor + start_rel;
        let end_rel = text[start..]
            .find("</spectrum>")
            .ok_or_else(|| MsError::parse(0, "unterminated <spectrum> element"))?;
        let end = start + end_rel + "</spectrum>".len();
        let element = &text[start..end];
        spectra.push(parse_spectrum_element(element, spectra.len())?);
        cursor = end;
    }
    Ok(spectra)
}

fn parse_spectrum_element(element: &str, index: usize) -> Result<Spectrum, MsError> {
    let id = find_attr(element, "<spectrum ", "id").unwrap_or_else(|| format!("index={index}"));

    // Precursor information from cvParams.
    let precursor_mz = find_cv_value(element, "MS:1000744")
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or_else(|| MsError::parse(0, format!("spectrum {id:?} missing selected ion m/z")))?;
    let charge = find_cv_value(element, "MS:1000041")
        .and_then(|v| v.parse::<u8>().ok())
        .unwrap_or(2);

    // Binary data arrays.
    let mut mz_values: Option<Vec<f64>> = None;
    let mut intensity_values: Option<Vec<f32>> = None;
    let mut cursor = 0usize;
    while let Some(rel) = element[cursor..].find("<binaryDataArray") {
        let start = cursor + rel;
        let end_rel = element[start..]
            .find("</binaryDataArray>")
            .ok_or_else(|| MsError::parse(0, "unterminated <binaryDataArray>"))?;
        let end = start + end_rel + "</binaryDataArray>".len();
        let array = &element[start..end];
        cursor = end;

        if array.contains("MS:1000574") {
            return Err(MsError::parse(
                0,
                "zlib-compressed binary arrays are not supported (see DESIGN.md)",
            ));
        }
        let payload = extract_tag_text(array, "binary")
            .ok_or_else(|| MsError::parse(0, "binaryDataArray missing <binary> payload"))?;
        let is_mz = array.contains("MS:1000514");
        let is_intensity = array.contains("MS:1000515");
        let is_f64 = array.contains("MS:1000523");
        let is_f32 = array.contains("MS:1000521");
        if is_mz {
            let values = if is_f32 {
                base64::decode_f32(payload)?
                    .into_iter()
                    .map(f64::from)
                    .collect()
            } else {
                base64::decode_f64(payload)?
            };
            mz_values = Some(values);
        } else if is_intensity {
            let values = if is_f64 {
                base64::decode_f64(payload)?
                    .into_iter()
                    .map(|v| v as f32)
                    .collect()
            } else {
                base64::decode_f32(payload)?
            };
            intensity_values = Some(values);
        }
        let _ = is_f64;
    }

    let mzs =
        mz_values.ok_or_else(|| MsError::parse(0, format!("spectrum {id:?} missing m/z array")))?;
    let intensities = intensity_values
        .ok_or_else(|| MsError::parse(0, format!("spectrum {id:?} missing intensity array")))?;
    if mzs.len() != intensities.len() {
        return Err(MsError::parse(
            0,
            format!(
                "spectrum {id:?}: m/z array length {} != intensity array length {}",
                mzs.len(),
                intensities.len()
            ),
        ));
    }
    let peaks: Vec<Peak> = mzs
        .into_iter()
        .zip(intensities)
        .map(|(mz, intensity)| Peak::new(mz, intensity))
        .collect();
    let precursor = Precursor::new(precursor_mz, charge)?;
    Spectrum::new(id, precursor, peaks)
}

/// Extracts the value of `name="..."` within the opening tag starting at
/// `tag_open` in `text`.
fn find_attr(text: &str, tag_open: &str, name: &str) -> Option<String> {
    let start = text.find(tag_open)?;
    let rest = &text[start..];
    let tag_end = rest.find('>')?;
    let tag = &rest[..tag_end];
    attr_in(tag, name)
}

fn attr_in(tag: &str, name: &str) -> Option<String> {
    let needle = format!("{name}=\"");
    let at = tag.find(&needle)?;
    let after = &tag[at + needle.len()..];
    let close = after.find('"')?;
    Some(after[..close].to_string())
}

/// Finds the `value` attribute of the cvParam with the given accession.
fn find_cv_value(text: &str, accession: &str) -> Option<String> {
    let mut cursor = 0usize;
    while let Some(rel) = text[cursor..].find("<cvParam") {
        let start = cursor + rel;
        let end = text[start..]
            .find("/>")
            .or_else(|| text[start..].find('>'))?;
        let tag = &text[start..start + end];
        cursor = start + end;
        if tag.contains(&format!("accession=\"{accession}\"")) {
            return attr_in(tag, "value");
        }
    }
    None
}

/// Extracts the text between `<tag ...>` (or `<tag>`) and `</tag>`.
fn extract_tag_text<'a>(text: &'a str, tag: &str) -> Option<&'a str> {
    let open_a = format!("<{tag}>");
    let open_b = format!("<{tag} ");
    let start = if let Some(p) = text.find(&open_a) {
        p + open_a.len()
    } else {
        let p = text.find(&open_b)?;
        p + text[p..].find('>')? + 1
    };
    let close = format!("</{tag}>");
    let end = text[start..].find(&close)? + start;
    Some(text[start..end].trim())
}

/// Writes spectra as an mzML document.
///
/// # Errors
///
/// Returns [`MsError::Io`] on write failures.
pub fn write<W: Write>(mut writer: W, spectra: &[Spectrum]) -> Result<(), MsError> {
    writeln!(writer, r#"<?xml version="1.0" encoding="utf-8"?>"#)?;
    writeln!(
        writer,
        r#"<mzML xmlns="http://psi.hupo.org/ms/mzml" version="1.1.0">"#
    )?;
    writeln!(writer, r#"  <run id="spechd-run">"#)?;
    writeln!(
        writer,
        r#"    <spectrumList count="{}" defaultDataProcessingRef="dp">"#,
        spectra.len()
    )?;
    for (index, s) in spectra.iter().enumerate() {
        let mzs: Vec<f64> = s.peaks().iter().map(|p| p.mz).collect();
        let intensities: Vec<f32> = s.peaks().iter().map(|p| p.intensity).collect();
        let mz_b64 = base64::encode_f64(&mzs);
        let it_b64 = base64::encode_f32(&intensities);
        writeln!(
            writer,
            r#"      <spectrum index="{index}" id="{}" defaultArrayLength="{}">"#,
            escape_xml(s.title()),
            s.peak_count()
        )?;
        writeln!(
            writer,
            r#"        <cvParam cvRef="MS" accession="MS:1000511" name="ms level" value="2"/>"#
        )?;
        writeln!(writer, r#"        <precursorList count="1">"#)?;
        writeln!(writer, r#"          <precursor>"#)?;
        writeln!(writer, r#"            <selectedIonList count="1">"#)?;
        writeln!(writer, r#"              <selectedIon>"#)?;
        writeln!(
            writer,
            r#"                <cvParam cvRef="MS" accession="MS:1000744" name="selected ion m/z" value="{:.6}"/>"#,
            s.precursor().mz()
        )?;
        writeln!(
            writer,
            r#"                <cvParam cvRef="MS" accession="MS:1000041" name="charge state" value="{}"/>"#,
            s.precursor().charge()
        )?;
        writeln!(writer, r#"              </selectedIon>"#)?;
        writeln!(writer, r#"            </selectedIonList>"#)?;
        writeln!(writer, r#"          </precursor>"#)?;
        writeln!(writer, r#"        </precursorList>"#)?;
        writeln!(writer, r#"        <binaryDataArrayList count="2">"#)?;
        writeln!(
            writer,
            r#"          <binaryDataArray encodedLength="{}">"#,
            mz_b64.len()
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000523" name="64-bit float"/>"#
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000576" name="no compression"/>"#
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000514" name="m/z array"/>"#
        )?;
        writeln!(writer, r#"            <binary>{mz_b64}</binary>"#)?;
        writeln!(writer, r#"          </binaryDataArray>"#)?;
        writeln!(
            writer,
            r#"          <binaryDataArray encodedLength="{}">"#,
            it_b64.len()
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000521" name="32-bit float"/>"#
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000576" name="no compression"/>"#
        )?;
        writeln!(
            writer,
            r#"            <cvParam cvRef="MS" accession="MS:1000515" name="intensity array"/>"#
        )?;
        writeln!(writer, r#"            <binary>{it_b64}</binary>"#)?;
        writeln!(writer, r#"          </binaryDataArray>"#)?;
        writeln!(writer, r#"        </binaryDataArrayList>"#)?;
        writeln!(writer, r#"      </spectrum>"#)?;
    }
    writeln!(writer, r#"    </spectrumList>"#)?;
    writeln!(writer, r#"  </run>"#)?;
    writeln!(writer, r#"</mzML>"#)?;
    Ok(())
}

/// Serializes spectra to an mzML string.
pub fn to_string(spectra: &[Spectrum]) -> String {
    let mut buf = Vec::new();
    write(&mut buf, spectra).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("mzML output is UTF-8")
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        vec![
            Spectrum::new(
                "scan=1",
                Precursor::new(500.25, 2).unwrap(),
                vec![Peak::new(210.125, 33.5), Peak::new(310.25, 11.75)],
            )
            .unwrap(),
            Spectrum::new("scan=2", Precursor::new(612.4, 3).unwrap(), vec![]).unwrap(),
        ]
    }

    #[test]
    fn roundtrip_exact_floats() {
        let spectra = sample();
        let xml = to_string(&spectra);
        let parsed = read_str(&xml).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].title(), "scan=1");
        assert_eq!(parsed[0].precursor().charge(), 2);
        // Binary encoding preserves floats exactly.
        assert_eq!(parsed[0].peaks()[0].mz, 210.125);
        assert_eq!(parsed[0].peaks()[0].intensity, 33.5);
        assert_eq!(parsed[1].peak_count(), 0);
        assert_eq!(parsed[1].precursor().charge(), 3);
    }

    #[test]
    fn read_via_reader_trait() {
        let xml = to_string(&sample());
        let parsed = read(xml.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn missing_precursor_mz_is_error() {
        let xml = r#"<spectrum id="x"><binary>AAAA</binary></spectrum>"#;
        assert!(read_str(xml).is_err());
    }

    #[test]
    fn compressed_arrays_rejected() {
        let xml = r#"<spectrum id="x">
            <cvParam accession="MS:1000744" value="500.0"/>
            <binaryDataArray>
              <cvParam accession="MS:1000574" name="zlib compression"/>
              <cvParam accession="MS:1000514" name="m/z array"/>
              <binary>AAAA</binary>
            </binaryDataArray>
        </spectrum>"#;
        let err = read_str(xml).unwrap_err();
        assert!(err.to_string().contains("zlib"), "got {err}");
    }

    #[test]
    fn mismatched_array_lengths_rejected() {
        let mz = base64::encode_f64(&[100.0, 200.0]);
        let it = base64::encode_f32(&[1.0]);
        let xml = format!(
            r#"<spectrum id="x">
              <cvParam accession="MS:1000744" value="500.0"/>
              <binaryDataArray><cvParam accession="MS:1000523"/><cvParam accession="MS:1000514"/><binary>{mz}</binary></binaryDataArray>
              <binaryDataArray><cvParam accession="MS:1000521"/><cvParam accession="MS:1000515"/><binary>{it}</binary></binaryDataArray>
            </spectrum>"#
        );
        assert!(read_str(&xml).is_err());
    }

    #[test]
    fn default_charge_when_absent() {
        let mz = base64::encode_f64(&[100.0]);
        let it = base64::encode_f32(&[1.0]);
        let xml = format!(
            r#"<spectrum id="x">
              <cvParam accession="MS:1000744" value="500.0"/>
              <binaryDataArray><cvParam accession="MS:1000523"/><cvParam accession="MS:1000514"/><binary>{mz}</binary></binaryDataArray>
              <binaryDataArray><cvParam accession="MS:1000521"/><cvParam accession="MS:1000515"/><binary>{it}</binary></binaryDataArray>
            </spectrum>"#
        );
        let parsed = read_str(&xml).unwrap();
        assert_eq!(parsed[0].precursor().charge(), 2);
    }

    #[test]
    fn f32_mz_array_accepted() {
        let mz = base64::encode_f32(&[100.5]);
        let it = base64::encode_f32(&[1.0]);
        let xml = format!(
            r#"<spectrum id="x">
              <cvParam accession="MS:1000744" value="500.0"/>
              <binaryDataArray><cvParam accession="MS:1000521"/><cvParam accession="MS:1000514"/><binary>{mz}</binary></binaryDataArray>
              <binaryDataArray><cvParam accession="MS:1000521"/><cvParam accession="MS:1000515"/><binary>{it}</binary></binaryDataArray>
            </spectrum>"#
        );
        let parsed = read_str(&xml).unwrap();
        assert!((parsed[0].peaks()[0].mz - 100.5).abs() < 1e-6);
    }

    #[test]
    fn empty_document_gives_no_spectra() {
        assert!(read_str("<mzML></mzML>").unwrap().is_empty());
    }

    #[test]
    fn xml_escaping_in_titles() {
        let s = Spectrum::new(
            "a<b>&\"c",
            Precursor::new(400.0, 2).unwrap(),
            vec![Peak::new(100.0, 1.0)],
        )
        .unwrap();
        let xml = to_string(&[s]);
        assert!(xml.contains("a&lt;b&gt;&amp;&quot;c"));
        let parsed = read_str(&xml).unwrap();
        // Title comes back escaped-decoded? The reader does not unescape;
        // verify it at least parses and keeps a non-empty id.
        assert!(!parsed[0].title().is_empty());
    }

    #[test]
    fn unterminated_spectrum_is_error() {
        assert!(read_str("<spectrum id=\"x\">").is_err());
    }
}
