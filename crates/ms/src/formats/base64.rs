//! RFC 4648 base64 codec (standard alphabet, padded).
//!
//! mzML stores m/z and intensity arrays as base64-encoded IEEE-754 floats;
//! this hand-rolled codec keeps the workspace dependency-free.

use crate::MsError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded base64.
///
/// # Examples
///
/// ```
/// use spechd_ms::formats::base64;
/// assert_eq!(base64::encode(b"Man"), "TWFu");
/// assert_eq!(base64::encode(b"Ma"), "TWE=");
/// assert_eq!(base64::encode(b"M"), "TQ==");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3F] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3F] as char
        } else {
            '='
        });
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded base64, ignoring ASCII whitespace.
///
/// # Errors
///
/// Returns [`MsError::Parse`] on invalid characters or a truncated final
/// quantum.
///
/// # Examples
///
/// ```
/// use spechd_ms::formats::base64;
/// assert_eq!(base64::decode("TWFu")?, b"Man");
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
pub fn decode(text: &str) -> Result<Vec<u8>, MsError> {
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    let mut quad = [0u32; 4];
    let mut fill = 0usize;
    let mut padding = 0usize;
    for &c in text.as_bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            padding += 1;
            quad[fill] = 0;
            fill += 1;
        } else {
            if padding > 0 {
                return Err(MsError::parse(0, "base64 data after padding"));
            }
            quad[fill] = decode_char(c).ok_or_else(|| {
                MsError::parse(0, format!("invalid base64 character {:?}", c as char))
            })?;
            fill += 1;
        }
        if fill == 4 {
            let triple = (quad[0] << 18) | (quad[1] << 12) | (quad[2] << 6) | quad[3];
            out.push((triple >> 16) as u8);
            if padding < 2 {
                out.push((triple >> 8) as u8);
            }
            if padding < 1 {
                out.push(triple as u8);
            }
            fill = 0;
        }
    }
    if fill != 0 {
        return Err(MsError::parse(0, "truncated base64 input"));
    }
    if padding > 2 {
        return Err(MsError::parse(0, "too much base64 padding"));
    }
    Ok(out)
}

/// Encodes a slice of `f64` values as little-endian base64 (mzML
/// "64-bit float" array).
pub fn encode_f64(values: &[f64]) -> String {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    encode(&bytes)
}

/// Encodes a slice of `f32` values as little-endian base64 (mzML
/// "32-bit float" array).
pub fn encode_f32(values: &[f32]) -> String {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    encode(&bytes)
}

/// Decodes little-endian `f64` values from base64.
///
/// # Errors
///
/// Returns [`MsError::Parse`] if the payload is invalid base64 or its
/// length is not a multiple of 8.
pub fn decode_f64(text: &str) -> Result<Vec<f64>, MsError> {
    let bytes = decode(text)?;
    if bytes.len() % 8 != 0 {
        return Err(MsError::parse(
            0,
            "f64 array payload not a multiple of 8 bytes",
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

/// Decodes little-endian `f32` values from base64.
///
/// # Errors
///
/// Returns [`MsError::Parse`] if the payload is invalid base64 or its
/// length is not a multiple of 4.
pub fn decode_f32(text: &str) -> Result<Vec<f32>, MsError> {
    let bytes = decode(text)?;
    if bytes.len() % 4 != 0 {
        return Err(MsError::parse(
            0,
            "f32 array payload not a multiple of 4 bytes",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_ignores_whitespace() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zg = =".replace(' ', "").as_str()).unwrap(), b"f");
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_various_lengths() {
        for len in 0..32 {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(decode("Z!==").is_err());
        assert!(decode("Zg").is_err(), "truncated quantum");
        assert!(
            decode("Zg==Zg==").is_err(),
            "data after padding is rejected"
        );
        assert!(decode("Z===").is_err(), "excess padding");
        assert!(decode("=Zg=").is_err(), "data after padding");
    }

    #[test]
    fn f64_roundtrip() {
        let values = vec![0.0, 1.5, -std::f64::consts::PI, 445.120_03, f64::MAX];
        assert_eq!(decode_f64(&encode_f64(&values)).unwrap(), values);
    }

    #[test]
    fn f32_roundtrip() {
        let values = vec![0.0f32, 10.25, -1e20, 3.75];
        assert_eq!(decode_f32(&encode_f32(&values)).unwrap(), values);
    }

    #[test]
    fn f64_bad_length_rejected() {
        let enc = encode(&[1, 2, 3, 4]); // 4 bytes, not divisible by 8
        assert!(decode_f64(&enc).is_err());
    }

    #[test]
    fn f32_bad_length_rejected() {
        let enc = encode(&[1, 2, 3]); // 3 bytes, not divisible by 4
        assert!(decode_f32(&enc).is_err());
    }
}
