//! The five evaluation dataset profiles from Table I of the SpecHD paper.
//!
//! Performance and energy experiments (Table I, Figs 7–9) operate on these
//! profiles at **full scale** through the analytic models in `spechd-fpga`,
//! while quality experiments run on scaled-down synthetic datasets produced
//! by [`DatasetProfile::synthetic_config`].

use crate::synth::SyntheticConfig;

/// Static description of one PRIDE evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Short name used in reports.
    pub name: &'static str,
    /// PRIDE accession.
    pub pride_id: &'static str,
    /// Sample type as given in Table I.
    pub sample_type: &'static str,
    /// Number of MS/MS spectra.
    pub num_spectra: u64,
    /// On-disk size in bytes.
    pub bytes: u64,
    /// Preprocessing time reported in Table I (seconds).
    pub paper_pp_time_s: f64,
    /// Preprocessing energy reported in Table I (joules).
    pub paper_pp_energy_j: f64,
}

/// The five rows of Table I.
pub const TABLE1: [DatasetProfile; 5] = [
    DatasetProfile {
        name: "PXD001468",
        pride_id: "PXD001468",
        sample_type: "Kidney cell",
        num_spectra: 1_100_000,
        bytes: 5_600_000_000,
        paper_pp_time_s: 1.79,
        paper_pp_energy_j: 17.38,
    },
    DatasetProfile {
        name: "PXD001197",
        pride_id: "PXD001197",
        sample_type: "Kidney cell",
        num_spectra: 1_100_000,
        bytes: 25_000_000_000,
        paper_pp_time_s: 8.22,
        paper_pp_energy_j: 77.27,
    },
    DatasetProfile {
        name: "PXD003258",
        pride_id: "PXD003258",
        sample_type: "HeLa proteins",
        num_spectra: 4_100_000,
        bytes: 54_000_000_000,
        paper_pp_time_s: 18.44,
        paper_pp_energy_j: 166.53,
    },
    DatasetProfile {
        name: "PXD001511",
        pride_id: "PXD001511",
        sample_type: "HEK293 cell",
        num_spectra: 4_200_000,
        bytes: 87_000_000_000,
        paper_pp_time_s: 28.53,
        paper_pp_energy_j: 268.22,
    },
    DatasetProfile {
        name: "PXD000561",
        pride_id: "PXD000561",
        sample_type: "Human proteome",
        num_spectra: 21_100_000,
        bytes: 131_000_000_000,
        paper_pp_time_s: 43.38,
        paper_pp_energy_j: 382.62,
    },
];

impl DatasetProfile {
    /// Looks up a profile by PRIDE accession.
    pub fn find(pride_id: &str) -> Option<&'static DatasetProfile> {
        TABLE1.iter().find(|p| p.pride_id == pride_id)
    }

    /// The largest profile (PXD000561, the human proteome draft) — the
    /// dataset used for Fig. 8's standalone-clustering comparison.
    pub fn largest() -> &'static DatasetProfile {
        &TABLE1[4]
    }

    /// Dataset size in gigabytes (decimal, as in the paper).
    pub fn gigabytes(&self) -> f64 {
        self.bytes as f64 / 1e9
    }

    /// Average raw bytes per spectrum.
    pub fn bytes_per_spectrum(&self) -> f64 {
        self.bytes as f64 / self.num_spectra as f64
    }

    /// Builds a scaled-down synthetic stand-in with `num_spectra` spectra
    /// and a proportional peptide library, deterministic per profile.
    ///
    /// # Panics
    ///
    /// Panics if `num_spectra == 0`.
    pub fn synthetic_config(&self, num_spectra: usize) -> SyntheticConfig {
        assert!(num_spectra > 0, "need at least one spectrum");
        // Identified real runs resolve to roughly 1 peptide per 4 spectra;
        // keep that ratio so cluster-size structure scales sensibly.
        let num_peptides = (num_spectra / 4).max(8);
        // Deterministic per-profile seed derived from the accession.
        let seed = self.pride_id.bytes().fold(0xD15E_A5E0_u64, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b))
        });
        SyntheticConfig {
            num_spectra,
            num_peptides,
            seed,
            ..SyntheticConfig::default()
        }
    }

    /// Compression factor achieved by storing `dim`-bit hypervectors
    /// instead of the raw file: `bytes / (num_spectra * dim / 8)`.
    ///
    /// With `dim = 2048` the five Table-I profiles span ≈20–108×, matching
    /// Fig. 6b of the paper.
    pub fn compression_factor(&self, dim: usize) -> f64 {
        let hv_bytes = self.num_spectra as f64 * dim as f64 / 8.0;
        self.bytes as f64 / hv_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_count_and_order() {
        assert_eq!(TABLE1.len(), 5);
        // Ascending preprocessing time as in the paper's table.
        for w in TABLE1.windows(2) {
            assert!(w[0].paper_pp_time_s < w[1].paper_pp_time_s);
        }
    }

    #[test]
    fn find_by_accession() {
        let p = DatasetProfile::find("PXD000561").unwrap();
        assert_eq!(p.num_spectra, 21_100_000);
        assert!(DatasetProfile::find("PXD999999").is_none());
    }

    #[test]
    fn largest_is_human_proteome() {
        assert_eq!(DatasetProfile::largest().pride_id, "PXD000561");
    }

    #[test]
    fn gigabytes_match_paper() {
        assert!((DatasetProfile::find("PXD001468").unwrap().gigabytes() - 5.6).abs() < 0.01);
        assert!((DatasetProfile::find("PXD000561").unwrap().gigabytes() - 131.0).abs() < 0.01);
    }

    #[test]
    fn implied_msas_bandwidth_consistent() {
        // Table I implies ≈3 GB/s effective preprocessing bandwidth on every
        // row; this is the calibration target of the MSAS model.
        for p in &TABLE1 {
            let bw = p.gigabytes() / p.paper_pp_time_s;
            assert!((2.8..3.3).contains(&bw), "{}: {bw:.2} GB/s", p.pride_id);
        }
    }

    #[test]
    fn implied_msas_power_consistent() {
        for p in &TABLE1 {
            let w = p.paper_pp_energy_j / p.paper_pp_time_s;
            assert!((8.5..10.0).contains(&w), "{}: {w:.2} W", p.pride_id);
        }
    }

    #[test]
    fn compression_factors_span_fig6b_range() {
        // Fig. 6b: 24×–108× at D=2048.
        let factors: Vec<f64> = TABLE1.iter().map(|p| p.compression_factor(2048)).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        assert!((15.0..30.0).contains(&min), "min factor {min:.1}");
        assert!((80.0..120.0).contains(&max), "max factor {max:.1}");
    }

    #[test]
    fn synthetic_config_deterministic_and_distinct_per_profile() {
        let a = TABLE1[0].synthetic_config(500);
        let b = TABLE1[0].synthetic_config(500);
        let c = TABLE1[1].synthetic_config(500);
        assert_eq!(a, b);
        assert_ne!(a.seed, c.seed);
        assert_eq!(a.num_spectra, 500);
        assert_eq!(a.num_peptides, 125);
    }

    #[test]
    fn bytes_per_spectrum_plausible() {
        for p in &TABLE1 {
            let bps = p.bytes_per_spectrum();
            assert!((1_000.0..25_000.0).contains(&bps), "{}: {bps}", p.pride_id);
        }
    }
}
