//! Peptide sequences and monoisotopic mass computation.

use crate::MsError;
use std::fmt;

/// Monoisotopic mass of a proton in Dalton.
pub const PROTON_MASS: f64 = 1.007_276_466_88;

/// Monoisotopic mass of a water molecule in Dalton.
pub const WATER_MASS: f64 = 18.010_564_684;

/// The twenty proteinogenic amino acids as `(one-letter code, residue
/// monoisotopic mass)` pairs, ordered alphabetically by code.
pub const AMINO_ACIDS: [(char, f64); 20] = [
    ('A', 71.037_114),
    ('C', 103.009_185),
    ('D', 115.026_943),
    ('E', 129.042_593),
    ('F', 147.068_414),
    ('G', 57.021_464),
    ('H', 137.058_912),
    ('I', 113.084_064),
    ('K', 128.094_963),
    ('L', 113.084_064),
    ('M', 131.040_485),
    ('N', 114.042_927),
    ('P', 97.052_764),
    ('Q', 128.058_578),
    ('R', 156.101_111),
    ('S', 87.032_028),
    ('T', 101.047_679),
    ('V', 99.068_414),
    ('W', 186.079_313),
    ('Y', 163.063_329),
];

/// Returns the residue monoisotopic mass for a one-letter amino acid code.
pub fn residue_mass(code: char) -> Option<f64> {
    AMINO_ACIDS
        .iter()
        .find(|&&(c, _)| c == code)
        .map(|&(_, m)| m)
}

/// A peptide: a validated sequence of one-letter amino acid codes.
///
/// # Examples
///
/// ```
/// use spechd_ms::Peptide;
/// let p: Peptide = "PEPTIDEK".parse()?;
/// assert_eq!(p.len(), 8);
/// assert!((p.monoisotopic_mass() - 927.45).abs() < 0.01);
/// // m/z of the doubly protonated ion:
/// assert!((p.mz(2) - 464.73).abs() < 0.01);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Peptide {
    sequence: String,
}

impl Peptide {
    /// Creates a peptide from a sequence string.
    ///
    /// # Errors
    ///
    /// Returns [`MsError::InvalidSpectrum`] if the sequence is empty or
    /// contains a character that is not a one-letter amino acid code.
    pub fn new(sequence: impl Into<String>) -> Result<Self, MsError> {
        let sequence = sequence.into();
        if sequence.is_empty() {
            return Err(MsError::InvalidSpectrum("empty peptide sequence".into()));
        }
        for c in sequence.chars() {
            if residue_mass(c).is_none() {
                return Err(MsError::InvalidSpectrum(format!(
                    "unknown amino acid code {c:?} in {sequence:?}"
                )));
            }
        }
        Ok(Self { sequence })
    }

    /// The sequence as a string of one-letter codes.
    pub fn sequence(&self) -> &str {
        &self.sequence
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the sequence is empty (never true for constructed peptides).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Residue masses in sequence order.
    pub fn residue_masses(&self) -> Vec<f64> {
        self.sequence
            .chars()
            .map(|c| residue_mass(c).expect("validated at construction"))
            .collect()
    }

    /// Neutral monoisotopic mass: sum of residues + water.
    pub fn monoisotopic_mass(&self) -> f64 {
        self.residue_masses().iter().sum::<f64>() + WATER_MASS
    }

    /// m/z of the `charge`-protonated ion: `(M + z·proton) / z`.
    ///
    /// # Panics
    ///
    /// Panics if `charge == 0`.
    pub fn mz(&self, charge: u8) -> f64 {
        assert!(charge > 0, "charge must be positive");
        let z = f64::from(charge);
        (self.monoisotopic_mass() + z * PROTON_MASS) / z
    }

    /// The reversed sequence (keeping the C-terminal residue in place),
    /// the standard decoy construction for target–decoy FDR estimation.
    pub fn decoy(&self) -> Peptide {
        let chars: Vec<char> = self.sequence.chars().collect();
        if chars.len() <= 1 {
            return self.clone();
        }
        let (body, last) = chars.split_at(chars.len() - 1);
        let mut rev: String = body.iter().rev().collect();
        rev.push(last[0]);
        Peptide { sequence: rev }
    }
}

impl fmt::Display for Peptide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sequence)
    }
}

impl std::str::FromStr for Peptide {
    type Err = MsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Peptide::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_masses_known_values() {
        assert!((residue_mass('G').unwrap() - 57.021_464).abs() < 1e-6);
        assert!((residue_mass('W').unwrap() - 186.079_313).abs() < 1e-6);
        assert!(residue_mass('B').is_none());
        assert!(residue_mass('X').is_none());
    }

    #[test]
    fn glycine_mass() {
        // Glycine peptide "G": residue + water = 75.032.
        let p = Peptide::new("G").unwrap();
        assert!((p.monoisotopic_mass() - 75.032_028).abs() < 1e-5);
    }

    #[test]
    fn known_peptide_mass() {
        // SAMPLER: S+A+M+P+L+E+R + water.
        let p = Peptide::new("SAMPLER").unwrap();
        let expect = 87.032_028
            + 71.037_114
            + 131.040_485
            + 97.052_764
            + 113.084_064
            + 129.042_593
            + 156.101_111
            + WATER_MASS;
        assert!((p.monoisotopic_mass() - expect).abs() < 1e-9);
    }

    #[test]
    fn mz_charge_relation() {
        let p = Peptide::new("PEPTIDEK").unwrap();
        let m = p.monoisotopic_mass();
        for z in 1u8..=4 {
            let mz = p.mz(z);
            let back = (mz - PROTON_MASS) * f64::from(z);
            assert!((back - m).abs() < 1e-9, "charge {z}");
        }
    }

    #[test]
    fn higher_charge_means_lower_mz() {
        let p = Peptide::new("ACDEFGHIK").unwrap();
        assert!(p.mz(1) > p.mz(2));
        assert!(p.mz(2) > p.mz(3));
    }

    #[test]
    fn invalid_sequences_rejected() {
        assert!(Peptide::new("").is_err());
        assert!(Peptide::new("PEPTIDEZ1").is_err());
        assert!(Peptide::new("pep").is_err(), "lowercase not accepted");
    }

    #[test]
    fn parse_from_str() {
        let p: Peptide = "LKR".parse().unwrap();
        assert_eq!(p.sequence(), "LKR");
        assert!("L!R".parse::<Peptide>().is_err());
    }

    #[test]
    fn decoy_reverses_keeping_terminus() {
        let p = Peptide::new("ACDEFK").unwrap();
        assert_eq!(p.decoy().sequence(), "FEDCAK");
        // Decoy has identical mass (same residues).
        assert!((p.decoy().monoisotopic_mass() - p.monoisotopic_mass()).abs() < 1e-12);
    }

    #[test]
    fn decoy_of_single_residue_is_self() {
        let p = Peptide::new("K").unwrap();
        assert_eq!(p.decoy(), p);
    }

    #[test]
    fn leucine_isoleucine_isobaric() {
        let l = Peptide::new("LK").unwrap();
        let i = Peptide::new("IK").unwrap();
        assert!((l.monoisotopic_mass() - i.monoisotopic_mass()).abs() < 1e-12);
    }

    #[test]
    fn display_roundtrip() {
        let p = Peptide::new("SAMPLEK").unwrap();
        assert_eq!(p.to_string(), "SAMPLEK");
    }
}
