//! Dataset container pairing spectra with optional ground-truth labels.

use crate::Spectrum;
use std::fmt;

/// A collection of MS/MS spectra with optional per-spectrum ground-truth
/// labels (peptide identities).
///
/// Labels come from the synthetic generator (which knows the true peptide
/// of every spectrum) or from a database search; clustering quality metrics
/// (incorrect clustering ratio, completeness) are computed against them.
/// `None` marks spectra without an identification, mirroring the typical
/// situation where only a fraction of a real run is identifiable.
///
/// # Examples
///
/// ```
/// use spechd_ms::{Peak, Precursor, Spectrum, SpectrumDataset};
/// let mut ds = SpectrumDataset::new();
/// let s = Spectrum::new("scan=1", Precursor::new(500.0, 2)?, vec![Peak::new(210.0, 5.0)])?;
/// ds.push(s, Some(3));
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.labels()[0], Some(3));
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpectrumDataset {
    spectra: Vec<Spectrum>,
    labels: Vec<Option<u32>>,
}

impl SpectrumDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(spectra: Vec<Spectrum>, labels: Vec<Option<u32>>) -> Self {
        assert_eq!(
            spectra.len(),
            labels.len(),
            "spectra/labels length mismatch"
        );
        Self { spectra, labels }
    }

    /// Creates a dataset from spectra only (all labels `None`).
    pub fn from_spectra(spectra: Vec<Spectrum>) -> Self {
        let labels = vec![None; spectra.len()];
        Self { spectra, labels }
    }

    /// Appends one spectrum with its optional label.
    pub fn push(&mut self, spectrum: Spectrum, label: Option<u32>) {
        self.spectra.push(spectrum);
        self.labels.push(label);
    }

    /// Number of spectra.
    pub fn len(&self) -> usize {
        self.spectra.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.spectra.is_empty()
    }

    /// The spectra in insertion order.
    pub fn spectra(&self) -> &[Spectrum] {
        &self.spectra
    }

    /// Ground-truth labels, parallel to [`SpectrumDataset::spectra`].
    pub fn labels(&self) -> &[Option<u32>] {
        &self.labels
    }

    /// Returns spectrum `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn spectrum(&self, i: usize) -> &Spectrum {
        &self.spectra[i]
    }

    /// Iterates over `(spectrum, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Spectrum, Option<u32>)> {
        self.spectra.iter().zip(self.labels.iter().copied())
    }

    /// Number of spectra with a ground-truth identification.
    pub fn identified_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Number of distinct ground-truth labels present.
    pub fn distinct_labels(&self) -> usize {
        let mut seen: Vec<u32> = self.labels.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total approximate serialized size in bytes (see
    /// [`Spectrum::approx_bytes`]); the numerator of the paper's
    /// compression-factor metric.
    pub fn approx_bytes(&self) -> usize {
        self.spectra.iter().map(|s| s.approx_bytes()).sum()
    }

    /// Summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let n = self.spectra.len();
        let total_peaks: usize = self.spectra.iter().map(|s| s.peak_count()).sum();
        let mut min_mz = f64::INFINITY;
        let mut max_mz = f64::NEG_INFINITY;
        for s in &self.spectra {
            if let Some((lo, hi)) = s.mz_range() {
                min_mz = min_mz.min(lo);
                max_mz = max_mz.max(hi);
            }
        }
        DatasetStats {
            num_spectra: n,
            total_peaks,
            mean_peaks: if n == 0 {
                0.0
            } else {
                total_peaks as f64 / n as f64
            },
            identified: self.identified_count(),
            distinct_labels: self.distinct_labels(),
            mz_range: if min_mz.is_finite() {
                Some((min_mz, max_mz))
            } else {
                None
            },
        }
    }

    /// Consumes the dataset, returning its parts.
    pub fn into_parts(self) -> (Vec<Spectrum>, Vec<Option<u32>>) {
        (self.spectra, self.labels)
    }
}

impl Extend<(Spectrum, Option<u32>)> for SpectrumDataset {
    fn extend<T: IntoIterator<Item = (Spectrum, Option<u32>)>>(&mut self, iter: T) {
        for (s, l) in iter {
            self.push(s, l);
        }
    }
}

impl FromIterator<(Spectrum, Option<u32>)> for SpectrumDataset {
    fn from_iter<T: IntoIterator<Item = (Spectrum, Option<u32>)>>(iter: T) -> Self {
        let mut ds = Self::new();
        ds.extend(iter);
        ds
    }
}

/// Summary statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of spectra.
    pub num_spectra: usize,
    /// Total peak count across all spectra.
    pub total_peaks: usize,
    /// Mean peaks per spectrum.
    pub mean_peaks: f64,
    /// Spectra with a ground-truth label.
    pub identified: usize,
    /// Number of distinct labels.
    pub distinct_labels: usize,
    /// Overall (min, max) fragment m/z, if any spectra have peaks.
    pub mz_range: Option<(f64, f64)>,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spectra, {:.1} peaks/spectrum, {} identified, {} distinct peptides",
            self.num_spectra, self.mean_peaks, self.identified, self.distinct_labels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Peak, Precursor};

    fn spectrum(title: &str, mz: f64) -> Spectrum {
        Spectrum::new(
            title,
            Precursor::new(mz, 2).unwrap(),
            vec![Peak::new(200.0, 10.0), Peak::new(300.0, 20.0)],
        )
        .unwrap()
    }

    #[test]
    fn push_and_len() {
        let mut ds = SpectrumDataset::new();
        assert!(ds.is_empty());
        ds.push(spectrum("a", 500.0), Some(1));
        ds.push(spectrum("b", 600.0), None);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.identified_count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_validates_lengths() {
        SpectrumDataset::from_parts(vec![spectrum("a", 500.0)], vec![]);
    }

    #[test]
    fn from_spectra_all_unlabelled() {
        let ds = SpectrumDataset::from_spectra(vec![spectrum("a", 500.0)]);
        assert_eq!(ds.labels(), &[None]);
    }

    #[test]
    fn distinct_labels_dedup() {
        let mut ds = SpectrumDataset::new();
        ds.push(spectrum("a", 500.0), Some(7));
        ds.push(spectrum("b", 500.0), Some(7));
        ds.push(spectrum("c", 500.0), Some(9));
        ds.push(spectrum("d", 500.0), None);
        assert_eq!(ds.distinct_labels(), 2);
    }

    #[test]
    fn stats_aggregate() {
        let mut ds = SpectrumDataset::new();
        ds.push(spectrum("a", 500.0), Some(1));
        ds.push(spectrum("b", 700.0), None);
        let st = ds.stats();
        assert_eq!(st.num_spectra, 2);
        assert_eq!(st.total_peaks, 4);
        assert!((st.mean_peaks - 2.0).abs() < 1e-12);
        assert_eq!(st.identified, 1);
        assert_eq!(st.mz_range, Some((200.0, 300.0)));
        assert!(st.to_string().contains("2 spectra"));
    }

    #[test]
    fn stats_empty() {
        let ds = SpectrumDataset::new();
        let st = ds.stats();
        assert_eq!(st.num_spectra, 0);
        assert_eq!(st.mean_peaks, 0.0);
        assert!(st.mz_range.is_none());
    }

    #[test]
    fn collect_from_iterator() {
        let ds: SpectrumDataset = vec![
            (spectrum("a", 500.0), Some(1)),
            (spectrum("b", 600.0), None),
        ]
        .into_iter()
        .collect();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.iter().count(), 2);
    }

    #[test]
    fn approx_bytes_positive() {
        let mut ds = SpectrumDataset::new();
        ds.push(spectrum("a", 500.0), None);
        assert!(ds.approx_bytes() > 0);
    }

    #[test]
    fn into_parts_roundtrip() {
        let mut ds = SpectrumDataset::new();
        ds.push(spectrum("a", 500.0), Some(2));
        let (spectra, labels) = ds.into_parts();
        assert_eq!(spectra.len(), 1);
        assert_eq!(labels, vec![Some(2)]);
    }
}
