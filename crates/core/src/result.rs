//! Pipeline outcome types.

use crate::CompressionReport;
use spechd_cluster::{ClusterAssignment, HacStats};
use spechd_hdc::BinaryHypervector;
use spechd_metrics::ClusteringEval;
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{BucketStats, PreprocessStats};

/// Work and timing statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Preprocessing volume counters.
    pub preprocess: PreprocessStats,
    /// Bucketization statistics.
    pub buckets: BucketStats,
    /// Aggregate HAC work counters across buckets.
    pub hac: HacStats,
    /// Host seconds spent preprocessing.
    pub preprocess_s: f64,
    /// Host seconds spent encoding.
    pub encode_s: f64,
    /// Host seconds spent clustering (distances + NN-chain + consensus).
    pub cluster_s: f64,
    /// Total host seconds.
    pub total_s: f64,
}

/// The result of [`crate::SpecHd::run`].
#[derive(Debug, Clone)]
pub struct SpecHdOutcome {
    assignment: ClusterAssignment,
    kept: Vec<usize>,
    consensus: Vec<usize>,
    hvs: Vec<BinaryHypervector>,
    stats: RunStats,
    compression: CompressionReport,
}

impl SpecHdOutcome {
    pub(crate) fn new(
        assignment: ClusterAssignment,
        kept: Vec<usize>,
        consensus: Vec<usize>,
        hvs: Vec<BinaryHypervector>,
        stats: RunStats,
        compression: CompressionReport,
    ) -> Self {
        debug_assert_eq!(assignment.len(), kept.len());
        debug_assert_eq!(consensus.len(), assignment.num_clusters());
        Self {
            assignment,
            kept,
            consensus,
            hvs,
            stats,
            compression,
        }
    }

    /// Flat clusters over the *kept* (preprocessed) spectra; index `i`
    /// corresponds to original spectrum `kept()[i]`.
    pub fn assignment(&self) -> &ClusterAssignment {
        &self.assignment
    }

    /// Original dataset indices of the spectra that survived
    /// preprocessing, in output order.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Consensus (medoid) spectrum per cluster, as an index into the
    /// *original* dataset; entry `c` represents cluster `c`.
    pub fn consensus(&self) -> &[usize] {
        &self.consensus
    }

    /// The spectrum hypervectors, parallel to [`SpecHdOutcome::kept`] —
    /// the compressed archive the paper proposes storing for later
    /// re-analysis.
    pub fn hypervectors(&self) -> &[BinaryHypervector] {
        &self.hvs
    }

    /// Run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Compression accounting (Fig. 6b quantity).
    pub fn compression(&self) -> &CompressionReport {
        &self.compression
    }

    /// Expands the assignment to the full original dataset: spectra
    /// discarded by preprocessing become singletons (the convention the
    /// paper's clustered-spectra ratio uses).
    pub fn assignment_full(&self, original_len: usize) -> ClusterAssignment {
        let mut raw = vec![usize::MAX; original_len];
        for (out_idx, &orig_idx) in self.kept.iter().enumerate() {
            raw[orig_idx] = self.assignment.labels()[out_idx];
        }
        // Give each discarded spectrum a fresh singleton id.
        let mut next = self.assignment.num_clusters();
        for slot in raw.iter_mut() {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        ClusterAssignment::from_raw_labels(&raw)
    }

    /// Evaluates clustering quality against the dataset's ground-truth
    /// labels (discarded spectra count as singletons).
    pub fn evaluate(&self, dataset: &SpectrumDataset) -> ClusteringEval {
        let full = self.assignment_full(dataset.len());
        ClusteringEval::compute(full.labels(), dataset.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpecHd, SpecHdConfig};
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn outcome_and_dataset() -> (SpecHdOutcome, SpectrumDataset) {
        let ds = SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 200,
            num_peptides: 40,
            seed: 9,
            ..SyntheticConfig::default()
        })
        .generate();
        let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
        (outcome, ds)
    }

    #[test]
    fn assignment_full_covers_all_spectra() {
        let (outcome, ds) = outcome_and_dataset();
        let full = outcome.assignment_full(ds.len());
        assert_eq!(full.len(), ds.len());
        // Discarded spectra are singletons: cluster count grows by the
        // number of discarded spectra.
        let discarded = ds.len() - outcome.kept().len();
        assert_eq!(
            full.num_clusters(),
            outcome.assignment().num_clusters() + discarded
        );
    }

    #[test]
    fn full_assignment_preserves_kept_partition() {
        let (outcome, ds) = outcome_and_dataset();
        let full = outcome.assignment_full(ds.len());
        let labels = outcome.assignment().labels();
        for (i, &a) in outcome.kept().iter().enumerate() {
            for (j, &b) in outcome.kept().iter().enumerate() {
                let same_before = labels[i] == labels[j];
                let same_after = full.labels()[a] == full.labels()[b];
                assert_eq!(same_before, same_after);
            }
        }
    }

    #[test]
    fn hypervectors_parallel_to_kept() {
        let (outcome, _) = outcome_and_dataset();
        assert_eq!(outcome.hypervectors().len(), outcome.kept().len());
        for hv in outcome.hypervectors() {
            assert_eq!(hv.dim(), 2048);
        }
    }

    #[test]
    fn evaluate_returns_populated_metrics() {
        let (outcome, ds) = outcome_and_dataset();
        let eval = outcome.evaluate(&ds);
        assert_eq!(eval.num_items, ds.len());
        assert!(eval.num_identified > 0);
    }

    #[test]
    fn compression_report_positive() {
        let (outcome, _) = outcome_and_dataset();
        assert!(outcome.compression().factor() > 1.0);
    }
}
