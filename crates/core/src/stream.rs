//! Streaming, sharded execution of the SpecHD pipeline.
//!
//! [`SpecHd::run`](crate::SpecHd::run) materializes the whole dataset
//! before the first hypervector is encoded, so dataset size — not
//! hardware — bounds a run.
//! [`SpecHd::run_streaming`](crate::SpecHd::run_streaming) removes that
//! bound: spectra are pulled from a
//! [`SpectrumStream`] one at a time, preprocessed on arrival, routed into
//! the per-precursor-mass **shard** Eq. (1) assigns them to, and encoded in
//! bounded batches straight into the shard's own [`HvPack`]. A
//! [`std::thread::scope`] worker pool clusters shards as they close while
//! ingest continues, and a deterministic merge stitches per-shard labels
//! into one global [`spechd_cluster::ClusterAssignment`].
//!
//! ```text
//!  source ──▶ preprocess ──▶ sharder ──▶ [shard: raw buffer ≤ watermark]
//!  (stream)   (per spectrum)  (Eq. 1)        │ encode flush (HvPack)
//!                                            ▼ close
//!                                      worker pool: packed HAC per shard
//!                                            │
//!                                            ▼
//!                               key-ordered label merge ──▶ outcome
//! ```
//!
//! ## Identical results, bounded memory
//!
//! The streaming outcome is **bit-identical** to `SpecHd::run` on the same
//! input sequence, for any watermark and worker count: preprocessing and
//! encoding are per-spectrum deterministic, each shard accumulates exactly
//! the member rows (in arrival order) that the batch bucketizer would have
//! gathered, both modes cluster a shard through the same private
//! `cluster_shard` code, and both merge through
//! [`spechd_cluster::ShardLabelMerger`] in ascending bucket-key order.
//! The `streaming_equivalence` integration suite enforces this.
//!
//! What changes is the memory shape: at most
//! [`StreamConfig::watermark`] *raw* spectra are buffered per open shard
//! before being folded into packed rows (256 bytes each at `D = 2048` —
//! the paper's 24–108× compression), so peak raw-spectrum memory tracks
//! the watermark and the shard fan-out rather than the dataset.
//!
//! ## Overlapping clustering with ingest
//!
//! A shard can only be clustered once no more members can arrive. For an
//! arbitrary stream that is end-of-stream; the worker pool then drains all
//! shards concurrently. When the source promises non-decreasing neutral
//! mass ([`SpectrumStream::sorted_by_mass`] — the paper's precursor-m/z
//! sorted data organization), every shard lighter than the current key is
//! closed and handed to the workers *immediately*, so clustering runs
//! while ingest is still pulling — the RapidOMS streaming-batch shape.

use crate::pipeline::cluster_shard;
use crate::{CompressionReport, RunStats, SpecHdOutcome};
use spechd_cluster::{HacStats, ShardLabelMerger};
use spechd_hdc::{HvPack, MajorityAccumulator};
use spechd_ms::stream::SpectrumStream;
use spechd_preprocess::{bucket_stats_from_sizes, PreprocessStats};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Tuning knobs of [`SpecHd::run_streaming`](crate::SpecHd::run_streaming).
///
/// None of these affect results — only memory shape and parallelism. The
/// equivalence suite runs the full cross-product to prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Raw spectra buffered per shard before an encode flush folds them
    /// into the shard's packed rows. `0` buffers without bound (encode
    /// only at close). `1` encodes every spectrum on arrival.
    pub watermark: usize,
    /// Clustering worker threads (`0` = all available). Independent of
    /// [`crate::SpecHdConfig::threads`], which governs the batch path.
    pub workers: usize,
    /// Whether to retain the encoded hypervector archive in the outcome
    /// (parallel to `kept`, as `run` does). Disabling it lets shard packs
    /// be recycled through the pack pool as soon as their shard is
    /// clustered, dropping steady-state memory to the open shards; the
    /// outcome's `hypervectors()` is then empty.
    pub keep_hypervectors: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            watermark: 64,
            workers: 0,
            keep_hypervectors: true,
        }
    }
}

/// Streaming-specific observability counters (memory shape and overlap),
/// alongside the [`RunStats`] the outcome itself carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Spectra pulled from the stream.
    pub spectra_streamed: usize,
    /// Shards opened (= non-empty precursor buckets seen).
    pub shards_opened: usize,
    /// Maximum simultaneously open shards.
    pub peak_open_shards: usize,
    /// Maximum raw spectra buffered across all open shards at once — the
    /// quantity the watermark bounds per shard.
    pub peak_buffered_spectra: usize,
    /// Largest shard, in encoded rows (the clustering-time memory peak).
    pub peak_shard_rows: usize,
    /// Encode flushes performed (watermark hits + shard closes).
    pub encode_flushes: usize,
    /// Shards closed before end-of-stream (sorted sources only) — shards
    /// whose clustering overlapped further ingest.
    pub early_closed_shards: usize,
    /// Packs recycled from the pool instead of freshly allocated.
    pub packs_reused: usize,
}

/// Result of a streaming run: the standard outcome plus stream counters.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The pipeline outcome, bit-identical to the batch run's.
    pub outcome: SpecHdOutcome,
    /// Streaming-specific counters.
    pub stream: StreamStats,
}

/// One shard's final clustering, reported to a
/// [`run_streaming_observed`](crate::SpecHd::run_streaming_observed)
/// observer the moment a worker retires the shard — while other shards may
/// still be ingesting or clustering.
///
/// Labels are **shard-local** (`[0, medoids.len())`); the global dense
/// labels of [`StreamOutcome`] are obtained by giving each shard a raw
/// label block in ascending `key` order and renumbering by first
/// appearance in stream order — exactly what
/// [`spechd_cluster::ShardLabelMerger`] does. A consumer that collects
/// every `ShardAssignment` can therefore reconstruct the final global
/// assignment without waiting for the run to return, which is what lets
/// `spechd-server` stream per-shard results to clients as they finalize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// The shard's Eq. (1) precursor bucket key.
    pub key: i64,
    /// Stream indices (positions in the input stream — the values
    /// [`SpecHdOutcome::kept`] holds) of the shard's members, ascending.
    pub members: Vec<usize>,
    /// Shard-local cluster label per member, parallel to `members`.
    pub labels: Vec<usize>,
    /// Stream index of the consensus (medoid) spectrum per local cluster;
    /// entry `c` represents local cluster `c`.
    pub medoids: Vec<usize>,
    /// Whether the shard retired before end-of-stream (mass-sorted
    /// sources only).
    pub early_closed: bool,
}

/// Progress events emitted by
/// [`run_streaming_observed`](crate::SpecHd::run_streaming_observed).
///
/// Events arrive from the ingest thread and the clustering workers,
/// serialized through one lock. [`StreamEvent::IngestDone`] fires once,
/// when the source is exhausted; [`StreamEvent::ShardClustered`] fires
/// once per shard, in worker **completion** order — possibly before *and*
/// after `IngestDone`, and in no particular key order. Every event is
/// delivered before `run_streaming_observed` returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A worker finished clustering one shard.
    ShardClustered(ShardAssignment),
    /// The source is exhausted: the shard key set and the kept count are
    /// final. `keys` is ascending and holds every shard ever opened, so a
    /// consumer can emit buffered [`ShardAssignment`]s in key order and
    /// know when the last one has arrived.
    IngestDone {
        /// All shard keys of the run, ascending.
        keys: Vec<i64>,
        /// Spectra that survived preprocessing (= final `kept().len()`).
        kept: usize,
        /// Spectra pulled from the stream.
        streamed: usize,
    },
}

/// An open shard: arrival-ordered members, a bounded raw-peak buffer, and
/// the packed rows encoded so far.
struct OpenShard {
    members: Vec<usize>,
    buffer: Vec<Vec<(f64, f64)>>,
    pack: HvPack,
}

/// A shard whose membership is final, en route to a clustering worker.
struct ClosedShard {
    key: i64,
    members: Vec<usize>,
    /// Stream index per member (only filled when an observer is
    /// installed; the plain path skips the extra allocation).
    stream_members: Vec<usize>,
    early_closed: bool,
    pack: HvPack,
}

/// A clustered shard, awaiting the key-ordered merge.
struct ShardResult {
    key: i64,
    members: Vec<usize>,
    labels: Vec<usize>,
    medoids: Vec<usize>,
    stats: HacStats,
    /// Retained only when the outcome keeps the hypervector archive.
    pack: Option<HvPack>,
    cluster_ns: u128,
}

impl crate::SpecHd {
    /// Runs the full pipeline over a [`SpectrumStream`] in sharded
    /// streaming mode. See the [module docs](crate::stream) for the
    /// dataflow; the result is bit-identical to [`crate::SpecHd::run`] on
    /// the same input sequence.
    ///
    /// # Panics
    ///
    /// Panics if a stream claiming [`SpectrumStream::sorted_by_mass`]
    /// yields a spectrum lighter than one already seen: honoring the hint
    /// would have already retired the shard the latecomer belongs to, so
    /// continuing would silently miscluster.
    pub fn run_streaming<S: SpectrumStream>(
        &self,
        source: S,
        stream_config: &StreamConfig,
    ) -> StreamOutcome {
        self.run_streaming_inner::<S, fn(StreamEvent)>(source, stream_config, None)
    }

    /// [`run_streaming`](crate::SpecHd::run_streaming) with a progress
    /// observer: `observer` is invoked for every [`StreamEvent`] — one
    /// [`StreamEvent::ShardClustered`] per shard as the worker pool
    /// retires it, plus one final [`StreamEvent::IngestDone`] when the
    /// source is exhausted.
    ///
    /// Calls arrive from the ingest thread and from clustering worker
    /// threads but are serialized through one internal lock, so the
    /// observer needs `Send` but not `Sync`. The observer runs on the
    /// pipeline's critical path: a slow observer stalls the worker that
    /// calls it, so observers must stay cheap and non-blocking
    /// (`spechd-server`'s observer, for instance, hands result frames
    /// to bounded per-connection queues with a non-blocking send and
    /// drops subscribers that stopped draining, rather than ever
    /// blocking here). Results are bit-identical to
    /// [`run_streaming`](crate::SpecHd::run_streaming); the events are a
    /// pure tap.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`run_streaming`](crate::SpecHd::run_streaming), and propagates
    /// panics raised by the observer.
    pub fn run_streaming_observed<S, F>(
        &self,
        source: S,
        stream_config: &StreamConfig,
        observer: F,
    ) -> StreamOutcome
    where
        S: SpectrumStream,
        F: FnMut(StreamEvent) + Send,
    {
        self.run_streaming_inner(source, stream_config, Some(observer))
    }

    fn run_streaming_inner<S, F>(
        &self,
        mut source: S,
        stream_config: &StreamConfig,
        observer: Option<F>,
    ) -> StreamOutcome
    where
        S: SpectrumStream,
        F: FnMut(StreamEvent) + Send,
    {
        let start = Instant::now();
        let observer = observer.map(Mutex::new);
        let observing = observer.is_some();
        let dim = self.config().encoder.dim;
        let watermark = stream_config.watermark;
        let keep_hvs = stream_config.keep_hypervectors;
        let threshold = self.config().distance_threshold_bits();
        let linkage = self.config().linkage;
        let workers = if stream_config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            stream_config.workers
        };

        let (shard_tx, shard_rx) = mpsc::channel::<ClosedShard>();
        let shard_rx = Mutex::new(shard_rx);
        let results: Mutex<Vec<ShardResult>> = Mutex::new(Vec::new());
        // Cleared packs parked for reuse, so shard churn does not retread
        // the allocator (only populated when the archive is not kept —
        // kept packs live on into the final scatter).
        let pack_pool: Mutex<Vec<HvPack>> = Mutex::new(Vec::new());

        let mut kept: Vec<usize> = Vec::new();
        let mut pre_stats = PreprocessStats::default();
        let mut stream_stats = StreamStats::default();
        let mut raw_bytes = 0usize;
        let mut preprocess_ns = 0u128;
        let mut encode_ns = 0u128;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let received = shard_rx.lock().expect("no panics hold the lock").recv();
                    let Ok(mut shard) = received else {
                        break; // every sender dropped: ingest is done
                    };
                    let t_cluster = Instant::now();
                    let clustering = cluster_shard(&shard.members, &shard.pack, linkage, threshold);
                    let cluster_ns = t_cluster.elapsed().as_nanos();
                    if let Some(obs) = observer.as_ref() {
                        // Medoids are global member indices; members are
                        // ascending (assigned in arrival order), so a
                        // binary search maps each back to its slot and
                        // from there to its stream index.
                        let medoids = clustering
                            .medoids
                            .iter()
                            .map(|m| {
                                let slot = shard
                                    .members
                                    .binary_search(m)
                                    .expect("medoid is a shard member");
                                shard.stream_members[slot]
                            })
                            .collect();
                        let event = StreamEvent::ShardClustered(ShardAssignment {
                            key: shard.key,
                            members: std::mem::take(&mut shard.stream_members),
                            labels: clustering.labels.clone(),
                            medoids,
                            early_closed: shard.early_closed,
                        });
                        (obs.lock().expect("no panics hold the lock"))(event);
                    }
                    let pack = if keep_hvs {
                        Some(shard.pack)
                    } else {
                        let mut spare = shard.pack;
                        spare.clear();
                        pack_pool
                            .lock()
                            .expect("no panics hold the lock")
                            .push(spare);
                        None
                    };
                    results
                        .lock()
                        .expect("no panics hold the lock")
                        .push(ShardResult {
                            key: shard.key,
                            members: shard.members,
                            labels: clustering.labels,
                            medoids: clustering.medoids,
                            stats: clustering.stats,
                            pack,
                            cluster_ns,
                        });
                });
            }

            // ── Ingest (this thread), overlapping the workers above. ──
            let sorted = source.sorted_by_mass();
            let mut open: BTreeMap<i64, OpenShard> = BTreeMap::new();
            let mut opened_keys: Vec<i64> = Vec::new();
            let mut acc = MajorityAccumulator::new(dim);
            let mut buffered_total = 0usize;
            let mut last_key = i64::MIN;
            let mut stream_index = 0usize;

            // Flushes a shard's raw buffer into its packed rows.
            let flush = |shard: &mut OpenShard,
                         acc: &mut MajorityAccumulator,
                         encode_ns: &mut u128,
                         stream_stats: &mut StreamStats,
                         buffered_total: &mut usize| {
                if shard.buffer.is_empty() {
                    return;
                }
                let t = Instant::now();
                self.encoder()
                    .encode_batch_packed_into(&shard.buffer, acc, &mut shard.pack);
                *encode_ns += t.elapsed().as_nanos();
                *buffered_total -= shard.buffer.len();
                shard.buffer.clear();
                stream_stats.encode_flushes += 1;
            };

            while let Some((spectrum, _label)) = source.next_spectrum() {
                stream_stats.spectra_streamed += 1;
                raw_bytes += spectrum.approx_bytes();
                let t = Instant::now();
                let processed = self.preprocess().process_one(&spectrum, &mut pre_stats);
                preprocess_ns += t.elapsed().as_nanos();
                let index = stream_index;
                stream_index += 1;
                let Some(processed) = processed else {
                    continue;
                };
                let key = self.bucketer().bucket_of(&processed);

                if sorted {
                    assert!(
                        key >= last_key,
                        "stream claims sorted_by_mass but bucket key {key} arrived after \
                         {last_key}; the shard it belongs to may already be clustered"
                    );
                    if key > last_key {
                        // Everything lighter than the current key is final:
                        // retire it to the workers while we keep ingesting.
                        while let Some((&k, _)) = open.range(..key).next() {
                            let mut shard = open.remove(&k).expect("key from range");
                            flush(
                                &mut shard,
                                &mut acc,
                                &mut encode_ns,
                                &mut stream_stats,
                                &mut buffered_total,
                            );
                            stream_stats.peak_shard_rows =
                                stream_stats.peak_shard_rows.max(shard.pack.len());
                            stream_stats.early_closed_shards += 1;
                            let stream_members = if observing {
                                shard.members.iter().map(|&m| kept[m]).collect()
                            } else {
                                Vec::new()
                            };
                            shard_tx
                                .send(ClosedShard {
                                    key: k,
                                    members: shard.members,
                                    stream_members,
                                    early_closed: true,
                                    pack: shard.pack,
                                })
                                .expect("workers outlive ingest");
                        }
                        last_key = key;
                    }
                }

                let member = kept.len();
                kept.push(index);
                let shard = open.entry(key).or_insert_with(|| {
                    stream_stats.shards_opened += 1;
                    opened_keys.push(key);
                    let pack = match pack_pool.lock().expect("no panics hold the lock").pop() {
                        Some(spare) => {
                            stream_stats.packs_reused += 1;
                            spare
                        }
                        None => HvPack::new(dim),
                    };
                    OpenShard {
                        members: Vec::new(),
                        buffer: Vec::new(),
                        pack,
                    }
                });
                shard.members.push(member);
                shard.buffer.push(processed.relative_peaks());
                buffered_total += 1;
                // During ingest, shards leave `open` only through the
                // early-close path, so this difference equals `open.len()`
                // (which the `entry` borrow keeps us from reading here).
                let open_count = stream_stats.shards_opened - stream_stats.early_closed_shards;
                stream_stats.peak_open_shards = stream_stats.peak_open_shards.max(open_count);
                stream_stats.peak_buffered_spectra =
                    stream_stats.peak_buffered_spectra.max(buffered_total);
                if watermark > 0 && shard.buffer.len() >= watermark {
                    flush(
                        shard,
                        &mut acc,
                        &mut encode_ns,
                        &mut stream_stats,
                        &mut buffered_total,
                    );
                }
            }

            // End of stream: every remaining shard is final.
            for (key, mut shard) in std::mem::take(&mut open) {
                flush(
                    &mut shard,
                    &mut acc,
                    &mut encode_ns,
                    &mut stream_stats,
                    &mut buffered_total,
                );
                stream_stats.peak_shard_rows = stream_stats.peak_shard_rows.max(shard.pack.len());
                let stream_members = if observing {
                    shard.members.iter().map(|&m| kept[m]).collect()
                } else {
                    Vec::new()
                };
                shard_tx
                    .send(ClosedShard {
                        key,
                        members: shard.members,
                        stream_members,
                        early_closed: false,
                        pack: shard.pack,
                    })
                    .expect("workers outlive ingest");
            }
            if let Some(obs) = observer.as_ref() {
                let mut keys = std::mem::take(&mut opened_keys);
                keys.sort_unstable();
                (obs.lock().expect("no panics hold the lock"))(StreamEvent::IngestDone {
                    keys,
                    kept: kept.len(),
                    streamed: stream_stats.spectra_streamed,
                });
            }
            drop(shard_tx); // hang up: workers drain the queue and exit
        });

        // ── Merge, in ascending bucket-key order (batch bucket order). ──
        let mut results = results.into_inner().expect("threads joined");
        results.sort_by_key(|r| r.key);

        let mut merger = ShardLabelMerger::new(kept.len());
        let mut cluster_ns = 0u128;
        for r in &results {
            merger.add_shard(&r.members, &r.labels, &r.medoids, &r.stats);
            cluster_ns += r.cluster_ns;
        }
        let (assignment, consensus_local, hac) = merger.finish();
        let consensus: Vec<usize> = consensus_local.iter().map(|&m| kept[m]).collect();

        let bstats = bucket_stats_from_sizes(results.iter().map(|r| r.members.len()));

        // Scatter shard rows back into kept order for the archive `run`
        // exposes; skipped (empty archive) when not keeping hypervectors.
        let hvs = if keep_hvs {
            let mut full = HvPack::with_capacity(dim, kept.len());
            let mut row_of = vec![(0usize, 0usize); kept.len()];
            for (ri, r) in results.iter().enumerate() {
                for (row, &member) in r.members.iter().enumerate() {
                    row_of[member] = (ri, row);
                }
            }
            for &(ri, row) in &row_of {
                let pack = results[ri].pack.as_ref().expect("kept packs retained");
                full.push_zeroed().copy_from_slice(pack.row(row));
            }
            full.to_hypervectors()
        } else {
            Vec::new()
        };

        let compression = CompressionReport::new(raw_bytes, kept.len(), dim);
        let outcome = SpecHdOutcome::new(
            assignment,
            kept,
            consensus,
            hvs,
            RunStats {
                preprocess: pre_stats,
                buckets: bstats,
                hac,
                preprocess_s: preprocess_ns as f64 * 1e-9,
                encode_s: encode_ns as f64 * 1e-9,
                // Aggregate worker-side clustering time; with several
                // workers this exceeds its wall-clock share by design.
                cluster_s: cluster_ns as f64 * 1e-9,
                total_s: start.elapsed().as_secs_f64(),
            },
            compression,
        );
        StreamOutcome {
            outcome,
            stream: stream_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpecHd, SpecHdConfig};
    use spechd_ms::stream::{AssertSorted, DatasetStream};
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
    use spechd_ms::SpectrumDataset;

    fn dataset(n: usize, seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: (n / 5).max(2),
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn streaming_matches_batch_on_default_config() {
        let ds = dataset(200, 21);
        let engine = SpecHd::new(SpecHdConfig::default());
        let batch = engine.run(&ds);
        let streamed = engine.run_streaming(DatasetStream::new(&ds), &StreamConfig::default());
        assert_eq!(streamed.outcome.assignment(), batch.assignment());
        assert_eq!(streamed.outcome.consensus(), batch.consensus());
        assert_eq!(streamed.outcome.kept(), batch.kept());
        assert_eq!(streamed.outcome.hypervectors(), batch.hypervectors());
        assert_eq!(streamed.outcome.stats().buckets, batch.stats().buckets);
        assert_eq!(
            streamed.outcome.stats().preprocess,
            batch.stats().preprocess
        );
        assert_eq!(streamed.outcome.stats().hac, batch.stats().hac);
        assert_eq!(
            streamed.outcome.compression().factor(),
            batch.compression().factor()
        );
        assert_eq!(streamed.stream.spectra_streamed, ds.len());
        assert!(streamed.stream.shards_opened > 0);
    }

    #[test]
    fn watermark_one_encodes_every_arrival() {
        let ds = dataset(100, 22);
        let engine = SpecHd::new(SpecHdConfig::default());
        let cfg = StreamConfig {
            watermark: 1,
            ..StreamConfig::default()
        };
        let streamed = engine.run_streaming(DatasetStream::new(&ds), &cfg);
        assert_eq!(
            streamed.stream.encode_flushes,
            streamed.outcome.kept().len(),
            "watermark 1 must flush once per kept spectrum"
        );
        assert!(streamed.stream.peak_buffered_spectra <= 1);
        assert_eq!(streamed.outcome.assignment(), engine.run(&ds).assignment());
    }

    #[test]
    fn sorted_stream_overlaps_clustering_with_ingest() {
        let ds = spechd_ms::stream::sort_dataset_by_mass(&dataset(300, 23));
        let engine = SpecHd::new(SpecHdConfig::default());
        let batch = engine.run(&ds);
        let streamed = engine.run_streaming(
            AssertSorted::new(DatasetStream::new(&ds)),
            &StreamConfig::default(),
        );
        assert_eq!(streamed.outcome.assignment(), batch.assignment());
        assert_eq!(streamed.outcome.hypervectors(), batch.hypervectors());
        // All but the final shard retire before end-of-stream.
        assert_eq!(
            streamed.stream.early_closed_shards,
            streamed.stream.shards_opened - 1
        );
        // Sorted ingest keeps at most one shard open at a time.
        assert_eq!(streamed.stream.peak_open_shards, 1);
    }

    #[test]
    #[should_panic(expected = "sorted_by_mass")]
    fn lying_sorted_hint_panics() {
        let mut ds = SpectrumDataset::new();
        for &mz in &[900.0, 300.0] {
            ds.push(
                spechd_ms::Spectrum::new(
                    format!("mz={mz}"),
                    spechd_ms::Precursor::new(mz, 2).unwrap(),
                    (0..30)
                        .map(|i| spechd_ms::Peak::new(250.0 + 10.0 * i as f64, 10.0))
                        .collect(),
                )
                .unwrap(),
                None,
            );
        }
        let engine = SpecHd::new(SpecHdConfig::default());
        engine.run_streaming(
            AssertSorted::new(DatasetStream::new(&ds)),
            &StreamConfig::default(),
        );
    }

    /// The contract `spechd-server` streams results over: giving each
    /// shard a raw label block in ascending key order and renumbering by
    /// first appearance in stream order reproduces the final outcome
    /// bit-identically — without ever touching the returned outcome.
    #[test]
    fn observed_events_reconstruct_the_outcome() {
        let ds = dataset(300, 25);
        let engine = SpecHd::new(SpecHdConfig::default());
        let mut events: Vec<StreamEvent> = Vec::new();
        let streamed =
            engine.run_streaming_observed(DatasetStream::new(&ds), &StreamConfig::default(), |e| {
                events.push(e)
            });
        let outcome = &streamed.outcome;

        let mut shards: BTreeMap<i64, ShardAssignment> = BTreeMap::new();
        let mut ingest_done = None;
        for event in events {
            match event {
                StreamEvent::ShardClustered(sa) => {
                    assert!(shards.insert(sa.key, sa).is_none(), "duplicate shard");
                }
                StreamEvent::IngestDone {
                    keys,
                    kept,
                    streamed,
                } => {
                    assert!(ingest_done.is_none(), "IngestDone fired twice");
                    ingest_done = Some((keys, kept, streamed));
                }
            }
        }
        let (keys, kept, spectra) = ingest_done.expect("IngestDone fired");
        assert_eq!(kept, outcome.kept().len());
        assert_eq!(spectra, ds.len());
        assert_eq!(
            keys,
            shards.keys().copied().collect::<Vec<_>>(),
            "IngestDone keys must name exactly the clustered shards"
        );

        // Client-side reassembly: raw blocks in ascending key order, then
        // dense renumbering by first appearance in stream order.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut medoid_by_raw: Vec<usize> = Vec::new();
        for key in &keys {
            let sa = &shards[key];
            let raw_base = medoid_by_raw.len();
            for (&stream_idx, &local) in sa.members.iter().zip(&sa.labels) {
                pairs.push((stream_idx, raw_base + local));
            }
            medoid_by_raw.extend_from_slice(&sa.medoids);
        }
        pairs.sort_unstable();
        let kept_rebuilt: Vec<usize> = pairs.iter().map(|&(s, _)| s).collect();
        assert_eq!(kept_rebuilt, outcome.kept());
        let mut dense_of = vec![usize::MAX; medoid_by_raw.len()];
        let mut labels = Vec::with_capacity(pairs.len());
        let mut consensus = Vec::new();
        let mut next = 0usize;
        for &(_, raw) in &pairs {
            if dense_of[raw] == usize::MAX {
                dense_of[raw] = next;
                consensus.push(medoid_by_raw[raw]);
                next += 1;
            }
            labels.push(dense_of[raw]);
        }
        assert_eq!(labels, outcome.assignment().labels());
        assert_eq!(consensus, outcome.consensus());
    }

    #[test]
    fn sorted_observer_sees_early_closed_shards() {
        let ds = spechd_ms::stream::sort_dataset_by_mass(&dataset(300, 26));
        let engine = SpecHd::new(SpecHdConfig::default());
        let mut early = 0usize;
        let mut total = 0usize;
        let streamed = engine.run_streaming_observed(
            AssertSorted::new(DatasetStream::new(&ds)),
            &StreamConfig::default(),
            |e| {
                if let StreamEvent::ShardClustered(sa) = e {
                    total += 1;
                    early += usize::from(sa.early_closed);
                }
            },
        );
        assert_eq!(total, streamed.stream.shards_opened);
        assert_eq!(early, streamed.stream.early_closed_shards);
        assert_eq!(early, total - 1, "all but the final shard retire early");
    }

    #[test]
    fn dropping_the_archive_recycles_packs() {
        let ds = spechd_ms::stream::sort_dataset_by_mass(&dataset(300, 24));
        let engine = SpecHd::new(SpecHdConfig::default());
        let cfg = StreamConfig {
            keep_hypervectors: false,
            workers: 1,
            ..StreamConfig::default()
        };
        let streamed = engine.run_streaming(AssertSorted::new(DatasetStream::new(&ds)), &cfg);
        assert!(streamed.outcome.hypervectors().is_empty());
        // Reuse is opportunistic (a pack returns to the pool only once a
        // worker finishes while ingest still runs), so only bound it.
        assert!(streamed.stream.packs_reused < streamed.stream.shards_opened);
        assert_eq!(
            streamed.outcome.assignment(),
            engine.run(&ds).assignment(),
            "dropping the archive must not change labels"
        );
    }
}
