//! # SpecHD — hyperdimensional mass-spectrometry clustering
//!
//! Reproduction of *"SpecHD: Hyperdimensional Computing Framework for
//! FPGA-based Mass Spectrometry Clustering"* (DATE 2024). This crate is
//! the paper's primary contribution: the end-to-end pipeline
//!
//! ```text
//! spectra ──preprocess──▶ buckets ──ID-Level encode──▶ hypervectors
//!         ──pairwise Hamming──▶ NN-chain HAC ──cut──▶ clusters ──▶ medoids
//! ```
//!
//! Three execution modes share that dataflow: the batch [`SpecHd::run`]
//! over a materialized dataset; the sharded [`SpecHd::run_streaming`] over
//! a [`spechd_ms::stream::SpectrumStream`] (module [`stream`]), which
//! bounds raw-spectrum memory by a per-shard watermark and clusters shards
//! on a worker pool while ingest continues — with bit-identical results;
//! and the incremental [`SpecHd::run_incremental`] (module
//! [`incremental`]), which folds new installments of spectra into a
//! persistent [`ClusterStore`] across sessions, reclustering only the
//! precursor buckets that actually changed while keeping prior labels
//! stable.
//!
//! Fallible entry points ([`SpecHd::try_new`],
//! [`SpecHdConfigBuilder::try_build`], [`SpecHd::run_incremental`],
//! [`ClusterStore::load`]) report typed errors under the [`SpecHdError`]
//! umbrella; the panicking constructors remain as thin shims for scripts.
//!
//! The functional pipeline runs bit-exactly on the host (results are real,
//! not simulated); the FPGA *performance* of the same dataflow is modelled
//! by [`spechd_fpga`], reachable through [`SpecHd::estimate_fpga_timeline`].
//!
//! ## Quickstart
//!
//! ```
//! use spechd_core::{SpecHd, SpecHdConfig};
//! use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
//!
//! // A small labelled synthetic run.
//! let dataset = SyntheticGenerator::new(SyntheticConfig {
//!     num_spectra: 300, num_peptides: 60, seed: 7, ..SyntheticConfig::default()
//! }).generate();
//!
//! let spechd = SpecHd::new(SpecHdConfig::default());
//! let outcome = spechd.run(&dataset);
//! let eval = outcome.evaluate(&dataset);
//! assert!(eval.clustered_ratio > 0.1);
//! assert!(eval.incorrect_ratio < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compression;
mod config;
mod error;
pub mod incremental;
mod pipeline;
mod result;
pub mod stream;

pub use compression::CompressionReport;
pub use config::{ConfigError, SpecHdConfig, SpecHdConfigBuilder};
pub use error::SpecHdError;
pub use incremental::{IncrementalOutcome, IncrementalStats};
pub use pipeline::SpecHd;
pub use result::{RunStats, SpecHdOutcome};
pub use stream::{ShardAssignment, StreamConfig, StreamEvent, StreamOutcome, StreamStats};

// Re-export the workspace components a downstream user needs alongside the
// pipeline, so `spechd-core` works as a single entry point.
pub use spechd_cluster::{ClusterAssignment, Linkage};
pub use spechd_hdc::{BinaryHypervector, EncoderConfig};
pub use spechd_metrics::ClusteringEval;
pub use spechd_preprocess::PreprocessConfig;
pub use spechd_store::{ClusterStore, RefreshReport, StoreError};
