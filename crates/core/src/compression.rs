//! Hypervector compression accounting (Fig. 6b).
//!
//! "By storing spectral data in the hyperdimensional space, we achieve
//! significant data compression … between 24× to 108× across datasets"
//! (§I, §IV-B). The factor is simply raw bytes over `n × D/8` hypervector
//! bytes; this module makes the bookkeeping explicit and testable.

/// Compression achieved by replacing raw spectra with hypervectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    raw_bytes: usize,
    num_hypervectors: usize,
    dim: usize,
}

impl CompressionReport {
    /// Creates a report for `num_hypervectors` hypervectors of `dim` bits
    /// replacing `raw_bytes` of spectral data.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(raw_bytes: usize, num_hypervectors: usize, dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            raw_bytes,
            num_hypervectors,
            dim,
        }
    }

    /// Raw input bytes.
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Bytes of the hypervector archive (`n × D/8`).
    pub fn hv_bytes(&self) -> usize {
        self.num_hypervectors * self.dim.div_ceil(8)
    }

    /// Compression factor `raw / hv` (0 when no hypervectors exist).
    pub fn factor(&self) -> f64 {
        let hv = self.hv_bytes();
        if hv == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / hv as f64
        }
    }
}

impl std::fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} MB -> {:.2} MB ({:.1}x)",
            self.raw_bytes as f64 / 1e6,
            self.hv_bytes() as f64 / 1e6,
            self.factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_computation() {
        // 1 MB raw, 1000 hypervectors of 2048 bits = 256 kB -> factor ~3.9.
        let r = CompressionReport::new(1_000_000, 1000, 2048);
        assert_eq!(r.hv_bytes(), 256_000);
        assert!((r.factor() - 3.90625).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_factors() {
        // PXD000561: 131 GB, 21.1M spectra, D=2048 -> ~24x (Fig. 6b floor).
        let r = CompressionReport::new(131_000_000_000, 21_100_000, 2048);
        assert!((r.factor() - 24.25).abs() < 0.5, "factor {:.1}", r.factor());
        // PXD001197: 25 GB, 1.1M spectra -> ~89x (towards the 108x ceiling).
        let r2 = CompressionReport::new(25_000_000_000, 1_100_000, 2048);
        assert!(
            r2.factor() > 80.0 && r2.factor() < 110.0,
            "factor {:.1}",
            r2.factor()
        );
    }

    #[test]
    fn zero_hypervectors() {
        let r = CompressionReport::new(100, 0, 2048);
        assert_eq!(r.factor(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        let r = CompressionReport::new(1_000_000, 10, 2048);
        assert!(r.to_string().contains('x'));
    }
}
