//! The SpecHD pipeline.

use crate::{CompressionReport, RunStats, SpecHdConfig, SpecHdOutcome};
use spechd_cluster::{
    medoid, nn_chain, ClusterAssignment, CondensedMatrix, HacStats, ShardLabelMerger,
};
use spechd_fpga::{SystemConfig, SystemModel, Timeline, WorkloadShape};
use spechd_hdc::distance::PackedDistanceEngine;
use spechd_hdc::{BinaryHypervector, HvPack, IdLevelEncoder};
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{bucket_stats, PrecursorBucketer, PreprocessPipeline};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The SpecHD clustering engine (Fig. 3's dataflow, executed on the host).
///
/// Construction allocates the encoder item memories once; [`SpecHd::run`]
/// can then be applied to any number of datasets — which is precisely the
/// paper's "one-time preprocessing and subsequent updates" usage model
/// (§IV-B): hypervectors are deterministic for a fixed config, so encoded
/// archives remain valid across re-clustering runs.
#[derive(Debug)]
pub struct SpecHd {
    pub(crate) config: SpecHdConfig,
    pub(crate) encoder: IdLevelEncoder,
    pub(crate) preprocess: PreprocessPipeline,
    pub(crate) bucketer: PrecursorBucketer,
}

impl SpecHd {
    /// Builds the engine, reporting an invalid configuration as a typed
    /// [`crate::ConfigError`] instead of panicking.
    pub fn try_new(config: SpecHdConfig) -> Result<Self, crate::ConfigError> {
        config.try_validate()?;
        // The stage constructors below assert the same invariants
        // `try_validate` just proved, so they cannot panic from here.
        let encoder = IdLevelEncoder::new(config.encoder);
        let preprocess = PreprocessPipeline::new(config.preprocess);
        let bucketer = PrecursorBucketer::new(config.resolution);
        Ok(Self {
            config,
            encoder,
            preprocess,
            bucketer,
        })
    }

    /// Builds the engine; the panicking shim over [`SpecHd::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SpecHdConfig) -> Self {
        match Self::try_new(config) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SpecHdConfig {
        &self.config
    }

    /// The (deterministic) encoder, exposed for pre-encoding workflows.
    pub fn encoder(&self) -> &IdLevelEncoder {
        &self.encoder
    }

    /// The preprocessing pipeline, exposed for per-spectrum (streaming)
    /// workflows.
    pub fn preprocess(&self) -> &PreprocessPipeline {
        &self.preprocess
    }

    /// The Eq. (1) precursor bucketer.
    pub fn bucketer(&self) -> &PrecursorBucketer {
        &self.bucketer
    }

    /// Runs the full pipeline: preprocess → bucket → encode → NN-chain →
    /// consensus.
    pub fn run(&self, dataset: &SpectrumDataset) -> SpecHdOutcome {
        let start = std::time::Instant::now();
        let pre = self.preprocess.run(dataset);
        let preprocess_s = start.elapsed().as_secs_f64();

        let t_encode = std::time::Instant::now();
        let pack = self.encode_dataset_packed(&pre.dataset);
        let encode_s = t_encode.elapsed().as_secs_f64();

        let t_cluster = std::time::Instant::now();
        let buckets = self.bucketer.bucketize(pre.dataset.spectra());
        let bstats = bucket_stats(&buckets);
        let (assignment, consensus_local, hac) = self.cluster_buckets(&buckets, &pack);
        let cluster_s = t_cluster.elapsed().as_secs_f64();

        // Consensus indices in the ORIGINAL dataset's index space.
        let consensus: Vec<usize> = consensus_local.iter().map(|&i| pre.kept[i]).collect();
        let compression =
            CompressionReport::new(dataset.approx_bytes(), pack.len(), self.config.encoder.dim);

        SpecHdOutcome::new(
            assignment,
            pre.kept,
            consensus,
            pack.to_hypervectors(),
            RunStats {
                preprocess: pre.stats,
                buckets: bstats,
                hac,
                preprocess_s,
                encode_s,
                cluster_s,
                total_s: start.elapsed().as_secs_f64(),
            },
            compression,
        )
    }

    /// Encodes every spectrum of a (preprocessed) dataset into
    /// hypervectors — the standalone encoding stage.
    pub fn encode_dataset(&self, dataset: &SpectrumDataset) -> Vec<BinaryHypervector> {
        self.encode_dataset_packed(dataset).to_hypervectors()
    }

    /// Encodes every spectrum straight into a contiguous [`HvPack`] — the
    /// allocation-free batch path the pipeline and the packed distance
    /// kernels run on. Bit-exact with [`SpecHd::encode_dataset`].
    pub fn encode_dataset_packed(&self, dataset: &SpectrumDataset) -> HvPack {
        let peak_lists: Vec<Vec<(f64, f64)>> = dataset
            .spectra()
            .iter()
            .map(|s| s.relative_peaks())
            .collect();
        self.encoder.encode_batch_packed(&peak_lists)
    }

    /// Clusters pre-encoded hypervectors whose bucket memberships are
    /// already known — the paper's standalone-clustering scenario (Fig. 8:
    /// "concentrating exclusively on standalone clustering of pre-encoded
    /// vectors").
    ///
    /// Returns the flat assignment over the hypervector indices, the
    /// medoid index per cluster, and aggregate HAC work counters.
    pub fn cluster_encoded(
        &self,
        buckets: &[spechd_preprocess::Bucket],
        hvs: &[BinaryHypervector],
    ) -> (ClusterAssignment, Vec<usize>, HacStats) {
        let pack = HvPack::from_hypervectors(self.encoder.dim(), hvs);
        self.cluster_buckets(buckets, &pack)
    }

    /// [`SpecHd::cluster_encoded`] over an already-packed store, skipping
    /// the per-hypervector copy.
    pub fn cluster_encoded_packed(
        &self,
        buckets: &[spechd_preprocess::Bucket],
        pack: &HvPack,
    ) -> (ClusterAssignment, Vec<usize>, HacStats) {
        self.cluster_buckets(buckets, pack)
    }

    fn cluster_buckets(
        &self,
        buckets: &[spechd_preprocess::Bucket],
        pack: &HvPack,
    ) -> (ClusterAssignment, Vec<usize>, HacStats) {
        let threshold = self.config.distance_threshold_bits();
        let linkage = self.config.linkage;

        // Per-bucket results, merged in bucket order for determinism.
        struct BucketOutcome {
            bucket_idx: usize,
            clustering: ShardClustering,
        }

        let worker_count = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
        .min(buckets.len().max(1));

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<BucketOutcome>> = Mutex::new(Vec::with_capacity(buckets.len()));

        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let bucket_idx = next.fetch_add(1, Ordering::Relaxed);
                    if bucket_idx >= buckets.len() {
                        break;
                    }
                    let bucket = &buckets[bucket_idx];
                    // Gather the bucket's rows into a contiguous sub-pack;
                    // the streaming path gets this for free because each
                    // shard encodes straight into its own pack.
                    let sub = pack.gather(&bucket.members);
                    let clustering = cluster_shard(&bucket.members, &sub, linkage, threshold);
                    results
                        .lock()
                        .expect("no panics hold the lock")
                        .push(BucketOutcome {
                            bucket_idx,
                            clustering,
                        });
                });
            }
        });

        let mut per_bucket = results.into_inner().expect("threads joined");
        per_bucket.sort_by_key(|r| r.bucket_idx);

        let total: usize = buckets.iter().map(|b| b.len()).sum();
        let mut merger = ShardLabelMerger::new(total);
        for outcome in per_bucket {
            let bucket = &buckets[outcome.bucket_idx];
            merger.add_shard(
                &bucket.members,
                &outcome.clustering.labels,
                &outcome.clustering.medoids,
                &outcome.clustering.stats,
            );
        }
        merger.finish()
    }

    /// Predicts the FPGA timeline for running this configuration on a
    /// workload of the given shape (see [`spechd_fpga::SystemModel`]).
    pub fn estimate_fpga_timeline(&self, shape: &WorkloadShape) -> Timeline {
        let cfg = SystemConfig {
            num_cluster_kernels: self.config.threads.max(1),
            ..SystemConfig::default()
        };
        SystemModel::new(cfg).end_to_end(shape)
    }
}

/// One shard's (= one precursor bucket's) clustering, in the form
/// [`ShardLabelMerger::add_shard`] consumes.
pub(crate) struct ShardClustering {
    /// Local cluster label per member, parallel to the shard's members.
    pub labels: Vec<usize>,
    /// Global hv-index of the medoid of each local cluster.
    pub medoids: Vec<usize>,
    /// HAC work counters.
    pub stats: HacStats,
}

/// Clusters one shard whose rows are already contiguous: tiled distance
/// kernel → NN-chain → threshold cut → per-cluster medoid. `members` maps
/// shard-local row `i` to its global hv index; `sub` holds exactly those
/// rows in the same order. Shared by the batch pipeline (which gathers the
/// sub-pack per bucket) and the streaming pipeline (whose shards encode
/// straight into their own packs) — one implementation, so the two modes
/// cannot drift apart.
pub(crate) fn cluster_shard(
    members: &[usize],
    sub: &HvPack,
    linkage: spechd_cluster::Linkage,
    threshold: f64,
) -> ShardClustering {
    let n = members.len();
    debug_assert_eq!(sub.len(), n, "sub-pack rows must parallel members");
    if n == 1 {
        return ShardClustering {
            labels: vec![0],
            medoids: vec![members[0]],
            stats: HacStats::default(),
        };
    }
    // The tiled kernel runs single-threaded — shards already run in
    // parallel across the bucket/shard worker pool.
    let condensed_u16 = PackedDistanceEngine::new()
        .threads(1)
        .pairwise_condensed(sub);
    // 16-bit lower-triangular matrix, exactly as the FPGA stores it.
    let matrix = CondensedMatrix::from_u16(n, &condensed_u16);
    let result = nn_chain(&matrix, linkage);
    let cut = result.dendrogram.cut(threshold);
    let medoids: Vec<usize> = cut
        .clusters()
        .iter()
        .map(|cluster| members[medoid(&matrix, cluster)])
        .collect();
    ShardClustering {
        labels: cut.labels().to_vec(),
        medoids,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(n: usize, seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: n / 5,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn run_produces_consistent_outcome() {
        let ds = dataset(300, 1);
        let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
        assert_eq!(outcome.assignment().len(), outcome.kept().len());
        assert_eq!(
            outcome.consensus().len(),
            outcome.assignment().num_clusters()
        );
        // Consensus indices refer to the original dataset.
        for &c in outcome.consensus() {
            assert!(c < ds.len());
        }
        assert!(outcome.stats().total_s > 0.0);
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let ds = dataset(250, 2);
        let a = SpecHd::new(SpecHdConfig::default()).run(&ds);
        let b = SpecHd::new(SpecHdConfig::default()).run(&ds);
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.consensus(), b.consensus());
        let cfg = SpecHdConfig {
            threads: 1,
            ..SpecHdConfig::default()
        };
        let c = SpecHd::new(cfg).run(&ds);
        assert_eq!(a.assignment(), c.assignment());
        assert_eq!(a.consensus(), c.consensus());
    }

    #[test]
    fn quality_is_sane_on_synthetic_data() {
        let ds = dataset(600, 3);
        let outcome = SpecHd::new(SpecHdConfig::default()).run(&ds);
        let eval = outcome.evaluate(&ds);
        assert!(
            eval.clustered_ratio > 0.15,
            "clustered {:.3}",
            eval.clustered_ratio
        );
        assert!(
            eval.incorrect_ratio < 0.08,
            "icr {:.3}",
            eval.incorrect_ratio
        );
        assert!(
            eval.completeness > 0.5,
            "completeness {:.3}",
            eval.completeness
        );
    }

    #[test]
    fn tighter_threshold_clusters_less() {
        let ds = dataset(300, 4);
        let loose = SpecHd::new(
            SpecHdConfig::builder()
                .distance_threshold_fraction(0.4)
                .build(),
        )
        .run(&ds);
        let tight = SpecHd::new(
            SpecHdConfig::builder()
                .distance_threshold_fraction(0.1)
                .build(),
        )
        .run(&ds);
        assert!(tight.assignment().clustered_ratio() <= loose.assignment().clustered_ratio());
    }

    #[test]
    fn members_of_one_cluster_share_bucket() {
        // Bucketed clustering can never join spectra from different
        // precursor-mass buckets.
        let ds = dataset(300, 5);
        let engine = SpecHd::new(SpecHdConfig::default());
        let outcome = engine.run(&ds);
        let pre = PreprocessPipeline::new(engine.config().preprocess).run(&ds);
        let bucketer = PrecursorBucketer::new(engine.config().resolution);
        for cluster in outcome.assignment().clusters() {
            let keys: std::collections::HashSet<i64> = cluster
                .iter()
                .map(|&i| bucketer.bucket_of(&pre.dataset.spectra()[i]))
                .collect();
            assert_eq!(keys.len(), 1, "cluster spans buckets");
        }
    }

    #[test]
    fn encode_then_cluster_matches_run() {
        let ds = dataset(200, 6);
        let engine = SpecHd::new(SpecHdConfig::default());
        let full = engine.run(&ds);
        // Manual staging.
        let pre = PreprocessPipeline::new(engine.config().preprocess).run(&ds);
        let hvs = engine.encode_dataset(&pre.dataset);
        let buckets =
            PrecursorBucketer::new(engine.config().resolution).bucketize(pre.dataset.spectra());
        let (assignment, _, _) = engine.cluster_encoded(&buckets, &hvs);
        assert_eq!(assignment, *full.assignment());
    }

    #[test]
    fn packed_staging_matches_run() {
        let ds = dataset(200, 6);
        let engine = SpecHd::new(SpecHdConfig::default());
        let full = engine.run(&ds);
        let pre = PreprocessPipeline::new(engine.config().preprocess).run(&ds);
        let pack = engine.encode_dataset_packed(&pre.dataset);
        assert_eq!(pack.to_hypervectors().as_slice(), full.hypervectors());
        let buckets =
            PrecursorBucketer::new(engine.config().resolution).bucketize(pre.dataset.spectra());
        let (assignment, _, _) = engine.cluster_encoded_packed(&buckets, &pack);
        assert_eq!(assignment, *full.assignment());
    }

    #[test]
    fn fpga_estimate_smoke() {
        let engine = SpecHd::new(SpecHdConfig::default());
        let t = engine.estimate_fpga_timeline(&WorkloadShape::pxd001468());
        assert!(t.total_s > 0.0 && t.total_s < 100.0);
    }
}
