//! Incremental clustering over a persistent [`ClusterStore`].
//!
//! The paper's usage model (§IV-B) is "one-time preprocessing and
//! subsequent updates": an archive grows run by run, and reclustering the
//! whole archive for every new run throws away all prior work.
//! [`SpecHd::run_incremental`] is the subsequent-updates half:
//!
//! 1. preprocess + encode the new installment exactly as the batch path
//!    does (hypervectors are deterministic for a fixed config);
//! 2. route each new spectrum to its Eq. (1) precursor bucket;
//! 3. in a bucket the store has never seen (**fresh**), cluster from
//!    scratch with the same shard kernel the batch pipeline uses;
//! 4. in a bucket with prior clusters (**dirty**), score each new
//!    spectrum against the stored medoid rows with the packed distance
//!    kernel and absorb it into the nearest cluster when that distance is
//!    within the cut threshold; the spectra no existing cluster accepts
//!    are reclustered among themselves and appended as new clusters;
//! 5. replay the union through [`spechd_cluster::ShardLabelMerger`]
//!    ([`ClusterStore::union_assignment`]) for the global assignment.
//!
//! Label stability falls out of the dense-by-first-appearance renumbering:
//! old spectra keep lower global ids than anything new, absorption never
//! relabels an old spectrum, and new clusters only append — so the labels
//! of a previous session survive verbatim as a prefix of the new ones. On
//! an empty store the fresh-bucket path runs for every bucket, making the
//! first installment bit-identical to [`SpecHd::run`] over the same data.

use crate::pipeline::cluster_shard;
use crate::{SpecHd, SpecHdError};
use spechd_cluster::ClusterAssignment;
use spechd_hdc::distance::PackedDistanceEngine;
use spechd_ms::SpectrumDataset;
use spechd_store::{ClusterStore, RefreshReport};

/// Work counters of one incremental installment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Spectra in the installment before preprocessing.
    pub spectra_in: usize,
    /// Spectra surviving preprocessing (= global ids reserved).
    pub spectra_kept: usize,
    /// Buckets of this installment the store had never seen.
    pub fresh_buckets: usize,
    /// Buckets of this installment with prior clusters.
    pub dirty_buckets: usize,
    /// New spectra absorbed into an existing cluster.
    pub absorbed: usize,
    /// New spectra that no existing cluster accepted and that were
    /// reclustered among themselves.
    pub residual: usize,
    /// Clusters appended this installment (fresh buckets + residuals).
    pub new_clusters: usize,
}

/// Result of [`SpecHd::run_incremental`]: the updated global view plus
/// installment bookkeeping.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    assignment: ClusterAssignment,
    consensus: Vec<u64>,
    base_id: u64,
    kept: Vec<usize>,
    stats: IncrementalStats,
}

impl IncrementalOutcome {
    /// The dense global assignment over **every** spectrum the store has
    /// ever absorbed (index = global spectrum id).
    pub fn assignment(&self) -> &ClusterAssignment {
        &self.assignment
    }

    /// Global spectrum id of the medoid of each dense cluster.
    pub fn consensus(&self) -> &[u64] {
        &self.consensus
    }

    /// First global id assigned to this installment; its kept spectra own
    /// ids `base_id .. base_id + kept().len()`.
    pub fn base_id(&self) -> u64 {
        self.base_id
    }

    /// For each kept spectrum of this installment (in id order), its index
    /// in the installment's input dataset.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// The labels of just this installment's spectra — the
    /// `base_id`-offset slice of [`IncrementalOutcome::assignment`].
    pub fn installment_labels(&self) -> &[usize] {
        let base = self.base_id as usize;
        &self.assignment.labels()[base..base + self.kept.len()]
    }

    /// Work counters of this installment.
    pub fn stats(&self) -> &IncrementalStats {
        &self.stats
    }
}

impl SpecHd {
    /// Creates an empty [`ClusterStore`] bound to this engine's
    /// dimensionality and configuration fingerprint — the starting point
    /// of an incremental session sequence.
    pub fn new_store(&self) -> Result<ClusterStore, SpecHdError> {
        Ok(ClusterStore::new(
            self.encoder.dim(),
            self.config.fingerprint(),
        )?)
    }

    /// Like [`SpecHd::new_store`], but the store keeps every member's
    /// hypervector row ([`ClusterStore::new_keeping_rows`]) so
    /// [`SpecHd::refresh_store`] can re-medoid it later without the
    /// original spectra — the mode a long-lived clustering service
    /// wants. [`SpecHd::run_incremental`] produces the same labels in
    /// either mode; only the rows-on-disk cost differs.
    pub fn new_store_keeping_rows(&self) -> Result<ClusterStore, SpecHdError> {
        Ok(ClusterStore::new_keeping_rows(
            self.encoder.dim(),
            self.config.fingerprint(),
        )?)
    }

    /// Runs the medoid refresh / compaction pass
    /// ([`ClusterStore::refresh`]) under this engine's dendrogram cut
    /// threshold: clusters are re-medoided over their kept member rows,
    /// and clusters whose refreshed medoids fall within the threshold
    /// merge. **Outside the stable-label contract** — see the store-side
    /// documentation. Requires a row-keeping store built by
    /// [`SpecHd::new_store_keeping_rows`].
    pub fn refresh_store(&self, store: &mut ClusterStore) -> Result<RefreshReport, SpecHdError> {
        store.ensure_compatible(self.encoder.dim(), self.config.fingerprint())?;
        // The integer floor of the cut threshold accepts exactly the
        // distances `run_incremental`'s `d <= threshold` accepts.
        let threshold_bits = self.config.distance_threshold_bits().floor() as u32;
        Ok(store.refresh(threshold_bits)?)
    }

    /// Clusters one new installment of spectra *into* a persistent store
    /// (see the [module docs](self) for the algorithm), returning the
    /// updated global assignment.
    ///
    /// # Errors
    ///
    /// [`SpecHdError::Store`] if the store was produced under a different
    /// dimensionality or configuration fingerprint
    /// ([`spechd_store::StoreError::DimMismatch`] /
    /// [`spechd_store::StoreError::ConfigMismatch`]), or if its id space
    /// is exhausted.
    pub fn run_incremental(
        &self,
        store: &mut ClusterStore,
        dataset: &SpectrumDataset,
    ) -> Result<IncrementalOutcome, SpecHdError> {
        store.ensure_compatible(self.encoder.dim(), self.config.fingerprint())?;
        let threshold = self.config.distance_threshold_bits();
        let linkage = self.config.linkage;

        let pre = self.preprocess.run(dataset);
        let pack = self.encode_dataset_packed(&pre.dataset);
        let buckets = self.bucketer.bucketize(pre.dataset.spectra());
        let base = store.reserve_ids(pack.len() as u64)?;

        let mut stats = IncrementalStats {
            spectra_in: dataset.len(),
            spectra_kept: pack.len(),
            ..IncrementalStats::default()
        };
        // Single-threaded scoring: medoid sets per bucket are small, and
        // buckets already arrive in deterministic ascending-key order.
        let engine = PackedDistanceEngine::new().threads(1);

        for bucket in &buckets {
            let gid = |local: usize| base + bucket.members[local] as u64;
            let sub = pack.gather(&bucket.members);

            // Snapshot the stored medoid rows (if any) so scoring sees a
            // fixed target set while the store mutates below. Medoids are
            // frozen on absorption — recomputing them would relabel old
            // spectra and break cross-session stability.
            let stored_medoids = store.bucket(bucket.key).map(|b| b.medoids().clone());

            let (absorbed, residual_rows) = match &stored_medoids {
                None => (Vec::new(), (0..sub.len()).collect::<Vec<_>>()),
                Some(medoids) => {
                    stats.dirty_buckets += 1;
                    let mut absorbed = Vec::new();
                    let mut residual = Vec::new();
                    for row in 0..sub.len() {
                        let query = sub.hypervector(row);
                        let dists = engine.one_to_many(&query, medoids);
                        // First minimum wins: deterministic lowest-index
                        // tiebreak, mirroring the dendrogram cut's `<=`.
                        let best = dists
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &d)| d)
                            .expect("stored buckets hold at least one cluster");
                        if f64::from(*best.1) <= threshold {
                            absorbed.push((best.0, row));
                        } else {
                            residual.push(row);
                        }
                    }
                    (absorbed, residual)
                }
            };
            if stored_medoids.is_none() {
                stats.fresh_buckets += 1;
            }

            stats.absorbed += absorbed.len();
            for (cluster, row) in absorbed {
                let cluster = u32::try_from(cluster).expect("cluster index fits u32");
                if store.keeps_member_rows() {
                    store.absorb_with_row(bucket.key, cluster, gid(row), sub.row(row))?;
                } else {
                    store.absorb(bucket.key, cluster, gid(row))?;
                }
            }

            if residual_rows.is_empty() {
                continue;
            }
            if stored_medoids.is_some() {
                stats.residual += residual_rows.len();
            }
            // Recluster the leftovers with the same shard kernel the batch
            // pipeline uses; on a fresh bucket this IS the batch path.
            let rsub = sub.gather(&residual_rows);
            let local: Vec<usize> = (0..residual_rows.len()).collect();
            let clustering = cluster_shard(&local, &rsub, linkage, threshold);
            stats.new_clusters += clustering.medoids.len();
            let mut appended = Vec::with_capacity(clustering.medoids.len());
            for &medoid_row in &clustering.medoids {
                let id = gid(residual_rows[medoid_row]);
                appended.push(store.add_cluster(bucket.key, rsub.row(medoid_row), id)?);
            }
            for (j, &label) in clustering.labels.iter().enumerate() {
                if store.keeps_member_rows() {
                    store.absorb_with_row(
                        bucket.key,
                        appended[label],
                        gid(residual_rows[j]),
                        rsub.row(j),
                    )?;
                } else {
                    store.absorb(bucket.key, appended[label], gid(residual_rows[j]))?;
                }
            }
        }

        let (assignment, consensus) = store.union_assignment()?;
        Ok(IncrementalOutcome {
            assignment,
            consensus,
            base_id: base,
            kept: pre.kept,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecHdConfig;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
    use spechd_store::StoreError;

    fn dataset(n: usize, seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: n / 5,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn first_installment_matches_batch_exactly() {
        let ds = dataset(300, 11);
        let engine = SpecHd::new(SpecHdConfig::default());
        let batch = engine.run(&ds);

        let mut store = engine.new_store().unwrap();
        let inc = engine.run_incremental(&mut store, &ds).unwrap();
        assert_eq!(inc.assignment(), batch.assignment());
        assert_eq!(inc.base_id(), 0);
        assert_eq!(inc.kept(), batch.kept());
        assert_eq!(inc.installment_labels(), batch.assignment().labels());
        assert_eq!(inc.stats().dirty_buckets, 0);
        assert_eq!(inc.stats().absorbed, 0);
        // Consensus ids map to the same kept-index medoids.
        let batch_consensus_kept: Vec<u64> = batch
            .consensus()
            .iter()
            .map(|&orig| batch.kept().iter().position(|&k| k == orig).unwrap() as u64)
            .collect();
        assert_eq!(inc.consensus(), batch_consensus_kept);
    }

    #[test]
    fn second_installment_preserves_prior_labels() {
        let engine = SpecHd::new(SpecHdConfig::default());
        let mut store = engine.new_store().unwrap();
        let first = engine
            .run_incremental(&mut store, &dataset(200, 12))
            .unwrap();
        let second = engine
            .run_incremental(&mut store, &dataset(150, 13))
            .unwrap();
        let n_first = first.assignment().len();
        assert_eq!(second.base_id() as usize, n_first);
        assert_eq!(
            &second.assignment().labels()[..n_first],
            first.assignment().labels(),
            "old labels must survive verbatim"
        );
        assert!(second.stats().dirty_buckets > 0, "runs should overlap");
        assert!(second.stats().absorbed + second.stats().residual > 0);
    }

    #[test]
    fn incompatible_store_is_rejected_up_front() {
        let engine = SpecHd::new(SpecHdConfig::default());
        let other = SpecHd::new(SpecHdConfig::builder().resolution(0.5).build());
        let mut store = other.new_store().unwrap();
        let err = engine
            .run_incremental(&mut store, &dataset(50, 14))
            .unwrap_err();
        assert!(matches!(
            err,
            SpecHdError::Store(StoreError::ConfigMismatch { .. })
        ));
        assert_eq!(store.next_spectrum_id(), 0, "store must be untouched");
    }

    #[test]
    fn row_keeping_store_matches_rowless_labels_and_refreshes() {
        let engine = SpecHd::new(SpecHdConfig::default());
        let mut rowless = engine.new_store().unwrap();
        let mut rowed = engine.new_store_keeping_rows().unwrap();
        for seed in [21, 22] {
            let ds = dataset(150, seed);
            let a = engine.run_incremental(&mut rowless, &ds).unwrap();
            let b = engine.run_incremental(&mut rowed, &ds).unwrap();
            assert_eq!(a.assignment(), b.assignment(), "row mode must not matter");
            assert_eq!(a.consensus(), b.consensus());
        }
        // Engine-level refresh is deterministic and row-gated.
        let mut twin = rowed.clone();
        let r1 = engine.refresh_store(&mut rowed).unwrap();
        let r2 = engine.refresh_store(&mut twin).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(rowed, twin);
        assert!(matches!(
            engine.refresh_store(&mut rowless),
            Err(SpecHdError::Store(StoreError::MemberRowMode {
                keeps_rows: false
            }))
        ));
    }

    #[test]
    fn empty_installment_is_a_no_op() {
        let engine = SpecHd::new(SpecHdConfig::default());
        let mut store = engine.new_store().unwrap();
        engine
            .run_incremental(&mut store, &dataset(200, 15))
            .unwrap();
        let before = store.clone();
        let out = engine
            .run_incremental(&mut store, &SpectrumDataset::new())
            .unwrap();
        assert_eq!(store, before);
        assert_eq!(out.stats().spectra_kept, 0);
        assert!(out.installment_labels().is_empty());
    }
}
