//! Pipeline configuration.

use spechd_cluster::Linkage;
use spechd_hdc::EncoderConfig;
use spechd_preprocess::PreprocessConfig;

/// A degenerate [`SpecHdConfig`] setting, reported by
/// [`SpecHdConfig::try_validate`] / [`SpecHdConfigBuilder::try_build`].
///
/// Every variant corresponds to a setting that some stage downstream would
/// otherwise reject with a panic deep inside its constructor; validating
/// here turns all of them into one typed, recoverable error at the API
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The Eq. (1) bucketing resolution is not finite and positive.
    InvalidResolution {
        /// The offending resolution.
        value: f64,
    },
    /// The cluster-cut threshold fraction lies outside `[0, 1]`.
    ThresholdOutOfRange {
        /// The offending fraction.
        value: f64,
    },
    /// The hypervector dimensionality is zero.
    ZeroDimension,
    /// The hypervector dimensionality exceeds what the `u16` distance
    /// kernels (and the 16-bit FPGA distance path they model) can hold.
    DimensionTooLarge {
        /// The offending dimensionality.
        dim: usize,
        /// The largest supported dimensionality (`u16::MAX`).
        max: usize,
    },
    /// The encoder has no m/z quantization bins.
    ZeroMzBins,
    /// The encoder has fewer than two intensity levels (the correlated
    /// level memory needs two endpoints to interpolate between).
    TooFewIntensityLevels {
        /// The offending level count.
        value: usize,
    },
    /// The encoder's m/z range is empty or non-finite.
    InvalidMzRange {
        /// The offending `(low, high)` range.
        range: (f64, f64),
    },
    /// The preprocessing top-k selector keeps zero peaks.
    ZeroTopK,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidResolution { value } => {
                write!(f, "resolution must be positive (got {value})")
            }
            ConfigError::ThresholdOutOfRange { value } => {
                write!(f, "threshold fraction must be in [0, 1] (got {value})")
            }
            ConfigError::ZeroDimension => {
                write!(f, "hypervector dimensionality must be positive")
            }
            ConfigError::DimensionTooLarge { dim, max } => write!(
                f,
                "hypervector dimensionality {dim} exceeds the 16-bit distance limit {max}"
            ),
            ConfigError::ZeroMzBins => write!(f, "encoder needs at least one m/z bin"),
            ConfigError::TooFewIntensityLevels { value } => write!(
                f,
                "encoder needs at least two intensity levels (got {value})"
            ),
            ConfigError::InvalidMzRange { range } => write!(
                f,
                "encoder m/z range ({}, {}) must be finite and increasing",
                range.0, range.1
            ),
            ConfigError::ZeroTopK => write!(f, "top_k must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full SpecHD pipeline configuration.
///
/// Defaults follow the paper's deployed settings: `D = 2048`, complete
/// linkage, 1-Da bucketing resolution, top-50 peaks.
///
/// # Examples
///
/// ```
/// use spechd_core::{Linkage, SpecHdConfig};
/// let config = SpecHdConfig::builder()
///     .linkage(Linkage::Ward)
///     .distance_threshold_fraction(0.25)
///     .resolution(0.5)
///     .try_build()?;
/// assert_eq!(config.linkage, Linkage::Ward);
/// # Ok::<(), spechd_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpecHdConfig {
    /// HDC encoder settings (dimensionality, item memories, seed).
    pub encoder: EncoderConfig,
    /// Preprocessing settings (filter, top-k, normalization).
    pub preprocess: PreprocessConfig,
    /// Eq. (1) bucketing resolution in Dalton (paper: 0.05–1).
    pub resolution: f64,
    /// HAC linkage criterion (paper default: complete).
    pub linkage: Linkage,
    /// Cluster-cut threshold as a fraction of the hypervector
    /// dimensionality: clusters merge while the linkage distance is at
    /// most `fraction × D` Hamming bits.
    pub distance_threshold_fraction: f64,
    /// Number of worker threads for bucket-parallel clustering (models
    /// the paper's 5 parallel clustering kernels; 0 = all available).
    pub threads: usize,
}

impl Default for SpecHdConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderConfig::default(),
            preprocess: PreprocessConfig::default(),
            resolution: 1.0,
            linkage: Linkage::Complete,
            distance_threshold_fraction: 0.32,
            threads: 5,
        }
    }
}

impl SpecHdConfig {
    /// Starts a builder with default settings.
    pub fn builder() -> SpecHdConfigBuilder {
        SpecHdConfigBuilder {
            config: Self::default(),
        }
    }

    /// The absolute Hamming threshold in bits.
    pub fn distance_threshold_bits(&self) -> f64 {
        self.distance_threshold_fraction * self.encoder.dim as f64
    }

    /// Checks every invariant, returning the first violation as a typed
    /// [`ConfigError`].
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(self.resolution.is_finite() && self.resolution > 0.0) {
            return Err(ConfigError::InvalidResolution {
                value: self.resolution,
            });
        }
        if !(0.0..=1.0).contains(&self.distance_threshold_fraction) {
            return Err(ConfigError::ThresholdOutOfRange {
                value: self.distance_threshold_fraction,
            });
        }
        if self.encoder.dim == 0 {
            return Err(ConfigError::ZeroDimension);
        }
        if self.encoder.dim > u16::MAX as usize {
            return Err(ConfigError::DimensionTooLarge {
                dim: self.encoder.dim,
                max: u16::MAX as usize,
            });
        }
        if self.encoder.mz_bins == 0 {
            return Err(ConfigError::ZeroMzBins);
        }
        if self.encoder.intensity_levels < 2 {
            return Err(ConfigError::TooFewIntensityLevels {
                value: self.encoder.intensity_levels,
            });
        }
        let (lo, hi) = self.encoder.mz_range;
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(ConfigError::InvalidMzRange {
                range: self.encoder.mz_range,
            });
        }
        if self.preprocess.top_k == 0 {
            return Err(ConfigError::ZeroTopK);
        }
        Ok(())
    }

    /// Validates invariants; the panicking shim over
    /// [`SpecHdConfig::try_validate`] kept for quick scripts and tests.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] display message on any invalid
    /// setting.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// A 64-bit FNV-1a fingerprint over every *result-affecting* setting:
    /// encoder (dimensionality, item memories, range, seed), preprocessing
    /// (filter windows, top-k, min-peaks, scaling), bucketing resolution,
    /// linkage, and cut threshold. `threads` is deliberately excluded —
    /// results are bit-identical across worker counts.
    ///
    /// Two configurations produce comparable hypervectors and identical
    /// clusterings iff their fingerprints match; the persistent
    /// [`spechd_store::ClusterStore`] records this value and refuses to
    /// mix sessions run under different settings.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a 64 over a canonical little-endian field serialization.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.encoder.dim as u64).to_le_bytes());
        eat(&(self.encoder.mz_bins as u64).to_le_bytes());
        eat(&(self.encoder.intensity_levels as u64).to_le_bytes());
        eat(&self.encoder.mz_range.0.to_bits().to_le_bytes());
        eat(&self.encoder.mz_range.1.to_bits().to_le_bytes());
        eat(&self.encoder.seed.to_le_bytes());
        eat(&self
            .preprocess
            .filter
            .precursor_tolerance
            .to_bits()
            .to_le_bytes());
        eat(&self
            .preprocess
            .filter
            .min_relative_intensity
            .to_bits()
            .to_le_bytes());
        eat(&self.preprocess.filter.mz_window.0.to_bits().to_le_bytes());
        eat(&self.preprocess.filter.mz_window.1.to_bits().to_le_bytes());
        eat(&(self.preprocess.top_k as u64).to_le_bytes());
        eat(&(self.preprocess.min_peaks as u64).to_le_bytes());
        eat(&[u8::from(self.preprocess.scale)]);
        eat(&self.resolution.to_bits().to_le_bytes());
        eat(&[match self.linkage {
            Linkage::Single => 0,
            Linkage::Complete => 1,
            Linkage::Average => 2,
            Linkage::Ward => 3,
        }]);
        eat(&self.distance_threshold_fraction.to_bits().to_le_bytes());
        hash
    }
}

/// Builder for [`SpecHdConfig`] (non-consuming chain, terminal
/// [`SpecHdConfigBuilder::try_build`] or panicking
/// [`SpecHdConfigBuilder::build`]).
#[derive(Debug, Clone)]
pub struct SpecHdConfigBuilder {
    config: SpecHdConfig,
}

impl SpecHdConfigBuilder {
    /// Sets the encoder configuration.
    pub fn encoder(&mut self, encoder: EncoderConfig) -> &mut Self {
        self.config.encoder = encoder;
        self
    }

    /// Sets the preprocessing configuration.
    pub fn preprocess(&mut self, preprocess: PreprocessConfig) -> &mut Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Sets the bucketing resolution in Dalton.
    pub fn resolution(&mut self, resolution: f64) -> &mut Self {
        self.config.resolution = resolution;
        self
    }

    /// Sets the linkage criterion.
    pub fn linkage(&mut self, linkage: Linkage) -> &mut Self {
        self.config.linkage = linkage;
        self
    }

    /// Sets the cut threshold as a fraction of `D`.
    pub fn distance_threshold_fraction(&mut self, fraction: f64) -> &mut Self {
        self.config.distance_threshold_fraction = fraction;
        self
    }

    /// Sets the worker thread count (0 = all available).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Finalizes the configuration, reporting the first invalid setting
    /// as a typed [`ConfigError`].
    pub fn try_build(&self) -> Result<SpecHdConfig, ConfigError> {
        self.config.try_validate()?;
        Ok(self.config.clone())
    }

    /// Finalizes the configuration; the panicking shim over
    /// [`SpecHdConfigBuilder::try_build`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SpecHdConfig::try_validate`]).
    pub fn build(&self) -> SpecHdConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SpecHdConfig::default();
        assert_eq!(c.encoder.dim, 2048);
        assert_eq!(c.linkage, Linkage::Complete);
        assert_eq!(c.resolution, 1.0);
        assert_eq!(c.threads, 5);
        c.try_validate().unwrap();
    }

    #[test]
    fn builder_chain() {
        let c = SpecHdConfig::builder()
            .resolution(0.5)
            .linkage(Linkage::Single)
            .distance_threshold_fraction(0.2)
            .threads(2)
            .build();
        assert_eq!(c.resolution, 0.5);
        assert_eq!(c.linkage, Linkage::Single);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn threshold_bits() {
        let c = SpecHdConfig::builder()
            .distance_threshold_fraction(0.25)
            .build();
        assert!((c.distance_threshold_bits() - 512.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn invalid_threshold_panics() {
        SpecHdConfig::builder()
            .distance_threshold_fraction(1.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn invalid_resolution_panics() {
        SpecHdConfig::builder().resolution(-1.0).build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let err = SpecHdConfig::builder()
            .resolution(f64::NAN)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidResolution { .. }));
        let ok = SpecHdConfig::builder().try_build().unwrap();
        assert_eq!(ok, SpecHdConfig::default());
    }

    #[test]
    fn every_invariant_has_a_variant() {
        type Mutation = Box<dyn Fn(&mut SpecHdConfig)>;
        let cases: Vec<(Mutation, ConfigError)> = vec![
            (
                Box::new(|c| c.resolution = 0.0),
                ConfigError::InvalidResolution { value: 0.0 },
            ),
            (
                Box::new(|c| c.distance_threshold_fraction = -0.1),
                ConfigError::ThresholdOutOfRange { value: -0.1 },
            ),
            (Box::new(|c| c.encoder.dim = 0), ConfigError::ZeroDimension),
            (
                Box::new(|c| c.encoder.dim = 1 << 16),
                ConfigError::DimensionTooLarge {
                    dim: 1 << 16,
                    max: u16::MAX as usize,
                },
            ),
            (Box::new(|c| c.encoder.mz_bins = 0), ConfigError::ZeroMzBins),
            (
                Box::new(|c| c.encoder.intensity_levels = 1),
                ConfigError::TooFewIntensityLevels { value: 1 },
            ),
            (
                Box::new(|c| c.encoder.mz_range = (500.0, 500.0)),
                ConfigError::InvalidMzRange {
                    range: (500.0, 500.0),
                },
            ),
            (Box::new(|c| c.preprocess.top_k = 0), ConfigError::ZeroTopK),
        ];
        for (mutate, expected) in cases {
            let mut c = SpecHdConfig::default();
            mutate(&mut c);
            assert_eq!(c.try_validate(), Err(expected.clone()), "{expected:?}");
            // Errors render without panicking and are non-empty.
            assert!(!expected.to_string().is_empty());
        }
    }

    #[test]
    fn fingerprint_ignores_threads_but_tracks_results() {
        let base = SpecHdConfig::default();
        let mut threads = base.clone();
        threads.threads = 1;
        assert_eq!(base.fingerprint(), threads.fingerprint());

        let mut seed = base.clone();
        seed.encoder.seed ^= 1;
        assert_ne!(base.fingerprint(), seed.fingerprint());

        let mut res = base.clone();
        res.resolution = 0.5;
        assert_ne!(base.fingerprint(), res.fingerprint());

        let mut link = base.clone();
        link.linkage = Linkage::Ward;
        assert_ne!(base.fingerprint(), link.fingerprint());

        let mut thr = base.clone();
        thr.distance_threshold_fraction = 0.25;
        assert_ne!(base.fingerprint(), thr.fingerprint());

        let mut topk = base.clone();
        topk.preprocess.top_k = 40;
        assert_ne!(base.fingerprint(), topk.fingerprint());
    }
}
