//! Pipeline configuration.

use spechd_cluster::Linkage;
use spechd_hdc::EncoderConfig;
use spechd_preprocess::PreprocessConfig;

/// Full SpecHD pipeline configuration.
///
/// Defaults follow the paper's deployed settings: `D = 2048`, complete
/// linkage, 1-Da bucketing resolution, top-50 peaks.
///
/// # Examples
///
/// ```
/// use spechd_core::{Linkage, SpecHdConfig};
/// let config = SpecHdConfig::builder()
///     .linkage(Linkage::Ward)
///     .distance_threshold_fraction(0.25)
///     .resolution(0.5)
///     .build();
/// assert_eq!(config.linkage, Linkage::Ward);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpecHdConfig {
    /// HDC encoder settings (dimensionality, item memories, seed).
    pub encoder: EncoderConfig,
    /// Preprocessing settings (filter, top-k, normalization).
    pub preprocess: PreprocessConfig,
    /// Eq. (1) bucketing resolution in Dalton (paper: 0.05–1).
    pub resolution: f64,
    /// HAC linkage criterion (paper default: complete).
    pub linkage: Linkage,
    /// Cluster-cut threshold as a fraction of the hypervector
    /// dimensionality: clusters merge while the linkage distance is at
    /// most `fraction × D` Hamming bits.
    pub distance_threshold_fraction: f64,
    /// Number of worker threads for bucket-parallel clustering (models
    /// the paper's 5 parallel clustering kernels; 0 = all available).
    pub threads: usize,
}

impl Default for SpecHdConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderConfig::default(),
            preprocess: PreprocessConfig::default(),
            resolution: 1.0,
            linkage: Linkage::Complete,
            distance_threshold_fraction: 0.32,
            threads: 5,
        }
    }
}

impl SpecHdConfig {
    /// Starts a builder with default settings.
    pub fn builder() -> SpecHdConfigBuilder {
        SpecHdConfigBuilder {
            config: Self::default(),
        }
    }

    /// The absolute Hamming threshold in bits.
    pub fn distance_threshold_bits(&self) -> f64 {
        self.distance_threshold_fraction * self.encoder.dim as f64
    }

    /// Validates invariants; called by the pipeline constructor.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings (non-positive resolution or a
    /// threshold fraction outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(
            self.resolution.is_finite() && self.resolution > 0.0,
            "resolution must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.distance_threshold_fraction),
            "threshold fraction must be in [0, 1]"
        );
    }
}

/// Builder for [`SpecHdConfig`] (non-consuming chain, terminal `build`).
#[derive(Debug, Clone)]
pub struct SpecHdConfigBuilder {
    config: SpecHdConfig,
}

impl SpecHdConfigBuilder {
    /// Sets the encoder configuration.
    pub fn encoder(&mut self, encoder: EncoderConfig) -> &mut Self {
        self.config.encoder = encoder;
        self
    }

    /// Sets the preprocessing configuration.
    pub fn preprocess(&mut self, preprocess: PreprocessConfig) -> &mut Self {
        self.config.preprocess = preprocess;
        self
    }

    /// Sets the bucketing resolution in Dalton.
    pub fn resolution(&mut self, resolution: f64) -> &mut Self {
        self.config.resolution = resolution;
        self
    }

    /// Sets the linkage criterion.
    pub fn linkage(&mut self, linkage: Linkage) -> &mut Self {
        self.config.linkage = linkage;
        self
    }

    /// Sets the cut threshold as a fraction of `D`.
    pub fn distance_threshold_fraction(&mut self, fraction: f64) -> &mut Self {
        self.config.distance_threshold_fraction = fraction;
        self
    }

    /// Sets the worker thread count (0 = all available).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SpecHdConfig::validate`]).
    pub fn build(&self) -> SpecHdConfig {
        self.config.validate();
        self.config.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SpecHdConfig::default();
        assert_eq!(c.encoder.dim, 2048);
        assert_eq!(c.linkage, Linkage::Complete);
        assert_eq!(c.resolution, 1.0);
        assert_eq!(c.threads, 5);
    }

    #[test]
    fn builder_chain() {
        let c = SpecHdConfig::builder()
            .resolution(0.5)
            .linkage(Linkage::Single)
            .distance_threshold_fraction(0.2)
            .threads(2)
            .build();
        assert_eq!(c.resolution, 0.5);
        assert_eq!(c.linkage, Linkage::Single);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn threshold_bits() {
        let c = SpecHdConfig::builder()
            .distance_threshold_fraction(0.25)
            .build();
        assert!((c.distance_threshold_bits() - 512.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn invalid_threshold_panics() {
        SpecHdConfig::builder()
            .distance_threshold_fraction(1.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn invalid_resolution_panics() {
        SpecHdConfig::builder().resolution(-1.0).build();
    }
}
