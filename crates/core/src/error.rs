//! The workspace-level error umbrella.

use crate::ConfigError;
use spechd_store::StoreError;

/// Any failure a fallible `spechd-core` entry point can report:
/// configuration rejection ([`ConfigError`]) or persistent-store trouble
/// ([`StoreError`], which itself covers I/O and file-format defects).
///
/// `From` impls let call sites use `?` across layers; [`SpecHdError`]
/// implements [`std::error::Error`] with `source()` chaining, so it also
/// boxes cleanly into `Box<dyn Error>` applications.
#[derive(Debug)]
pub enum SpecHdError {
    /// The pipeline configuration is invalid.
    Config(ConfigError),
    /// The persistent cluster store failed (I/O, format, or consistency).
    Store(StoreError),
}

impl std::fmt::Display for SpecHdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecHdError::Config(e) => write!(f, "invalid configuration: {e}"),
            SpecHdError::Store(e) => write!(f, "cluster store error: {e}"),
        }
    }
}

impl std::error::Error for SpecHdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecHdError::Config(e) => Some(e),
            SpecHdError::Store(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SpecHdError {
    fn from(e: ConfigError) -> Self {
        SpecHdError::Config(e)
    }
}

impl From<StoreError> for SpecHdError {
    fn from(e: StoreError) -> Self {
        SpecHdError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_chains_sources() {
        let e: SpecHdError = ConfigError::ZeroTopK.into();
        assert!(e.to_string().contains("top_k"));
        assert!(e.source().is_some());

        let e: SpecHdError = StoreError::IdSpaceExhausted.into();
        assert!(e.to_string().contains("id space"));
        assert!(e.source().is_some());
    }
}
