//! Clustering-as-a-service: a TCP front end over the SpecHD streaming
//! pipeline.
//!
//! The server speaks a versioned, length-prefixed binary protocol (see
//! [`protocol`]) and multiplexes any number of concurrent client
//! connections into per-job [`spechd_core::SpecHd`] streaming
//! pipelines. A job is a shared clustering stream: every participant's
//! `Submit` batches are appended (with contiguous stream indices) to
//! one bounded ingest queue feeding one
//! [`run_streaming_observed`](spechd_core::SpecHd::run_streaming_observed)
//! run, and per-shard results stream back to **all** participants as
//! shards finalize — clients do not wait for the run to end to start
//! receiving assignments.
//!
//! Design pillars, each carried by one module:
//!
//! * [`protocol`] — the wire format: 12-byte header, capped length
//!   prefixes, byte-exact round-trippable frames. Every decode-time
//!   cap it enforces lives in the [`limits`] table, configurable per
//!   server through [`ServerConfig::limits`].
//! * [`job`] — job lifecycle and backpressure: the last participant's
//!   close (or disconnect) ends the stream; a full ingest queue blocks
//!   the submitter at the socket, and result fan-out goes through
//!   bounded per-connection queues whose stalled consumers are dropped
//!   — in both directions, slow peers cost bounded memory, never the
//!   job's throughput or the server's heap.
//! * [`server`] — the accept loop and per-connection threads: idle
//!   timeouts, frame deadlines, malformed-frame rejection that kills
//!   the connection but never the server, graceful drain on shutdown.
//! * [`client`] / [`assemble`] — the client side: blocking submission
//!   with per-batch stream-index receipts, and reassembly of streamed
//!   shard results into a final clustering bit-identical to a local
//!   batch [`run`](spechd_core::SpecHd::run) over the same spectra.
//!   With a [`RetryPolicy`] set, clients survive connection loss:
//!   participants are identified by a `client_id` that outlives the
//!   TCP connection, submits are sequence-numbered so a re-sent batch
//!   is re-acked rather than re-ingested, and the server replays
//!   missed result frames on rejoin — a mid-stream disconnect leaves
//!   the assembled outcome bit-identical to an undisturbed run.
//! * [`search`] — the search job surface: shared
//!   [`spechd_search::HvLibrary`] loading over `LoadLibrary` frames,
//!   seal-on-first-query, and windowed packed scoring whose hits are
//!   bit-identical to a local [`spechd_search::PackedSearchEngine`]
//!   run over the same entries (pinned by the served-path equivalence
//!   tests).
//! * [`store`] — incremental clustering as a service: `OpenStore`
//!   binds a connection to the **exclusive** write session of a named
//!   persistent [`spechd_core::ClusterStore`] (a second writer is shed
//!   with the retryable [`ErrorCode::StoreBusy`]), sequence-numbered
//!   `SubmitIncremental` installments run the library's
//!   [`run_incremental`](spechd_core::SpecHd::run_incremental) —
//!   bit-identically, sessions and reconnects notwithstanding — and
//!   `PersistStore` / `RefreshStore` expose the crash-safe save and
//!   the medoid refresh / compaction pass over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod client;
pub mod job;
pub mod limits;
pub mod protocol;
pub mod search;
pub mod server;
pub mod store;

pub use assemble::{AssignmentAssembler, ServiceOutcome};
pub use client::{
    ClientError, Connection, JobClient, QueryHits, RetryPolicy, SearchClient, StoreClient,
    SubmitReceipt,
};
pub use job::{JobError, JobHandle, JobRegistry};
pub use limits::Limits;
pub use protocol::{
    check_store_name, ErrorCode, Frame, FrameType, HitWire, IncrementalAckFrame, JobConfig,
    JobStatsFrame, LibraryEntryWire, QueryWire, SearchStatsFrame, StoreAckFrame, WireError,
};
pub use search::{SearchHandle, SearchJob, SearchRegistry};
pub use server::{RunningServer, Server, ServerConfig};
pub use store::{StoreRegistry, StoreSessionHandle};
