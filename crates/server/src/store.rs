//! Store sessions: exclusive, resumable write sessions over persistent
//! incremental cluster stores.
//!
//! A *store* is a named server-side [`ClusterStore`] plus the
//! [`SpecHd`] engine its config describes. Unlike jobs — shared streams
//! any number of participants append to — a store admits **one writer
//! at a time**: `OpenStore` binds the connection to the store's single
//! session slot, and a second client asking for the same store is shed
//! with the retryable [`ErrorCode::StoreBusy`] until the holder
//! disconnects (plus the rejoin grace). Exclusivity is what makes the
//! served incremental path bit-identical to a library
//! [`run_incremental`](SpecHd::run_incremental) loop: installments
//! apply in exactly the order one client sent them, with no
//! interleaving to re-order absorption.
//!
//! ## Resume
//!
//! The session slot mirrors the job slot's reconnect contract:
//! installments are sequence-numbered, a duplicate `seq` is re-acked
//! from the recorded ack instead of re-ingested, and a disconnected
//! holder's slot survives the registry's rejoin grace for the same
//! `client_id` to reconnect (re-`OpenStore`) and resume. A rejoin while
//! the old connection still reads as attached *steals* the slot
//! (newest connection wins, epoch bump), so a half-dead socket never
//! wedges a store.
//!
//! ## Persistence
//!
//! Stores live in memory between sessions. When the server is given a
//! store directory, `OpenStore` first tries
//! [`ClusterStore::load_or_recover`] on `<dir>/<name>.shpk` (the
//! crash-safe read side of the PR 9 durability path), and
//! `PersistStore` saves through [`ClusterStore::save`] (the atomic
//! tmp → fsync → backup-rotate → rename write side). Without a store
//! directory the store is memory-only and `PersistStore` is refused.
//!
//! Config binding is strict: the store's engine is built once from the
//! `OpenStore` config, a later `OpenStore` with a different config is
//! refused with [`ErrorCode::ConfigMismatch`], and a store loaded from
//! disk must carry the matching config fingerprint
//! ([`ClusterStore::ensure_compatible`]).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spechd_core::{ClusterStore, SpecHd, SpecHdError, StoreError};
use spechd_ms::{Spectrum, SpectrumDataset};

use crate::job::JobError;
use crate::protocol::{ErrorCode, IncrementalAckFrame, JobConfig, StoreAckFrame};

/// Maps a store-layer failure to the wire error code a client should
/// see: config/fingerprint disagreements are [`ErrorCode::ConfigMismatch`],
/// I/O trouble is the retryable [`ErrorCode::StoreBusy`] (the file may
/// be readable or writable a moment later), and structural corruption
/// is fatal [`ErrorCode::ProtocolState`].
fn store_error_code(e: &StoreError) -> ErrorCode {
    match e {
        StoreError::DimMismatch { .. } | StoreError::ConfigMismatch { .. } => {
            ErrorCode::ConfigMismatch
        }
        StoreError::Io { .. } => ErrorCode::StoreBusy,
        _ => ErrorCode::ProtocolState,
    }
}

fn store_error(e: &SpecHdError) -> JobError {
    let code = match e {
        SpecHdError::Store(s) => store_error_code(s),
        SpecHdError::Config(_) => ErrorCode::ConfigMismatch,
    };
    JobError {
        code,
        message: format!("store: {e}"),
    }
}

fn state_error(message: impl Into<String>) -> JobError {
    JobError {
        code: ErrorCode::ProtocolState,
        message: message.into(),
    }
}

/// The single write session a store admits at a time.
struct SessionSlot {
    /// Owner of the slot; survives the TCP connection.
    client_id: u64,
    /// A live connection currently holds this slot.
    attached: bool,
    /// Bumped on every rejoin; lets a pending grace timer and zombie
    /// handles recognize they have been superseded.
    epoch: u64,
    /// The next installment sequence number this session will ingest.
    next_seq: u64,
    /// The last acknowledged installment, for duplicate re-acks.
    last_ack: Option<IncrementalAckFrame>,
}

/// Mutable state of one store: the archive, its engine, and the session.
struct StoreState {
    store: ClusterStore,
    engine: SpecHd,
    config: JobConfig,
    /// Absorptions or refreshes since the last successful persist.
    dirty: bool,
    session: Option<SessionSlot>,
}

/// One named store resident in the registry.
struct StoreEntry {
    name: String,
    /// Backing file, when the server has a store directory.
    path: Option<PathBuf>,
    rejoin_grace: Duration,
    state: Mutex<StoreState>,
}

impl StoreEntry {
    fn lock(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state.lock().expect("store state poisoned")
    }
}

/// Owns every store resident on this server, by name.
///
/// Stores are created on first `OpenStore` (loading the backing file
/// when one exists) and stay resident until the server stops — the
/// in-memory archive *is* the continuation state that makes a later
/// session's labels extend the earlier session's verbatim.
pub struct StoreRegistry {
    stores: Mutex<HashMap<String, Arc<StoreEntry>>>,
    /// Directory of `<name>.shpk` backing files; `None` = memory-only.
    dir: Option<PathBuf>,
    rejoin_grace: Duration,
    max_stores: usize,
}

impl StoreRegistry {
    /// Creates an empty registry. `dir` is the backing directory for
    /// `<name>.shpk` files (`None` disables persistence), a
    /// disconnected session survives `rejoin_grace` for the same
    /// `client_id` to resume, and at most `max_stores` stores may be
    /// resident (one more is shed with retryable
    /// [`ErrorCode::StoreBusy`]).
    pub fn new(dir: Option<PathBuf>, rejoin_grace: Duration, max_stores: usize) -> Self {
        Self {
            stores: Mutex::new(HashMap::new()),
            dir,
            rejoin_grace,
            max_stores: max_stores.max(1),
        }
    }

    /// Number of resident stores.
    pub fn len(&self) -> usize {
        self.stores.lock().expect("store registry poisoned").len()
    }

    /// Whether no store is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens `name` for `client_id`, creating or loading the store on
    /// first open, and claims its exclusive session slot.
    ///
    /// * A store held by a *different* client is refused with the
    ///   retryable [`ErrorCode::StoreBusy`].
    /// * The *same* client rejoining (reconnect inside the grace, or a
    ///   slot-steal while the old connection reads attached) resumes
    ///   its session: sequence numbering and the duplicate-ack record
    ///   carry over.
    /// * A config differing from the one the store was opened (or
    ///   persisted) with is refused with
    ///   [`ErrorCode::ConfigMismatch`].
    pub fn open(
        &self,
        name: &str,
        client_id: u64,
        config: &JobConfig,
    ) -> Result<StoreSessionHandle, JobError> {
        let entry = self.entry(name, config)?;
        let mut state = entry.lock();
        if state.config != *config {
            return Err(JobError {
                code: ErrorCode::ConfigMismatch,
                message: format!("store {name} is bound to a different clustering config"),
            });
        }
        let epoch = match &mut state.session {
            Some(slot) if slot.client_id != client_id => {
                return Err(JobError {
                    code: ErrorCode::StoreBusy,
                    message: format!("store {name} has an active write session for another client"),
                });
            }
            Some(slot) => {
                // Same participant back (resume or slot steal): the
                // epoch bump turns the zombie handle's detach into a
                // no-op and cancels any pending grace timer.
                slot.attached = true;
                slot.epoch += 1;
                slot.epoch
            }
            None => {
                state.session = Some(SessionSlot {
                    client_id,
                    attached: true,
                    epoch: 0,
                    next_seq: 0,
                    last_ack: None,
                });
                0
            }
        };
        drop(state);
        Ok(StoreSessionHandle {
            entry,
            client_id,
            epoch,
        })
    }

    /// Looks up or creates the named entry (engine build + optional
    /// backing-file load happen here, exactly once per store).
    fn entry(&self, name: &str, config: &JobConfig) -> Result<Arc<StoreEntry>, JobError> {
        let mut stores = self.stores.lock().expect("store registry poisoned");
        if let Some(entry) = stores.get(name) {
            return Ok(Arc::clone(entry));
        }
        if stores.len() >= self.max_stores {
            return Err(JobError {
                code: ErrorCode::StoreBusy,
                message: format!("server store cap {} reached", self.max_stores),
            });
        }
        let engine = SpecHd::try_new(config.pipeline_config())
            .map_err(|e| store_error(&SpecHdError::Config(e)))?;
        let path = self
            .dir
            .as_ref()
            .map(|dir| dir.join(format!("{name}.shpk")));
        let store = match path.as_deref() {
            Some(p) => load_or_create(&engine, p)?,
            None => engine
                .new_store_keeping_rows()
                .map_err(|e| store_error(&e))?,
        };
        let entry = Arc::new(StoreEntry {
            name: name.to_string(),
            path,
            rejoin_grace: self.rejoin_grace,
            state: Mutex::new(StoreState {
                store,
                engine,
                config: config.clone(),
                dirty: false,
                session: None,
            }),
        });
        stores.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

/// Loads the backing file (with crash recovery) when any replica of it
/// exists, otherwise creates a fresh row-keeping store. A loaded store
/// must match the engine's dim and config fingerprint.
fn load_or_create(engine: &SpecHd, path: &Path) -> Result<ClusterStore, JobError> {
    match ClusterStore::load_or_recover(path) {
        Ok((store, _report)) => {
            // Probe store: the engine's dim/fingerprint via public API.
            let probe = engine.new_store().map_err(|e| store_error(&e))?;
            store
                .ensure_compatible(probe.dim(), probe.fingerprint())
                .map_err(|e| store_error(&SpecHdError::Store(e)))?;
            Ok(store)
        }
        // A clean not-found (no primary, pending, or backup replica)
        // means the store has simply never been persisted: start fresh.
        Err(StoreError::Io { ref source, .. }) if source.kind() == std::io::ErrorKind::NotFound => {
            engine.new_store_keeping_rows().map_err(|e| store_error(&e))
        }
        Err(e) => Err(store_error(&SpecHdError::Store(e))),
    }
}

/// One connection's claim on a store's write session.
///
/// Dropping the handle (connection gone) *detaches* the session rather
/// than ending it: the slot survives the rejoin grace for the same
/// client to reconnect and resume, after which the store is free for
/// any client.
pub struct StoreSessionHandle {
    entry: Arc<StoreEntry>,
    client_id: u64,
    epoch: u64,
}

impl std::fmt::Debug for StoreSessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSessionHandle")
            .field("name", &self.entry.name)
            .field("client_id", &self.client_id)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl StoreSessionHandle {
    /// The store's name.
    pub fn name(&self) -> &str {
        &self.entry.name
    }

    /// The session owner's client id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Locks the state iff this handle still owns the session.
    fn owned(&self) -> Result<std::sync::MutexGuard<'_, StoreState>, JobError> {
        let state = self.entry.lock();
        let owns = state
            .session
            .as_ref()
            .is_some_and(|s| s.client_id == self.client_id && s.epoch == self.epoch);
        if owns {
            Ok(state)
        } else {
            Err(state_error(format!(
                "store session for {} was superseded",
                self.entry.name
            )))
        }
    }

    /// Ingests one sequence-numbered installment through the store's
    /// engine. A duplicate of the last acknowledged `seq` is re-acked
    /// verbatim without re-ingesting (resume idempotency); any other
    /// out-of-order `seq` is a fatal protocol error.
    pub fn submit_incremental(
        &self,
        seq: u64,
        spectra: Vec<Spectrum>,
    ) -> Result<IncrementalAckFrame, JobError> {
        let mut guard = self.owned()?;
        let state = &mut *guard;
        let slot = state.session.as_mut().expect("owned session");
        if let Some(ack) = &slot.last_ack {
            if ack.seq == seq {
                return Ok(ack.clone());
            }
        }
        if seq != slot.next_seq {
            return Err(state_error(format!(
                "out-of-order installment seq {seq} (expected {})",
                slot.next_seq
            )));
        }
        let dataset = SpectrumDataset::from_spectra(spectra);
        let outcome = state
            .engine
            .run_incremental(&mut state.store, &dataset)
            .map_err(|e| store_error(&e))?;
        let stats = outcome.stats();
        let ack = IncrementalAckFrame {
            name: self.entry.name.clone(),
            seq,
            base_id: outcome.base_id(),
            kept: outcome.kept().iter().map(|&i| i as u32).collect(),
            labels: outcome
                .installment_labels()
                .iter()
                .map(|&l| l as u64)
                .collect(),
            absorbed: stats.absorbed as u64,
            residual: stats.residual as u64,
            new_clusters: stats.new_clusters as u64,
            total_spectra: state.store.next_spectrum_id(),
            total_clusters: state.store.num_clusters() as u64,
        };
        state.dirty = true;
        let slot = state.session.as_mut().expect("owned session");
        slot.last_ack = Some(ack.clone());
        slot.next_seq = seq + 1;
        Ok(ack)
    }

    /// Saves the store to its backing file through the atomic
    /// durability path. Refused (fatal) when the server has no store
    /// directory; a failed save is retryable
    /// ([`ErrorCode::StoreBusy`]) and leaves any previous replica
    /// intact.
    pub fn persist(&self) -> Result<StoreAckFrame, JobError> {
        let mut guard = self.owned()?;
        let state = &mut *guard;
        let Some(path) = self.entry.path.as_deref() else {
            return Err(state_error(format!(
                "store {} cannot persist: server has no store directory",
                self.entry.name
            )));
        };
        state.store.save(path).map_err(|e| JobError {
            code: ErrorCode::StoreBusy,
            message: format!("store {} save failed: {e}", self.entry.name),
        })?;
        state.dirty = false;
        Ok(self.ack(state, 1, 0, 0))
    }

    /// A point-in-time snapshot of the store's shape and session state.
    pub fn stats(&self) -> Result<StoreAckFrame, JobError> {
        let guard = self.owned()?;
        Ok(self.ack(&guard, 0, 0, 0))
    }

    /// Runs the medoid refresh / compaction pass
    /// ([`SpecHd::refresh_store`]) on the store. Sits outside the
    /// stable-label contract: labels may merge. Refused (fatal) on a
    /// store loaded without member rows.
    pub fn refresh(&self) -> Result<StoreAckFrame, JobError> {
        let mut guard = self.owned()?;
        let state = &mut *guard;
        let report = state
            .engine
            .refresh_store(&mut state.store)
            .map_err(|e| store_error(&e))?;
        if report.refreshed > 0 || report.merged > 0 {
            state.dirty = true;
        }
        Ok(self.ack(state, 0, report.refreshed, report.merged))
    }

    fn ack(&self, state: &StoreState, persisted: u8, refreshed: u64, merged: u64) -> StoreAckFrame {
        StoreAckFrame {
            name: self.entry.name.clone(),
            dim: state.store.dim() as u32,
            fingerprint: state.store.fingerprint(),
            spectra: state.store.next_spectrum_id(),
            buckets: state.store.num_buckets() as u64,
            clusters: state.store.num_clusters() as u64,
            keeps_member_rows: u8::from(state.store.keeps_member_rows()),
            dirty: u8::from(state.dirty),
            persisted,
            refreshed,
            merged,
        }
    }

    /// Releases the slot: immediately when the grace is zero, otherwise
    /// after a grace timer that a rejoin (epoch bump) supersedes.
    fn detach(&self) {
        let mut state = self.entry.lock();
        let Some(slot) = state.session.as_mut() else {
            return;
        };
        if slot.client_id != self.client_id || slot.epoch != self.epoch {
            // Stolen by a newer connection; nothing left to release.
            return;
        }
        slot.attached = false;
        if self.entry.rejoin_grace.is_zero() {
            state.session = None;
            return;
        }
        let epoch = slot.epoch;
        let client_id = self.client_id;
        drop(state);
        let entry = Arc::clone(&self.entry);
        // Detached grace timer; superseded by a rejoin (epoch bump).
        let _ = std::thread::Builder::new()
            .name(format!("spechd-store-{}-grace", entry.name))
            .spawn(move || {
                std::thread::sleep(entry.rejoin_grace);
                let mut state = entry.lock();
                let expired = state
                    .session
                    .as_ref()
                    .is_some_and(|s| s.client_id == client_id && s.epoch == epoch && !s.attached);
                if expired {
                    state.session = None;
                }
            });
    }
}

impl Drop for StoreSessionHandle {
    fn drop(&mut self) {
        self.detach();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn spectra(n: usize, seed: u64) -> Vec<Spectrum> {
        let dataset = SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: (n / 3).max(2),
            seed,
            ..SyntheticConfig::default()
        })
        .generate();
        dataset.spectra().to_vec()
    }

    fn registry(dir: Option<PathBuf>) -> StoreRegistry {
        StoreRegistry::new(dir, Duration::ZERO, 8)
    }

    #[test]
    fn exclusive_session_busy_then_free_after_drop() {
        let reg = registry(None);
        let config = JobConfig::default();
        let h1 = reg.open("a", 1, &config).expect("first open");
        let busy = reg.open("a", 2, &config).expect_err("second client");
        assert_eq!(busy.code, ErrorCode::StoreBusy);
        assert!(busy.code.is_retryable());
        drop(h1);
        // Zero grace: the drop freed the slot immediately.
        reg.open("a", 2, &config).expect("open after release");
    }

    #[test]
    fn same_client_rejoin_resumes_sequence_and_reack() {
        let reg = registry(None);
        let config = JobConfig::default();
        let h1 = reg.open("a", 7, &config).expect("open");
        let ack0 = h1.submit_incremental(0, spectra(12, 1)).expect("seq 0");
        // Steal: same client re-opens while h1 still reads attached.
        let h2 = reg.open("a", 7, &config).expect("rejoin");
        // The zombie handle is superseded.
        let err = h1.submit_incremental(1, vec![]).expect_err("zombie");
        assert_eq!(err.code, ErrorCode::ProtocolState);
        // The duplicate seq is re-acked verbatim, not re-ingested.
        let replay = h2.submit_incremental(0, vec![]).expect("dup re-ack");
        assert_eq!(replay, ack0);
        // And the stream continues where it left off.
        let ack1 = h2.submit_incremental(1, spectra(8, 2)).expect("seq 1");
        assert_eq!(ack1.base_id, ack0.total_spectra);
        // Zombie drop must not free the live session.
        drop(h1);
        h2.stats().expect("session still live after zombie drop");
    }

    #[test]
    fn out_of_order_seq_is_fatal() {
        let reg = registry(None);
        let h = reg.open("a", 1, &JobConfig::default()).expect("open");
        let err = h.submit_incremental(3, spectra(4, 3)).expect_err("gap");
        assert_eq!(err.code, ErrorCode::ProtocolState);
        assert!(err.message.contains("out-of-order"));
    }

    #[test]
    fn config_mismatch_is_refused() {
        let reg = registry(None);
        let config = JobConfig::default();
        let _h = reg.open("a", 1, &config).expect("open");
        drop(_h);
        let other = JobConfig {
            resolution: config.resolution * 2.0,
            ..config
        };
        let err = reg.open("a", 1, &other).expect_err("other config");
        assert_eq!(err.code, ErrorCode::ConfigMismatch);
    }

    #[test]
    fn memory_only_store_refuses_persist() {
        let reg = registry(None);
        let h = reg.open("a", 1, &JobConfig::default()).expect("open");
        let err = h.persist().expect_err("no store dir");
        assert_eq!(err.code, ErrorCode::ProtocolState);
        assert!(err.message.contains("store directory"));
    }

    #[test]
    fn persist_then_reload_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "spechd-store-reg-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let config = JobConfig::default();
        let ack = {
            let reg = registry(Some(dir.clone()));
            let h = reg.open("pers", 9, &config).expect("open");
            h.submit_incremental(0, spectra(20, 4)).expect("ingest");
            let ack = h.persist().expect("persist");
            assert_eq!(ack.persisted, 1);
            assert_eq!(ack.dirty, 0);
            ack
        };
        // A fresh registry (server restart) loads the persisted file.
        let reg = registry(Some(dir.clone()));
        let h = reg.open("pers", 9, &config).expect("reopen");
        let stats = h.stats().expect("stats");
        assert_eq!(stats.spectra, ack.spectra);
        assert_eq!(stats.clusters, ack.clusters);
        assert_eq!(stats.fingerprint, ack.fingerprint);
        assert_eq!(stats.keeps_member_rows, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_reports_counts_and_marks_dirty() {
        let reg = registry(None);
        let h = reg.open("a", 1, &JobConfig::default()).expect("open");
        h.submit_incremental(0, spectra(30, 5)).expect("ingest");
        let ack = h.refresh().expect("refresh");
        // Counters are whatever the pass found; the frame carries them.
        let stats = h.stats().expect("stats");
        assert_eq!(stats.clusters + ack.merged, ack.clusters + ack.merged);
    }

    #[test]
    fn store_cap_sheds_with_retryable_busy() {
        let reg = StoreRegistry::new(None, Duration::ZERO, 1);
        let config = JobConfig::default();
        let _h = reg.open("a", 1, &config).expect("first store");
        let err = reg.open("b", 2, &config).expect_err("cap");
        assert_eq!(err.code, ErrorCode::StoreBusy);
    }
}
