//! Every decode-time cap of the wire protocol, in one place.
//!
//! The protocol refuses hostile resource demands *at decode time*,
//! before anything is allocated, spawned, or locked: a count prefix, a
//! knob, or a length that exceeds its cap is a
//! [`WireError::Malformed`](crate::protocol::WireError) (or
//! [`WireError::Oversized`](crate::protocol::WireError) for the frame
//! cap) and the offending connection is closed. [`Limits`] gathers all
//! of those caps into one configurable value, surfaced through
//! [`ServerConfig`](crate::server::ServerConfig) and threaded into
//! [`decode_payload`](crate::protocol::decode_payload) /
//! [`read_frame`](crate::protocol::read_frame) — the *only* enforcement
//! points, so raising or lowering a cap in one place changes every code
//! path uniformly. The `MAX_*` constants are the documented defaults
//! ([`Limits::default`]); they are what both bundled clients assume.
//!
//! | cap | default | guards against |
//! |---|---|---|
//! | [`Limits::max_frame_len`] | [`DEFAULT_MAX_FRAME_LEN`] | a 4 GiB length prefix becoming an allocation |
//! | [`Limits::max_workers`] | [`MAX_WORKERS`] | one `OpenJob` demanding billions of threads |
//! | [`Limits::max_watermark`] | [`MAX_WATERMARK`] | unbounded shard buffers |
//! | [`Limits::max_library_batch`] | [`MAX_LIBRARY_BATCH`] | a hostile entry-count prefix |
//! | [`Limits::max_query_batch`] | [`MAX_QUERY_BATCH`] | one frame demanding unbounded scans |
//! | [`Limits::max_top_k`] | [`MAX_TOP_K`] | unbounded per-query result memory |
//! | [`Limits::max_search_window_da`] | [`MAX_SEARCH_WINDOW_DA`] | a meaningless `inf`-wide window |
//! | [`Limits::max_store_name_len`] | [`MAX_STORE_NAME_LEN`] | unbounded store names (they become file names) |
//! | [`Limits::max_incremental_batch`] | [`MAX_INCREMENTAL_BATCH`] | one `SubmitIncremental` holding the store lock for an unbounded installment |

/// Default cap on a frame's payload length: 32 MiB. At ~16 bytes per
/// peak this is roughly 40k spectra of 50 peaks in one `Submit` — far
/// above any sane batch, far below an OOM.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;
/// Default cap on `JobConfig::workers` accepted over the wire (0 = all
/// cores available on the server is still allowed). A worker count is a
/// thread count: without this cap a single well-formed `OpenJob` frame
/// could demand billions of pipeline threads.
pub const MAX_WORKERS: u32 = 64;
/// Default cap on `JobConfig::watermark` accepted over the wire, in
/// spectra per open shard. 0 — the core pipeline's "flush only at shard
/// close" mode — is also rejected: over the network it would let a
/// client make every shard buffer grow without bound.
pub const MAX_WATERMARK: u32 = 1 << 20;
/// Default cap on library entries per `LoadLibrary` frame. Checked at
/// decode time *before* any allocation: a hostile count prefix is
/// rejected without reserving a single entry. Larger libraries ship as
/// multiple frames.
pub const MAX_LIBRARY_BATCH: u32 = 65_536;
/// Default cap on queries per `SearchQuery` frame, checked at decode
/// time before allocation. Each query fans out into a windowed scan of
/// the library, so this also bounds the work one frame can demand.
pub const MAX_QUERY_BATCH: u32 = 4096;
/// Default cap on `SearchQuery::top_k`: hits kept (and sent back) per
/// query. `top_k = 0` is also rejected — it would make a search a no-op.
pub const MAX_TOP_K: u32 = 1024;
/// Default cap on `SearchQuery::window_da` in Dalton. Open-modification
/// searches use windows of a few hundred Dalton; 10⁴ already admits any
/// practical library slice, and capping it keeps a hostile `inf`/huge
/// window from being meaningful.
pub const MAX_SEARCH_WINDOW_DA: f64 = 10_000.0;
/// Default cap on a store name's length in bytes. Store names become
/// server-side file names (`<store_dir>/<name>.shpk`), so they are also
/// restricted to `[A-Za-z0-9_-]` at decode time — no separators, no
/// dots, no traversal.
pub const MAX_STORE_NAME_LEN: u32 = 64;
/// Default cap on spectra per `SubmitIncremental` frame. Incremental
/// installments run synchronously under the store-session lock, so this
/// bounds how long one frame can hold it; larger installments ship as
/// multiple sequence-numbered frames.
pub const MAX_INCREMENTAL_BATCH: u32 = 65_536;

/// The full set of decode-time caps, threaded into
/// [`decode_payload`](crate::protocol::decode_payload) and
/// [`read_frame`](crate::protocol::read_frame). [`Limits::default`]
/// mirrors the documented `MAX_*` constants; servers expose the value
/// through [`ServerConfig`](crate::server::ServerConfig) so every cap
/// is configurable without touching the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Limits {
    /// Cap on a frame's payload length in bytes; longer frames are
    /// rejected from the header alone
    /// ([`WireError::Oversized`](crate::protocol::WireError)).
    pub max_frame_len: u32,
    /// Cap on `JobConfig::workers` (0 = server default stays allowed).
    pub max_workers: u32,
    /// Cap on `JobConfig::watermark`; 0 is always rejected.
    pub max_watermark: u32,
    /// Cap on library entries per `LoadLibrary` frame.
    pub max_library_batch: u32,
    /// Cap on queries per `SearchQuery` frame.
    pub max_query_batch: u32,
    /// Cap on hits kept per query; 0 is always rejected.
    pub max_top_k: u32,
    /// Cap on the search window half-width in Dalton.
    pub max_search_window_da: f64,
    /// Cap on store-name length in bytes; the `[A-Za-z0-9_-]` alphabet
    /// and non-emptiness are enforced unconditionally.
    pub max_store_name_len: u32,
    /// Cap on spectra per `SubmitIncremental` frame.
    pub max_incremental_batch: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_workers: MAX_WORKERS,
            max_watermark: MAX_WATERMARK,
            max_library_batch: MAX_LIBRARY_BATCH,
            max_query_batch: MAX_QUERY_BATCH,
            max_top_k: MAX_TOP_K,
            max_search_window_da: MAX_SEARCH_WINDOW_DA,
            max_store_name_len: MAX_STORE_NAME_LEN,
            max_incremental_batch: MAX_INCREMENTAL_BATCH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_payload, encode_payload, Frame, FrameType, JobConfig, QueryWire, WireError,
    };
    use spechd_ms::{Peak, Precursor, Spectrum};

    fn spectrum() -> Spectrum {
        Spectrum::new(
            "s",
            Precursor::new(500.0, 2).unwrap(),
            vec![Peak::new(200.0, 1.0)],
        )
        .unwrap()
    }

    fn open_job(workers: u32, watermark: u32) -> Frame {
        Frame::OpenJob {
            job_id: 1,
            client_id: 7,
            config: JobConfig {
                workers,
                watermark,
                ..JobConfig::default()
            },
        }
    }

    fn search(window_da: f64, top_k: u32, queries: usize) -> Frame {
        Frame::SearchQuery {
            job_id: 1,
            dim: 64,
            window_da,
            top_k,
            queries: vec![
                QueryWire {
                    mass: 900.0,
                    words: vec![42],
                };
                queries
            ],
        }
    }

    /// Every configurable cap, exercised from one table: each row names
    /// the limit, a `Limits` value with that cap tightened, a frame
    /// sitting exactly at the tightened cap (must decode), and a frame
    /// one past it (must be rejected). This is the single enforcement
    /// test the scattered per-cap tests used to be.
    #[test]
    fn every_cap_is_enforced_from_its_limits_field() {
        let tighten = |f: fn(&mut Limits)| {
            let mut l = Limits::default();
            f(&mut l);
            l
        };
        let table: Vec<(&str, Limits, Frame, Frame)> = vec![
            (
                "max_workers",
                tighten(|l| l.max_workers = 3),
                open_job(3, 16),
                open_job(4, 16),
            ),
            (
                "max_watermark",
                tighten(|l| l.max_watermark = 5),
                open_job(0, 5),
                open_job(0, 6),
            ),
            (
                "max_library_batch",
                tighten(|l| l.max_library_batch = 0),
                Frame::LoadLibrary {
                    job_id: 1,
                    dim: 64,
                    entries: Vec::new(),
                },
                Frame::LoadLibrary {
                    job_id: 1,
                    dim: 64,
                    entries: vec![crate::protocol::LibraryEntryWire {
                        mass: 900.0,
                        charge: 2,
                        is_decoy: false,
                        id: "x".into(),
                        words: vec![1],
                    }],
                },
            ),
            (
                "max_query_batch",
                tighten(|l| l.max_query_batch = 1),
                search(1.0, 1, 1),
                search(1.0, 1, 2),
            ),
            (
                "max_top_k",
                tighten(|l| l.max_top_k = 2),
                search(1.0, 2, 1),
                search(1.0, 3, 1),
            ),
            (
                "max_search_window_da",
                tighten(|l| l.max_search_window_da = 10.0),
                search(10.0, 1, 1),
                search(10.5, 1, 1),
            ),
            (
                "max_store_name_len",
                tighten(|l| l.max_store_name_len = 2),
                Frame::StoreStats { name: "ab".into() },
                Frame::StoreStats { name: "abc".into() },
            ),
            (
                "max_incremental_batch",
                tighten(|l| l.max_incremental_batch = 1),
                Frame::SubmitIncremental {
                    name: "s".into(),
                    seq: 0,
                    spectra: vec![spectrum()],
                },
                Frame::SubmitIncremental {
                    name: "s".into(),
                    seq: 0,
                    spectra: vec![spectrum(), spectrum()],
                },
            ),
        ];
        for (limit, limits, at_cap, past_cap) in table {
            let frame_type = |f: &Frame| match f {
                Frame::OpenJob { .. } => FrameType::OpenJob,
                Frame::LoadLibrary { .. } => FrameType::LoadLibrary,
                Frame::SearchQuery { .. } => FrameType::SearchQuery,
                Frame::StoreStats { .. } => FrameType::StoreStats,
                Frame::SubmitIncremental { .. } => FrameType::SubmitIncremental,
                other => panic!("unexpected table frame {other:?}"),
            };
            assert_eq!(
                decode_payload(frame_type(&at_cap), &encode_payload(&at_cap), &limits)
                    .unwrap_or_else(|e| panic!("{limit}: at-cap frame rejected: {e}")),
                at_cap,
                "{limit}: at-cap frame must decode"
            );
            assert!(
                matches!(
                    decode_payload(frame_type(&past_cap), &encode_payload(&past_cap), &limits),
                    Err(WireError::Malformed(_))
                ),
                "{limit}: past-cap frame must be rejected"
            );
            // The same past-cap frame decodes under the defaults —
            // proving the rejection came from the tightened field, not
            // some other validation.
            assert!(
                decode_payload(
                    frame_type(&past_cap),
                    &encode_payload(&past_cap),
                    &Limits::default()
                )
                .is_ok(),
                "{limit}: past-cap frame must pass under defaults"
            );
        }
    }

    #[test]
    fn defaults_mirror_the_documented_constants() {
        let l = Limits::default();
        assert_eq!(l.max_frame_len, DEFAULT_MAX_FRAME_LEN);
        assert_eq!(l.max_workers, MAX_WORKERS);
        assert_eq!(l.max_watermark, MAX_WATERMARK);
        assert_eq!(l.max_library_batch, MAX_LIBRARY_BATCH);
        assert_eq!(l.max_query_batch, MAX_QUERY_BATCH);
        assert_eq!(l.max_top_k, MAX_TOP_K);
        assert_eq!(l.max_search_window_da, MAX_SEARCH_WINDOW_DA);
        assert_eq!(l.max_store_name_len, MAX_STORE_NAME_LEN);
        assert_eq!(l.max_incremental_batch, MAX_INCREMENTAL_BATCH);
    }
}
