//! A blocking client for the `spechd` protocol.
//!
//! [`Connection`] is the shared transport: it owns the TCP socket pair
//! (buffered writer + cloned reader), the frame codec under the shared
//! [`Limits`] table, and the error-frame-to-[`ClientError`] translation
//! every client needs. The three job-flavored clients are thin state
//! machines over it, sharing one connect-with-[`RetryPolicy`] entry
//! point and one error surface:
//!
//! * [`JobClient`] wraps one connection participating in one clustering
//!   job. Submission is acknowledged per batch (the ack carries the
//!   batch's base stream index, so a participant knows exactly which
//!   stream slots its spectra occupy); result frames arriving in between
//!   are absorbed into an [`AssignmentAssembler`], and
//!   [`JobClient::close_and_wait`] turns them into a [`ServiceOutcome`]
//!   once the job's final frame lands.
//! * [`SearchClient`] is the search-job counterpart: library batches are
//!   acknowledged per `LoadLibrary` frame, and each
//!   [`SearchClient::search`] call sends the queries (chunked under the
//!   wire cap), collects the per-query [`Frame::SearchHit`]s, and returns
//!   once the batch's closing [`Frame::SearchStats`] lands.
//! * [`StoreClient`] holds the exclusive write session on a named
//!   server-side cluster store: sequence-numbered incremental
//!   installments ([`StoreClient::submit_incremental`]), plus the
//!   `persist` / `stats` / `refresh` admin round trips, each
//!   acknowledged by a [`StoreAckFrame`] snapshot.
//!
//! ## Failure handling
//!
//! Every failure a client can see is classified by
//! [`ClientError::is_retryable`]: connection-level faults (the socket
//! died, the peer hung up) and server frames in the retryable code range
//! ([`ErrorCode::is_retryable`], e.g. [`ErrorCode::Busy`] load shedding)
//! may be retried; protocol violations and fatal server errors must not
//! be. Both clients accept a [`RetryPolicy`] — deterministic bounded
//! exponential backoff — and, when one is set, transparently reconnect
//! and resume:
//!
//! * A [`JobClient`] identifies itself to the server with a `client_id`
//!   that outlives its TCP connection and sequence-numbers its submits,
//!   so a reconnect re-opens the same job slot, re-sends only the
//!   unacknowledged batch (a duplicate is recognized server-side and
//!   re-acked, never re-ingested), and absorbs the server's replay of
//!   any result frames that were in flight when the connection died —
//!   the assembled [`ServiceOutcome`] is bit-identical to an undisturbed
//!   run.
//! * A [`SearchClient`] retries its connect handshake and its query
//!   batches (scoring is read-only, hence idempotent); library loads are
//!   **not** retried, because a load whose ack was lost may or may not
//!   have been applied and re-sending it could double-load entries.
//! * A [`StoreClient`] reconnects by re-sending `OpenStore` with the
//!   same `client_id` — resuming its exclusive session — and re-sends
//!   the unacknowledged installment under its original sequence number,
//!   which the server re-acks without re-ingesting. The admin round
//!   trips are idempotent and freely retried.

use crate::assemble::{AssignmentAssembler, ServiceOutcome};
use crate::limits::Limits;
use crate::protocol::{
    check_store_name, read_frame, write_frame, ErrorCode, Frame, HitWire, IncrementalAckFrame,
    JobConfig, JobStatsFrame, LibraryEntryWire, QueryWire, SearchStatsFrame, StoreAckFrame,
    WireError, MAX_INCREMENTAL_BATCH, MAX_LIBRARY_BATCH, MAX_QUERY_BATCH,
};
use spechd_ms::Spectrum;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or frame layer failed.
    Wire(WireError),
    /// The server reported an error frame.
    Server {
        /// Wire error code.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl ClientError {
    /// Whether retrying the failed operation can possibly succeed.
    ///
    /// Transport faults (`Wire(Io)` / `Wire(Closed)` / `Wire(Truncated)`
    /// — a connection killed mid-frame surfaces as a truncated read) are
    /// retryable: the connection died, but a reconnect may find the
    /// server healthy. Server error frames defer to the wire contract:
    /// [`ErrorCode::is_retryable`] (transient conditions such as
    /// [`ErrorCode::Busy`] load shedding). Everything else — malformed
    /// frames, protocol violations, config mismatches — is a bug or a
    /// genuine rejection, and retrying would only repeat it.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Wire(WireError::Io(_) | WireError::Closed | WireError::Truncated(_)) => {
                true
            }
            ClientError::Wire(_) => false,
            ClientError::Server { code, .. } => code.is_retryable(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Deterministic bounded-exponential-backoff retry schedule.
///
/// Attempt *n* (1-based) sleeps `base_delay × 2ⁿ⁻¹`, capped at
/// `max_delay`, before retrying; after `max_retries` failed retries the
/// last error is returned. The schedule is a pure function of the
/// attempt number — no jitter, no clocks — so tests exercising retry
/// paths are exactly reproducible. [`RetryPolicy::none`] (zero retries)
/// disables retrying entirely; it is the default for
/// [`JobClient::connect`] / [`SearchClient::connect`], which preserve
/// fail-fast semantics unless a policy is opted into via the
/// `connect_with` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a failed operation is retried (0 = never).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// No retries: every failure is returned immediately.
    pub const fn none() -> Self {
        Self {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Whether this policy retries at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The backoff before retry `attempt` (1-based):
    /// `base_delay × 2^(attempt-1)`, capped at `max_delay`.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        self.base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay)
    }

    /// One step of the shared retry loop every client runs: if `err` is
    /// retryable and the attempt budget is not exhausted, consumes one
    /// attempt, sleeps its backoff, and returns `true` (caller retries);
    /// otherwise returns `false` (caller surfaces the error).
    pub fn backoff(&self, err: &ClientError, attempt: &mut u32) -> bool {
        if err.is_retryable() && *attempt < self.max_retries {
            *attempt += 1;
            std::thread::sleep(self.delay_for(*attempt));
            true
        } else {
            false
        }
    }
}

impl Default for RetryPolicy {
    /// Six retries starting at 25 ms, capped at 800 ms — under two
    /// seconds of total backoff, enough to ride out a server restart or
    /// a transient [`ErrorCode::Busy`] without hiding a real outage.
    fn default() -> Self {
        Self {
            max_retries: 6,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(800),
        }
    }
}

/// A process-unique-ish participant id for clients that did not choose
/// one: a hash of wall clock, pid, and a process-global counter. Two
/// *concurrent* participants of one job must not share a `client_id`
/// (the server binds a job slot to it); explicit ids belong to callers
/// that want deterministic resume identities across process restarts.
fn default_client_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [nanos, pid, n] {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn resolve(addr: impl ToSocketAddrs) -> Result<Vec<SocketAddr>, ClientError> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(ClientError::Wire(WireError::Io(std::io::Error::other(
            "address resolved to no socket addresses",
        ))));
    }
    Ok(addrs)
}

/// The one connect loop every client goes through: open a
/// [`Connection`], run the client-specific `handshake` on it, and on a
/// retryable failure back off under `retry` and start over with a fresh
/// connection.
fn connect_retry<T>(
    addrs: &[SocketAddr],
    retry: RetryPolicy,
    mut handshake: impl FnMut(Connection) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut attempt = 0u32;
    loop {
        match Connection::open(addrs).and_then(&mut handshake) {
            Ok(client) => return Ok(client),
            Err(e) if retry.backoff(&e, &mut attempt) => {}
            Err(e) => return Err(e),
        }
    }
}

/// One established client connection: socket pair, frame codec, and the
/// server-error translation shared by every protocol client.
///
/// [`JobClient`] and [`SearchClient`] each wrap one of these with their
/// job-flavored handshake and state machine; custom tooling (load
/// generators, protocol probes) can drive a raw `Connection` directly.
pub struct Connection {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    limits: Limits,
}

impl Connection {
    /// Opens a TCP connection to `addr` (Nagle disabled, inbound frames
    /// decoded under [`Limits::default`]). No protocol traffic is
    /// exchanged — job handshakes belong to the clients layered on top.
    pub fn open(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::open_with(addr, Limits::default())
    }

    /// [`Connection::open`] with an explicit decode-cap table, for
    /// clients talking to a server configured with non-default
    /// [`Limits`].
    pub fn open_with(addr: impl ToSocketAddrs, limits: Limits) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            limits,
        })
    }

    /// Writes one frame and flushes it to the wire.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        use std::io::Write;
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame, turning server `Error` frames into
    /// [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader, &self.limits)? {
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            frame => Ok(frame),
        }
    }
}

/// Acknowledgement of one submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// First stream index assigned to the batch; its spectra occupy
    /// `[base, base + count)` in submission order.
    pub base: u64,
    /// Number of spectra acknowledged.
    pub count: u32,
}

/// One connection participating in one clustering job.
///
/// The client is identified to the server by its `client_id`, not its
/// TCP connection: with a [`RetryPolicy`] set (see
/// [`JobClient::connect_with`]) a dead connection is transparently
/// re-opened, the job re-joined, the in-flight batch re-sent (the
/// sequence number makes the server treat a duplicate as a re-ack, not
/// a re-ingest), and replayed result frames absorbed idempotently — so
/// the final [`ServiceOutcome`] is bit-identical to an undisturbed run.
pub struct JobClient {
    conn: Connection,
    addrs: Vec<SocketAddr>,
    job_id: u64,
    client_id: u64,
    config: JobConfig,
    retry: RetryPolicy,
    next_seq: u64,
    close_sent: bool,
    reconnects: u64,
    assembler: AssignmentAssembler,
}

impl JobClient {
    /// Connects to `addr` and opens (or joins) `job_id` with `config`,
    /// returning once the server acknowledges. No retries: any failure
    /// — including a retryable one — is returned immediately. Use
    /// [`JobClient::connect_with`] for resilience.
    pub fn connect(
        addr: impl ToSocketAddrs,
        job_id: u64,
        config: JobConfig,
    ) -> Result<Self, ClientError> {
        Self::connect_with(
            addr,
            job_id,
            config,
            default_client_id(),
            RetryPolicy::none(),
        )
    }

    /// Connects with an explicit participant identity and retry policy.
    ///
    /// `client_id` names this participant's slot in the job across
    /// connections — a reconnect presenting the same id resumes where
    /// the old connection left off. Concurrent participants of one job
    /// must use distinct ids. The connect itself honors `retry` (a
    /// server shedding load with [`ErrorCode::Busy`] is retried after
    /// backoff), as do all subsequent operations on the client.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        job_id: u64,
        config: JobConfig,
        client_id: u64,
        retry: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let addrs = resolve(addr)?;
        connect_retry(&addrs, retry, |conn| {
            let mut client = Self {
                conn,
                addrs: addrs.clone(),
                job_id,
                client_id,
                config: config.clone(),
                retry,
                next_seq: 0,
                close_sent: false,
                reconnects: 0,
                assembler: AssignmentAssembler::new(),
            };
            client.conn.send(&Frame::OpenJob {
                job_id,
                client_id,
                config: config.clone(),
            })?;
            client.wait_stats()?;
            Ok(client)
        })
    }

    /// The job this connection participates in.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The participant identity this client presents to the server.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// How many times this client has reconnected and resumed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Submits a batch and blocks until its acknowledgement, returning
    /// the batch's stream-index range. Result frames that arrive before
    /// the ack are absorbed, not lost. With a retry policy set, a
    /// connection failure reconnects and re-sends the batch under the
    /// same sequence number — if the original made it through and only
    /// the ack was lost, the server re-acks without re-ingesting, so
    /// retries never duplicate spectra in the stream.
    pub fn submit(&mut self, spectra: Vec<Spectrum>) -> Result<SubmitReceipt, ClientError> {
        let seq = self.next_seq;
        if !self.retry.enabled() {
            self.conn.send(&Frame::Submit {
                job_id: self.job_id,
                seq,
                spectra,
            })?;
            let receipt = self.await_submit_ack(seq)?;
            self.next_seq += 1;
            return Ok(receipt);
        }
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .conn
                .send(&Frame::Submit {
                    job_id: self.job_id,
                    seq,
                    spectra: spectra.clone(),
                })
                .and_then(|()| self.await_submit_ack(seq));
            match outcome {
                Ok(receipt) => {
                    self.next_seq += 1;
                    return Ok(receipt);
                }
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    // If recovery fails, the stale connection makes the
                    // next attempt fail fast and consume another retry.
                    let _ = self.recover();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Barrier: returns a statistics snapshot taken after the server
    /// has ingested every frame this connection sent before the flush.
    /// Idempotent, so freely retried under the policy.
    pub fn flush(&mut self) -> Result<JobStatsFrame, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .conn
                .send(&Frame::Flush {
                    job_id: self.job_id,
                })
                .and_then(|()| self.wait_stats());
            match outcome {
                Ok(stats) => return Ok(stats),
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    let _ = self.recover();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Declares this participant done submitting and waits for the
    /// job's results: blocks until the final `done` frame, then
    /// reassembles the global clustering. The job finalizes once
    /// **every** participant has closed. With a retry policy set, a
    /// connection lost while waiting reconnects and rejoins — the
    /// server replays the result frames this client missed (absorbed
    /// idempotently) and the re-sent `CloseJob` is a no-op server-side.
    pub fn close_and_wait(mut self) -> Result<ServiceOutcome, ClientError> {
        self.close_sent = true;
        let mut result = self.conn.send(&Frame::CloseJob {
            job_id: self.job_id,
        });
        let mut attempt = 0u32;
        loop {
            match result {
                Ok(()) => {}
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    // recover() re-sends CloseJob; if it fails, the next
                    // recv fails fast and consumes another retry.
                    let _ = self.recover();
                    result = Ok(());
                    continue;
                }
                Err(e) => return Err(e),
            }
            if self.assembler.is_done() {
                break;
            }
            result = self.conn.recv().map(|frame| {
                attempt = 0;
                self.assembler.absorb(&frame);
            });
        }
        Ok(self.assembler.finish())
    }

    /// Re-opens the connection and resumes this participant's slot:
    /// re-sends `OpenJob` with the same `client_id` (triggering the
    /// server's result replay, absorbed by [`Self::wait_stats`]) and
    /// re-sends `CloseJob` if it was already sent on the old connection.
    fn recover(&mut self) -> Result<(), ClientError> {
        self.conn = Connection::open(&self.addrs[..])?;
        self.conn.send(&Frame::OpenJob {
            job_id: self.job_id,
            client_id: self.client_id,
            config: self.config.clone(),
        })?;
        let stats = self.wait_stats()?;
        if stats.done == 0 && stats.submitted == 0 && self.next_seq > 0 {
            // The job no longer knows us: our slot (and the job's
            // state) aged out of the server's rejoin grace, and the
            // OpenJob just created a *fresh* job. Resuming into it
            // would silently produce a wrong outcome — fail instead.
            return Err(ClientError::Wire(WireError::Malformed(format!(
                "resume failed: job {} no longer holds this client's state \
                 (rejoin grace elapsed?)",
                self.job_id
            ))));
        }
        if self.close_sent {
            self.conn.send(&Frame::CloseJob {
                job_id: self.job_id,
            })?;
        }
        self.reconnects += 1;
        Ok(())
    }

    /// Reads until the matching `SubmitAck`, absorbing result frames
    /// seen on the way.
    fn await_submit_ack(&mut self, seq: u64) -> Result<SubmitReceipt, ClientError> {
        loop {
            match self.conn.recv()? {
                Frame::SubmitAck {
                    seq: ack_seq,
                    base,
                    count,
                    ..
                } => {
                    if ack_seq != seq {
                        return Err(ClientError::Wire(WireError::Malformed(format!(
                            "submit ack for seq {ack_seq}, expected {seq}"
                        ))));
                    }
                    return Ok(SubmitReceipt { base, count });
                }
                other => self.assembler.absorb(&other),
            }
        }
    }

    /// Reads until a `JobStats` frame (an open/flush ack), absorbing
    /// result frames seen on the way.
    fn wait_stats(&mut self) -> Result<JobStatsFrame, ClientError> {
        loop {
            match self.conn.recv()? {
                Frame::JobStats(stats) => {
                    if stats.done != 0 {
                        self.assembler.absorb(&Frame::JobStats(stats));
                    }
                    return Ok(stats);
                }
                other => self.assembler.absorb(&other),
            }
        }
    }
}

/// One query's results from [`SearchClient::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHits {
    /// Job-global index the server assigned to the query.
    pub query_index: u64,
    /// The hits, best first (ascending `(distance, library_index)`).
    pub hits: Vec<HitWire>,
}

/// One connection participating in one search job.
pub struct SearchClient {
    conn: Connection,
    addrs: Vec<SocketAddr>,
    job_id: u64,
    dim: u32,
    retry: RetryPolicy,
    reconnects: u64,
}

impl SearchClient {
    /// Connects to `addr` and opens (or joins) search job `job_id` with
    /// dimensionality `dim`, returning once the server acknowledges
    /// (an empty `LoadLibrary` is the join handshake — it fails fast on
    /// a dim mismatch or an already-sealed job). No retries; see
    /// [`SearchClient::connect_with`].
    pub fn connect(addr: impl ToSocketAddrs, job_id: u64, dim: u32) -> Result<Self, ClientError> {
        Self::connect_with(addr, job_id, dim, RetryPolicy::none())
    }

    /// Connects with a retry policy: the handshake and every
    /// [`SearchClient::search`] call retry retryable failures
    /// (reconnecting first), since joining and querying are idempotent.
    /// [`SearchClient::load`] never retries — see its docs.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        job_id: u64,
        dim: u32,
        retry: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let addrs = resolve(addr)?;
        connect_retry(&addrs, retry, |conn| {
            let mut client = Self {
                conn,
                addrs: addrs.clone(),
                job_id,
                dim,
                retry,
                reconnects: 0,
            };
            client.conn.send(&Frame::LoadLibrary {
                job_id,
                dim,
                entries: Vec::new(),
            })?;
            client.wait_stats()?;
            Ok(client)
        })
    }

    /// The search job this connection participates in.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The job's hypervector dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// How many times this client has reconnected.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Loads entries into the job's library, chunked under the wire's
    /// per-frame cap; each chunk is acknowledged before the next is
    /// sent. Returns the post-load statistics snapshot. Fails once the
    /// library is sealed (a query was served).
    ///
    /// Loads are **never retried**, even with a retry policy set: if
    /// the connection dies between sending a chunk and reading its ack
    /// there is no way to know whether the chunk was applied, and
    /// re-sending it could load the entries twice (loads are not
    /// idempotent, unlike queries). Callers that lose a load should
    /// restart the search job under a fresh `job_id`.
    pub fn load(&mut self, entries: &[LibraryEntryWire]) -> Result<SearchStatsFrame, ClientError> {
        if entries.is_empty() {
            // An empty load is still a valid stats probe.
            self.conn.send(&Frame::LoadLibrary {
                job_id: self.job_id,
                dim: self.dim,
                entries: Vec::new(),
            })?;
            return self.wait_stats();
        }
        let mut stats = SearchStatsFrame::default();
        for chunk in entries.chunks(MAX_LIBRARY_BATCH as usize) {
            self.conn.send(&Frame::LoadLibrary {
                job_id: self.job_id,
                dim: self.dim,
                entries: chunk.to_vec(),
            })?;
            stats = self.wait_stats()?;
        }
        Ok(stats)
    }

    /// Scores `queries` against the job's library (sealing it on the
    /// job's first query), returning each query's hits in submission
    /// order plus the post-batch statistics snapshot. Queries are
    /// chunked under the wire's per-frame cap; each chunk's hit frames
    /// are collected up to their closing [`Frame::SearchStats`].
    ///
    /// With a retry policy set, a chunk that fails retryably is
    /// re-scored from scratch after a reconnect (its partial hits are
    /// discarded): queries are read-only, so re-scoring returns the
    /// same hits — though the server-assigned `query_index` values may
    /// then have gaps, as abandoned attempts consumed indices.
    pub fn search(
        &mut self,
        queries: &[QueryWire],
        window_da: f64,
        top_k: u32,
    ) -> Result<(Vec<QueryHits>, SearchStatsFrame), ClientError> {
        let mut results = Vec::with_capacity(queries.len());
        let mut stats = SearchStatsFrame::default();
        let mut any = false;
        for chunk in queries.chunks(MAX_QUERY_BATCH as usize) {
            any = true;
            let (chunk_hits, chunk_stats) = self.search_chunk(chunk, window_da, top_k)?;
            results.extend(chunk_hits);
            stats = chunk_stats;
        }
        if !any {
            // Zero queries: send an empty batch so the returned stats
            // are a real (and sealing) snapshot, not a default.
            let (_, chunk_stats) = self.search_chunk(&[], window_da, top_k)?;
            stats = chunk_stats;
        }
        Ok((results, stats))
    }

    /// One chunk, with retry: on a retryable failure the partial hits
    /// are discarded, the connection re-opened (the next query frame
    /// rejoins the job), and the chunk re-sent whole.
    fn search_chunk(
        &mut self,
        chunk: &[QueryWire],
        window_da: f64,
        top_k: u32,
    ) -> Result<(Vec<QueryHits>, SearchStatsFrame), ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.search_chunk_once(chunk, window_da, top_k) {
                Ok(ok) => return Ok(ok),
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    if let Ok(conn) = Connection::open(&self.addrs[..]) {
                        self.conn = conn;
                        self.reconnects += 1;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn search_chunk_once(
        &mut self,
        chunk: &[QueryWire],
        window_da: f64,
        top_k: u32,
    ) -> Result<(Vec<QueryHits>, SearchStatsFrame), ClientError> {
        self.conn.send(&Frame::SearchQuery {
            job_id: self.job_id,
            dim: self.dim,
            window_da,
            top_k,
            queries: chunk.to_vec(),
        })?;
        let mut hits = Vec::with_capacity(chunk.len());
        loop {
            match self.conn.recv()? {
                Frame::SearchHit {
                    query_index,
                    hits: h,
                    ..
                } => hits.push(QueryHits {
                    query_index,
                    hits: h,
                }),
                Frame::SearchStats(s) => return Ok((hits, s)),
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame during search: {other:?}"
                    ))))
                }
            }
        }
    }

    /// Reads the `SearchStats` frame acknowledging a load. Search jobs
    /// never push unsolicited frames, so the ack is the next frame.
    fn wait_stats(&mut self) -> Result<SearchStatsFrame, ClientError> {
        match self.conn.recv()? {
            Frame::SearchStats(stats) => Ok(stats),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "unexpected frame while awaiting search stats: {other:?}"
            )))),
        }
    }
}

/// One connection holding the exclusive write session on a named
/// server-side cluster store.
///
/// The session is identified by `(store name, client_id)`, not the TCP
/// connection: with a [`RetryPolicy`] set (see
/// [`StoreClient::connect_with`]) a dead connection is transparently
/// re-opened and `OpenStore` re-sent with the same `client_id`, which
/// resumes the session server-side — sequence numbering continues, and
/// an installment whose ack was lost is re-sent under its original
/// sequence number and re-acked without re-ingesting. The served
/// installment stream is therefore bit-identical to a library
/// [`run_incremental`](spechd_core::SpecHd::run_incremental) loop over
/// the same installments, disconnects or not.
///
/// A store already held by a *different* client surfaces as the
/// retryable [`ErrorCode::StoreBusy`]; connecting with a policy waits
/// out short sessions via the normal backoff schedule.
pub struct StoreClient {
    conn: Connection,
    addrs: Vec<SocketAddr>,
    name: String,
    client_id: u64,
    config: JobConfig,
    retry: RetryPolicy,
    next_seq: u64,
    reconnects: u64,
    opened: StoreAckFrame,
}

impl std::fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient")
            .field("name", &self.name)
            .field("client_id", &self.client_id)
            .field("next_seq", &self.next_seq)
            .field("reconnects", &self.reconnects)
            .finish_non_exhaustive()
    }
}

impl StoreClient {
    /// Connects to `addr` and opens store `name` with `config`,
    /// returning once the server acknowledges with the store's
    /// snapshot. No retries; see [`StoreClient::connect_with`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: &str,
        config: JobConfig,
    ) -> Result<Self, ClientError> {
        Self::connect_with(addr, name, config, default_client_id(), RetryPolicy::none())
    }

    /// Connects with an explicit session identity and retry policy.
    ///
    /// `client_id` names this writer's session across connections — a
    /// reconnect presenting the same id resumes it (within the server's
    /// rejoin grace once disconnected, or immediately by stealing its
    /// own half-dead slot). Use the same id across process restarts to
    /// deterministically resume a store's installment stream.
    ///
    /// The store name is validated locally first
    /// ([`check_store_name`]), so a hostile or over-long name fails
    /// fast without a round trip.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        name: &str,
        config: JobConfig,
        client_id: u64,
        retry: RetryPolicy,
    ) -> Result<Self, ClientError> {
        check_store_name(name, &Limits::default()).map_err(ClientError::Wire)?;
        let addrs = resolve(addr)?;
        connect_retry(&addrs, retry, |mut conn| {
            conn.send(&Frame::OpenStore {
                name: name.to_string(),
                client_id,
                config: config.clone(),
            })?;
            let opened = expect_store_ack(&mut conn, name)?;
            Ok(Self {
                conn,
                addrs: addrs.clone(),
                name: name.to_string(),
                client_id,
                config: config.clone(),
                retry,
                next_seq: 0,
                reconnects: 0,
                opened,
            })
        })
    }

    /// The store this session writes to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session identity this client presents to the server.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// How many times this client has reconnected and resumed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The store snapshot the server sent when this session opened:
    /// total spectra, clusters, and whether a backing file was loaded
    /// — what a resuming client inspects to know where it left off.
    pub fn opened(&self) -> &StoreAckFrame {
        &self.opened
    }

    /// Submits one incremental installment and blocks for its ack: the
    /// kept spectrum indices, their stable labels, and the absorb
    /// statistics of exactly one server-side
    /// [`run_incremental`](spechd_core::SpecHd::run_incremental) call.
    ///
    /// One call is one installment — the wire caps an installment at
    /// [`MAX_INCREMENTAL_BATCH`] spectra, and an over-cap batch fails
    /// fast locally (installment boundaries affect clustering, so the
    /// client never splits one silently). With a retry policy set, a
    /// connection failure reconnects, resumes the session, and re-sends
    /// the installment under the same sequence number — a duplicate is
    /// re-acked server-side, never re-ingested.
    pub fn submit_incremental(
        &mut self,
        spectra: Vec<Spectrum>,
    ) -> Result<IncrementalAckFrame, ClientError> {
        if spectra.len() > MAX_INCREMENTAL_BATCH as usize {
            return Err(ClientError::Wire(WireError::Malformed(format!(
                "installment of {} spectra exceeds the wire cap {MAX_INCREMENTAL_BATCH}; \
                 submit smaller installments",
                spectra.len()
            ))));
        }
        let seq = self.next_seq;
        if !self.retry.enabled() {
            self.conn.send(&Frame::SubmitIncremental {
                name: self.name.clone(),
                seq,
                spectra,
            })?;
            let ack = self.await_incremental_ack(seq)?;
            self.next_seq += 1;
            return Ok(ack);
        }
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .conn
                .send(&Frame::SubmitIncremental {
                    name: self.name.clone(),
                    seq,
                    spectra: spectra.clone(),
                })
                .and_then(|()| self.await_incremental_ack(seq));
            match outcome {
                Ok(ack) => {
                    self.next_seq += 1;
                    return Ok(ack);
                }
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    // If recovery fails, the stale connection makes the
                    // next attempt fail fast and consume another retry.
                    let _ = self.recover();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Saves the store to its server-side backing file (the atomic
    /// crash-safe path) and returns the post-save snapshot
    /// (`persisted = 1`, `dirty = 0`). Idempotent, so freely retried; a
    /// server without a store directory refuses with a fatal error.
    pub fn persist(&mut self) -> Result<StoreAckFrame, ClientError> {
        self.admin(Frame::PersistStore {
            name: self.name.clone(),
        })
    }

    /// Returns a point-in-time snapshot of the store. Idempotent.
    pub fn stats(&mut self) -> Result<StoreAckFrame, ClientError> {
        self.admin(Frame::StoreStats {
            name: self.name.clone(),
        })
    }

    /// Runs the server-side medoid refresh / compaction pass and
    /// returns its snapshot (`refreshed` / `merged` counters). This
    /// sits **outside** the stable-label contract: clusters the pass
    /// finds within the cut threshold are merged, relabeling their
    /// members. The pass is a fixed point (refreshing twice equals
    /// refreshing once), so it is freely retried — though an ack lost
    /// to a reconnect re-runs the pass, and the re-run reports zero
    /// counters.
    pub fn refresh(&mut self) -> Result<StoreAckFrame, ClientError> {
        self.admin(Frame::RefreshStore {
            name: self.name.clone(),
        })
    }

    /// One idempotent admin round trip (persist / stats / refresh),
    /// under the shared retry-and-resume loop.
    fn admin(&mut self, frame: Frame) -> Result<StoreAckFrame, ClientError> {
        if !self.retry.enabled() {
            self.conn.send(&frame)?;
            return expect_store_ack(&mut self.conn, &self.name);
        }
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .conn
                .send(&frame)
                .and_then(|()| expect_store_ack(&mut self.conn, &self.name));
            match outcome {
                Ok(ack) => return Ok(ack),
                Err(e) if self.retry.backoff(&e, &mut attempt) => {
                    let _ = self.recover();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-opens the connection and resumes this session: re-sends
    /// `OpenStore` with the same `client_id` and refreshes the opened
    /// snapshot.
    fn recover(&mut self) -> Result<(), ClientError> {
        let mut conn = Connection::open(&self.addrs[..])?;
        conn.send(&Frame::OpenStore {
            name: self.name.clone(),
            client_id: self.client_id,
            config: self.config.clone(),
        })?;
        let opened = expect_store_ack(&mut conn, &self.name)?;
        self.conn = conn;
        self.opened = opened;
        self.reconnects += 1;
        Ok(())
    }

    /// Reads until this store's `IncrementalAck` for `seq`. Store
    /// sessions never push unsolicited frames, so the ack is the next
    /// frame; anything else is a protocol violation.
    fn await_incremental_ack(&mut self, seq: u64) -> Result<IncrementalAckFrame, ClientError> {
        match self.conn.recv()? {
            Frame::IncrementalAck(ack) if ack.name == self.name && ack.seq == seq => Ok(ack),
            Frame::IncrementalAck(ack) => Err(ClientError::Wire(WireError::Malformed(format!(
                "incremental ack for {}#{}, expected {}#{seq}",
                ack.name, ack.seq, self.name
            )))),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "unexpected frame while awaiting incremental ack: {other:?}"
            )))),
        }
    }
}

/// Reads the `StoreAck` frame acknowledging an open or admin frame for
/// store `name`.
fn expect_store_ack(conn: &mut Connection, name: &str) -> Result<StoreAckFrame, ClientError> {
    match conn.recv()? {
        Frame::StoreAck(ack) if ack.name == name => Ok(ack),
        other => Err(ClientError::Wire(WireError::Malformed(format!(
            "unexpected frame while awaiting store ack: {other:?}"
        )))),
    }
}
