//! A blocking client for the `spechd` protocol.
//!
//! [`JobClient`] wraps one TCP connection participating in one job.
//! Submission is acknowledged per batch (the ack carries the batch's
//! base stream index, so a participant knows exactly which stream
//! slots its spectra occupy); result frames arriving in between are
//! absorbed into an [`AssignmentAssembler`], and
//! [`JobClient::close_and_wait`] turns them into a [`ServiceOutcome`]
//! once the job's final frame lands.

use crate::assemble::{AssignmentAssembler, ServiceOutcome};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, JobConfig, JobStatsFrame, WireError,
    DEFAULT_MAX_FRAME_LEN,
};
use spechd_ms::Spectrum;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or frame layer failed.
    Wire(WireError),
    /// The server reported an error frame.
    Server {
        /// Wire error code.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Acknowledgement of one submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// First stream index assigned to the batch; its spectra occupy
    /// `[base, base + count)` in submission order.
    pub base: u64,
    /// Number of spectra acknowledged.
    pub count: u32,
}

/// One connection participating in one clustering job.
pub struct JobClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    job_id: u64,
    assembler: AssignmentAssembler,
    max_frame_len: u32,
}

impl JobClient {
    /// Connects to `addr` and opens (or joins) `job_id` with `config`,
    /// returning once the server acknowledges.
    pub fn connect(
        addr: impl ToSocketAddrs,
        job_id: u64,
        config: JobConfig,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let mut client = Self {
            reader,
            writer: BufWriter::new(stream),
            job_id,
            assembler: AssignmentAssembler::new(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        };
        client.send(&Frame::OpenJob { job_id, config })?;
        client.wait_stats()?;
        Ok(client)
    }

    /// The job this connection participates in.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Submits a batch and blocks until its acknowledgement, returning
    /// the batch's stream-index range. Result frames that arrive before
    /// the ack are absorbed, not lost.
    pub fn submit(&mut self, spectra: Vec<Spectrum>) -> Result<SubmitReceipt, ClientError> {
        self.send(&Frame::Submit {
            job_id: self.job_id,
            spectra,
        })?;
        loop {
            match self.recv()? {
                Frame::SubmitAck { base, count, .. } => return Ok(SubmitReceipt { base, count }),
                other => self.assembler.absorb(&other),
            }
        }
    }

    /// Barrier: returns a statistics snapshot taken after the server
    /// has ingested every frame this connection sent before the flush.
    pub fn flush(&mut self) -> Result<JobStatsFrame, ClientError> {
        self.send(&Frame::Flush {
            job_id: self.job_id,
        })?;
        self.wait_stats()
    }

    /// Declares this participant done submitting and waits for the
    /// job's results: blocks until the final `done` frame, then
    /// reassembles the global clustering. The job finalizes once
    /// **every** participant has closed.
    pub fn close_and_wait(mut self) -> Result<ServiceOutcome, ClientError> {
        self.send(&Frame::CloseJob {
            job_id: self.job_id,
        })?;
        while !self.assembler.is_done() {
            let frame = self.recv()?;
            self.assembler.absorb(&frame);
        }
        Ok(self.assembler.finish())
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        use std::io::Write;
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame, turning server `Error` frames into
    /// [`ClientError::Server`].
    fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader, self.max_frame_len)? {
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            frame => Ok(frame),
        }
    }

    /// Reads until a `JobStats` frame (an open/flush ack), absorbing
    /// result frames seen on the way.
    fn wait_stats(&mut self) -> Result<JobStatsFrame, ClientError> {
        loop {
            match self.recv()? {
                Frame::JobStats(stats) => {
                    if stats.done != 0 {
                        self.assembler.absorb(&Frame::JobStats(stats));
                    }
                    return Ok(stats);
                }
                other => self.assembler.absorb(&other),
            }
        }
    }
}
