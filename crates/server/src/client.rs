//! A blocking client for the `spechd` protocol.
//!
//! [`Connection`] is the shared transport: it owns the TCP socket pair
//! (buffered writer + cloned reader), the frame codec, and the
//! error-frame-to-[`ClientError`] translation every client needs. The two
//! job-flavored clients are thin state machines over it:
//!
//! * [`JobClient`] wraps one connection participating in one clustering
//!   job. Submission is acknowledged per batch (the ack carries the
//!   batch's base stream index, so a participant knows exactly which
//!   stream slots its spectra occupy); result frames arriving in between
//!   are absorbed into an [`AssignmentAssembler`], and
//!   [`JobClient::close_and_wait`] turns them into a [`ServiceOutcome`]
//!   once the job's final frame lands.
//! * [`SearchClient`] is the search-job counterpart: library batches are
//!   acknowledged per `LoadLibrary` frame, and each
//!   [`SearchClient::search`] call sends the queries (chunked under the
//!   wire cap), collects the per-query [`Frame::SearchHit`]s, and returns
//!   once the batch's closing [`Frame::SearchStats`] lands.

use crate::assemble::{AssignmentAssembler, ServiceOutcome};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, HitWire, JobConfig, JobStatsFrame, LibraryEntryWire,
    QueryWire, SearchStatsFrame, WireError, DEFAULT_MAX_FRAME_LEN, MAX_LIBRARY_BATCH,
    MAX_QUERY_BATCH,
};
use spechd_ms::Spectrum;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or frame layer failed.
    Wire(WireError),
    /// The server reported an error frame.
    Server {
        /// Wire error code.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// One established client connection: socket pair, frame codec, and the
/// server-error translation shared by every protocol client.
///
/// [`JobClient`] and [`SearchClient`] each wrap one of these with their
/// job-flavored handshake and state machine; custom tooling (load
/// generators, protocol probes) can drive a raw `Connection` directly.
pub struct Connection {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    max_frame_len: u32,
}

impl Connection {
    /// Opens a TCP connection to `addr` (Nagle disabled, frames capped at
    /// [`DEFAULT_MAX_FRAME_LEN`]). No protocol traffic is exchanged —
    /// job handshakes belong to the clients layered on top.
    pub fn open(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Writes one frame and flushes it to the wire.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        use std::io::Write;
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame, turning server `Error` frames into
    /// [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader, self.max_frame_len)? {
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            frame => Ok(frame),
        }
    }
}

/// Acknowledgement of one submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// First stream index assigned to the batch; its spectra occupy
    /// `[base, base + count)` in submission order.
    pub base: u64,
    /// Number of spectra acknowledged.
    pub count: u32,
}

/// One connection participating in one clustering job.
pub struct JobClient {
    conn: Connection,
    job_id: u64,
    assembler: AssignmentAssembler,
}

impl JobClient {
    /// Connects to `addr` and opens (or joins) `job_id` with `config`,
    /// returning once the server acknowledges.
    pub fn connect(
        addr: impl ToSocketAddrs,
        job_id: u64,
        config: JobConfig,
    ) -> Result<Self, ClientError> {
        let mut client = Self {
            conn: Connection::open(addr)?,
            job_id,
            assembler: AssignmentAssembler::new(),
        };
        client.conn.send(&Frame::OpenJob { job_id, config })?;
        client.wait_stats()?;
        Ok(client)
    }

    /// The job this connection participates in.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Submits a batch and blocks until its acknowledgement, returning
    /// the batch's stream-index range. Result frames that arrive before
    /// the ack are absorbed, not lost.
    pub fn submit(&mut self, spectra: Vec<Spectrum>) -> Result<SubmitReceipt, ClientError> {
        self.conn.send(&Frame::Submit {
            job_id: self.job_id,
            spectra,
        })?;
        loop {
            match self.conn.recv()? {
                Frame::SubmitAck { base, count, .. } => return Ok(SubmitReceipt { base, count }),
                other => self.assembler.absorb(&other),
            }
        }
    }

    /// Barrier: returns a statistics snapshot taken after the server
    /// has ingested every frame this connection sent before the flush.
    pub fn flush(&mut self) -> Result<JobStatsFrame, ClientError> {
        self.conn.send(&Frame::Flush {
            job_id: self.job_id,
        })?;
        self.wait_stats()
    }

    /// Declares this participant done submitting and waits for the
    /// job's results: blocks until the final `done` frame, then
    /// reassembles the global clustering. The job finalizes once
    /// **every** participant has closed.
    pub fn close_and_wait(mut self) -> Result<ServiceOutcome, ClientError> {
        self.conn.send(&Frame::CloseJob {
            job_id: self.job_id,
        })?;
        while !self.assembler.is_done() {
            let frame = self.conn.recv()?;
            self.assembler.absorb(&frame);
        }
        Ok(self.assembler.finish())
    }

    /// Reads until a `JobStats` frame (an open/flush ack), absorbing
    /// result frames seen on the way.
    fn wait_stats(&mut self) -> Result<JobStatsFrame, ClientError> {
        loop {
            match self.conn.recv()? {
                Frame::JobStats(stats) => {
                    if stats.done != 0 {
                        self.assembler.absorb(&Frame::JobStats(stats));
                    }
                    return Ok(stats);
                }
                other => self.assembler.absorb(&other),
            }
        }
    }
}

/// One query's results from [`SearchClient::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHits {
    /// Job-global index the server assigned to the query.
    pub query_index: u64,
    /// The hits, best first (ascending `(distance, library_index)`).
    pub hits: Vec<HitWire>,
}

/// One connection participating in one search job.
pub struct SearchClient {
    conn: Connection,
    job_id: u64,
    dim: u32,
}

impl SearchClient {
    /// Connects to `addr` and opens (or joins) search job `job_id` with
    /// dimensionality `dim`, returning once the server acknowledges
    /// (an empty `LoadLibrary` is the join handshake — it fails fast on
    /// a dim mismatch or an already-sealed job).
    pub fn connect(addr: impl ToSocketAddrs, job_id: u64, dim: u32) -> Result<Self, ClientError> {
        let mut client = Self {
            conn: Connection::open(addr)?,
            job_id,
            dim,
        };
        client.conn.send(&Frame::LoadLibrary {
            job_id,
            dim,
            entries: Vec::new(),
        })?;
        client.wait_stats()?;
        Ok(client)
    }

    /// The search job this connection participates in.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The job's hypervector dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Loads entries into the job's library, chunked under the wire's
    /// per-frame cap; each chunk is acknowledged before the next is
    /// sent. Returns the post-load statistics snapshot. Fails once the
    /// library is sealed (a query was served).
    pub fn load(&mut self, entries: &[LibraryEntryWire]) -> Result<SearchStatsFrame, ClientError> {
        if entries.is_empty() {
            // An empty load is still a valid stats probe.
            self.conn.send(&Frame::LoadLibrary {
                job_id: self.job_id,
                dim: self.dim,
                entries: Vec::new(),
            })?;
            return self.wait_stats();
        }
        let mut stats = SearchStatsFrame::default();
        for chunk in entries.chunks(MAX_LIBRARY_BATCH as usize) {
            self.conn.send(&Frame::LoadLibrary {
                job_id: self.job_id,
                dim: self.dim,
                entries: chunk.to_vec(),
            })?;
            stats = self.wait_stats()?;
        }
        Ok(stats)
    }

    /// Scores `queries` against the job's library (sealing it on the
    /// job's first query), returning each query's hits in submission
    /// order plus the post-batch statistics snapshot. Queries are
    /// chunked under the wire's per-frame cap; each chunk's hit frames
    /// are collected up to their closing [`Frame::SearchStats`].
    pub fn search(
        &mut self,
        queries: &[QueryWire],
        window_da: f64,
        top_k: u32,
    ) -> Result<(Vec<QueryHits>, SearchStatsFrame), ClientError> {
        let mut results = Vec::with_capacity(queries.len());
        let mut stats = SearchStatsFrame::default();
        let mut any = false;
        for chunk in queries.chunks(MAX_QUERY_BATCH as usize) {
            any = true;
            self.conn.send(&Frame::SearchQuery {
                job_id: self.job_id,
                dim: self.dim,
                window_da,
                top_k,
                queries: chunk.to_vec(),
            })?;
            loop {
                match self.conn.recv()? {
                    Frame::SearchHit {
                        query_index, hits, ..
                    } => results.push(QueryHits { query_index, hits }),
                    Frame::SearchStats(s) => {
                        stats = s;
                        break;
                    }
                    other => {
                        return Err(ClientError::Wire(WireError::Malformed(format!(
                            "unexpected frame during search: {other:?}"
                        ))))
                    }
                }
            }
        }
        if !any {
            // Zero queries: send an empty batch so the returned stats
            // are a real (and sealing) snapshot, not a default.
            self.conn.send(&Frame::SearchQuery {
                job_id: self.job_id,
                dim: self.dim,
                window_da,
                top_k,
                queries: Vec::new(),
            })?;
            match self.conn.recv()? {
                Frame::SearchStats(s) => stats = s,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame during search: {other:?}"
                    ))))
                }
            }
        }
        Ok((results, stats))
    }

    /// Reads the `SearchStats` frame acknowledging a load. Search jobs
    /// never push unsolicited frames, so the ack is the next frame.
    fn wait_stats(&mut self) -> Result<SearchStatsFrame, ClientError> {
        match self.conn.recv()? {
            Frame::SearchStats(stats) => Ok(stats),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "unexpected frame while awaiting search stats: {other:?}"
            )))),
        }
    }
}
