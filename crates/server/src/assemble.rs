//! Client-side reassembly of streamed shard results into the final
//! global clustering.
//!
//! The server emits each shard's [`Frame::Assignment`] /
//! [`Frame::Consensus`] pair in ascending shard-key order, with raw
//! label blocks allocated in that order — the same layout
//! [`spechd_cluster::ShardLabelMerger`] builds inside the pipeline. The
//! assembler therefore only has to do what the merger does next:
//! renumber raw labels densely by first appearance in **stream order**.
//! The result is bit-identical to a local
//! [`spechd_core::SpecHd::run`] over the same spectra (the core crate's
//! `observed_events_reconstruct_the_outcome` test pins this contract).

use crate::protocol::{Frame, JobStatsFrame};
use std::collections::{BTreeMap, BTreeSet};

/// The reassembled result of a served clustering job, in the shapes
/// [`spechd_core::SpecHdOutcome`] uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Stream indices of spectra that survived preprocessing,
    /// ascending — the served counterpart of
    /// [`spechd_core::SpecHdOutcome::kept`].
    pub kept: Vec<u64>,
    /// Dense global cluster label per kept spectrum, parallel to
    /// `kept` — the counterpart of `assignment().labels()`.
    pub labels: Vec<usize>,
    /// Stream index of the consensus (medoid) spectrum per dense
    /// cluster — the counterpart of `consensus()` mapped through
    /// `kept`.
    pub consensus: Vec<u64>,
    /// The job's final statistics frame.
    pub stats: JobStatsFrame,
}

/// Accumulates a job's server→client frames and reassembles the final
/// clustering once the `done` frame arrives.
///
/// Feed it **every** frame read off the connection ([`absorb`]
/// ignores the irrelevant ones); when [`is_done`] turns true, call
/// [`finish`].
///
/// Absorption is **idempotent per shard**: a re-delivered
/// `Assignment` frame (the server replays its result archive when a
/// participant reconnects mid-job) is recognized by its `raw_base` —
/// unique per shard, since every shard allocates at least one raw
/// label — and ignored, so a resume never double-counts members.
/// `Consensus` and `JobStats` absorption are naturally idempotent.
///
/// [`absorb`]: AssignmentAssembler::absorb
/// [`is_done`]: AssignmentAssembler::is_done
/// [`finish`]: AssignmentAssembler::finish
#[derive(Debug, Default)]
pub struct AssignmentAssembler {
    /// `(stream index, raw global label)` per member, across shards.
    pairs: Vec<(u64, u64)>,
    /// `raw_base` of every `Assignment` frame already absorbed.
    absorbed_assignments: BTreeSet<u64>,
    /// Raw global label → medoid stream index.
    medoid_by_raw: BTreeMap<u64, u64>,
    stats: Option<JobStatsFrame>,
}

impl AssignmentAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received frame. `Assignment`, `Consensus`, and final
    /// `JobStats` frames accumulate; everything else is ignored.
    pub fn absorb(&mut self, frame: &Frame) {
        match frame {
            Frame::Assignment {
                raw_base,
                members,
                labels,
                ..
            } => {
                if !self.absorbed_assignments.insert(*raw_base) {
                    return;
                }
                for (&member, &label) in members.iter().zip(labels) {
                    self.pairs.push((member, raw_base + u64::from(label)));
                }
            }
            Frame::Consensus {
                raw_base, medoids, ..
            } => {
                for (offset, &medoid) in medoids.iter().enumerate() {
                    self.medoid_by_raw.insert(raw_base + offset as u64, medoid);
                }
            }
            Frame::JobStats(stats) if stats.done != 0 => {
                self.stats = Some(*stats);
            }
            _ => {}
        }
    }

    /// Whether the job's final `JobStats` frame has been absorbed. The
    /// server sends it after every result frame, so once this is true
    /// the assembly is complete.
    pub fn is_done(&self) -> bool {
        self.stats.is_some()
    }

    /// Reassembles the global clustering: sorts members into stream
    /// order, renumbers raw labels densely by first appearance, and
    /// maps each dense cluster to its consensus medoid.
    ///
    /// # Panics
    ///
    /// Panics if called before [`AssignmentAssembler::is_done`], or if
    /// the frame set is internally inconsistent (a raw label without a
    /// medoid), which a correct server never produces.
    pub fn finish(mut self) -> ServiceOutcome {
        let stats = self
            .stats
            .expect("finish() before the final JobStats frame");
        self.pairs.sort_unstable();
        let mut dense_of_raw: BTreeMap<u64, usize> = BTreeMap::new();
        let mut kept = Vec::with_capacity(self.pairs.len());
        let mut labels = Vec::with_capacity(self.pairs.len());
        let mut consensus = Vec::new();
        for (member, raw) in self.pairs {
            let next = dense_of_raw.len();
            let dense = *dense_of_raw.entry(raw).or_insert(next);
            if dense == consensus.len() {
                let medoid = self
                    .medoid_by_raw
                    .get(&raw)
                    .expect("raw label without a consensus medoid");
                consensus.push(*medoid);
            }
            kept.push(member);
            labels.push(dense);
        }
        ServiceOutcome {
            kept,
            labels,
            consensus,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two shards, emitted in key order with raw blocks [0,2) and
    /// [2,4), members interleaved in stream order across shards.
    #[test]
    fn reassembles_dense_labels_by_first_appearance() {
        let mut asm = AssignmentAssembler::new();
        // Shard key 5: members 1, 4 in clusters {1}, {4} → raw 0, 1.
        asm.absorb(&Frame::Assignment {
            job_id: 9,
            key: 5,
            raw_base: 0,
            members: vec![1, 4],
            labels: vec![0, 1],
        });
        asm.absorb(&Frame::Consensus {
            job_id: 9,
            raw_base: 0,
            medoids: vec![1, 4],
        });
        // Shard key 7: members 0, 2, 3; 0 and 3 share raw 2, 2 is raw 3.
        asm.absorb(&Frame::Assignment {
            job_id: 9,
            key: 7,
            raw_base: 2,
            members: vec![0, 2, 3],
            labels: vec![0, 1, 0],
        });
        asm.absorb(&Frame::Consensus {
            job_id: 9,
            raw_base: 2,
            medoids: vec![3, 2],
        });
        assert!(!asm.is_done());
        asm.absorb(&Frame::JobStats(JobStatsFrame {
            job_id: 9,
            kept: 5,
            clusters: 4,
            done: 1,
            ..JobStatsFrame::default()
        }));
        assert!(asm.is_done());

        let outcome = asm.finish();
        assert_eq!(outcome.kept, vec![0, 1, 2, 3, 4]);
        // First appearances in stream order: raw 2 → 0, raw 0 → 1,
        // raw 3 → 2, (raw 2 again → 0), raw 1 → 3.
        assert_eq!(outcome.labels, vec![0, 1, 2, 0, 3]);
        assert_eq!(outcome.consensus, vec![3, 1, 2, 4]);
        assert_eq!(outcome.stats.clusters, 4);
    }

    #[test]
    #[should_panic(expected = "finish() before the final JobStats frame")]
    fn finish_before_done_panics() {
        AssignmentAssembler::new().finish();
    }

    /// A replayed (duplicate) shard frame — what a reconnecting client
    /// sees when the server re-delivers its result archive — must not
    /// change the assembled outcome.
    #[test]
    fn replayed_frames_are_absorbed_idempotently() {
        let assignment = Frame::Assignment {
            job_id: 3,
            key: 1,
            raw_base: 0,
            members: vec![0, 1],
            labels: vec![0, 0],
        };
        let consensus = Frame::Consensus {
            job_id: 3,
            raw_base: 0,
            medoids: vec![1],
        };
        let done = Frame::JobStats(JobStatsFrame {
            job_id: 3,
            done: 1,
            ..JobStatsFrame::default()
        });
        let mut once = AssignmentAssembler::new();
        for f in [&assignment, &consensus, &done] {
            once.absorb(f);
        }
        let mut twice = AssignmentAssembler::new();
        for f in [
            &assignment,
            &consensus,
            &assignment,
            &consensus,
            &done,
            &done,
        ] {
            twice.absorb(f);
        }
        assert_eq!(once.finish(), twice.finish());
    }
}
