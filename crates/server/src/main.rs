//! The `spechd-server` binary: serve SpecHD clustering jobs over TCP.

#![forbid(unsafe_code)]

use spechd_server::{Server, ServerConfig};
use std::time::Duration;

const USAGE: &str = "\
spechd-server — clustering-as-a-service over the SpecHD streaming pipeline

USAGE:
    spechd-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT        Address to bind (default 127.0.0.1:7687;
                            port 0 picks an ephemeral port)
    --port-file PATH        Write the bound address to PATH once
                            listening (for scripts using port 0)
    --idle-timeout-ms N     Close connections with no open job after N ms
                            of silence (default 60000)
    --queue-depth N         Per-job ingest queue depth in spectra — the
                            backpressure bound (default 1024)
    --max-frame-mb N        Reject frames with payloads above N MiB
                            (default 32)
    --max-jobs N            Shed new jobs (retryable Busy) once N are
                            live (default 1024)
    --rejoin-grace-ms N     Keep a disconnected participant's job slot
                            (and store session) resumable for N ms; 0
                            makes a disconnect a close (default 2000)
    --store-dir PATH        Directory of <name>.shpk cluster-store
                            backing files for OpenStore/PersistStore
                            sessions (default: stores are memory-only
                            and PersistStore is refused)
    --help                  Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        fail(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("invalid value {value:?} for {flag}")),
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:7687");
    let mut port_file: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_arg("--addr", args.next()),
            "--port-file" => port_file = Some(parse_arg("--port-file", args.next())),
            "--idle-timeout-ms" => {
                config.idle_timeout =
                    Duration::from_millis(parse_arg("--idle-timeout-ms", args.next()))
            }
            "--queue-depth" => config.queue_depth = parse_arg("--queue-depth", args.next()),
            "--max-frame-mb" => {
                let mb: u32 = parse_arg("--max-frame-mb", args.next());
                config.limits.max_frame_len = mb.saturating_mul(1024 * 1024);
            }
            "--max-jobs" => config.max_jobs = parse_arg("--max-jobs", args.next()),
            "--rejoin-grace-ms" => {
                config.rejoin_grace =
                    Duration::from_millis(parse_arg("--rejoin-grace-ms", args.next()))
            }
            "--store-dir" => {
                let dir: String = parse_arg("--store-dir", args.next());
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    fail(&format!("cannot create store dir {dir}: {e}"));
                }
                config.store_dir = Some(dir.into());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    let bound = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("cannot resolve bound address: {e}")));
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            fail(&format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!("spechd-server listening on {bound}");
    if let Err(e) = server.serve() {
        fail(&format!("server failed: {e}"));
    }
}
