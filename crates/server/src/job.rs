//! Job lifecycle: many connections multiplexing into one streaming
//! pipeline per job.
//!
//! Each job owns one [`spechd_core::SpecHd::run_streaming_observed`]
//! pipeline fed through a bounded [`ChannelStream`]. Connections that
//! open (or join) the job each hold a clone of the job's
//! [`SyncSender`]; the stream — and therefore the job — ends when the
//! **last** participant closes or disconnects, which drops the final
//! sender (see the end-of-stream semantics on
//! [`spechd_ms::stream::ChannelStream`]). A participant that dies
//! abruptly is indistinguishable from one that sent `CloseJob`: its
//! spectra stay in the job and the pipeline still finalizes cleanly.
//!
//! Backpressure is bounded in both directions. Ingest: the job's
//! bounded channel — when the pipeline falls behind, `submit` blocks,
//! which stops the connection's reader thread, which stops reading the
//! socket, so slow pipelines throttle producers at TCP. Fan-out: each
//! subscriber's outbound queue is bounded, and result frames are handed
//! over with a non-blocking send — a consumer that stops draining its
//! queue is dropped from the job (its subscription goes inactive)
//! instead of accumulating the job's output in server memory or
//! stalling the pipeline for the other participants.
//!
//! Results stream back as shards finalize. Shard events arrive in
//! completion order, but raw label blocks must be assigned in ascending
//! key order (the [`spechd_cluster::ShardLabelMerger`] contract), so
//! finished shards buffer in a [`BTreeMap`] until every
//! lower-keyed shard has been emitted; once ingest finishes the full
//! key set is known and the tail drains in order.

use crate::protocol::{ErrorCode, Frame, JobConfig, JobStatsFrame};
use spechd_core::{SpecHd, StreamEvent, StreamOutcome};
use spechd_ms::stream::ChannelStream;
use spechd_ms::Spectrum;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type IngestItem = (Spectrum, Option<u32>);

/// Why an open/join or submit was rejected; maps onto a
/// [`Frame::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Wire error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

struct Subscriber {
    tx: mpsc::SyncSender<Frame>,
    active: Arc<AtomicBool>,
}

struct IngestPlan {
    keys: Vec<i64>,
    kept: usize,
    streamed: usize,
}

struct JobState {
    /// Template sender; dropped when the last participant closes, which
    /// ends the job's stream.
    template: Option<SyncSender<IngestItem>>,
    participants: u32,
    /// Next stream index to hand out; submits reserve contiguous ranges.
    next_index: u64,
    submitted: u64,
    subscribers: Vec<Subscriber>,
    shards_clustered: u32,
    /// Finished shards not yet emitted (waiting on lower keys).
    pending: BTreeMap<i64, spechd_core::ShardAssignment>,
    plan: Option<IngestPlan>,
    emit_ptr: usize,
    raw_base: u64,
    finished: bool,
}

/// One clustering job: config, pipeline, and fan-out to subscribers.
pub struct Job {
    id: u64,
    config: JobConfig,
    state: Mutex<JobState>,
}

impl Job {
    fn stats_locked(&self, state: &JobState) -> JobStatsFrame {
        JobStatsFrame {
            job_id: self.id,
            participants: state.participants,
            submitted: state.submitted,
            shards_clustered: state.shards_clustered,
            ..JobStatsFrame::default()
        }
    }

    /// Non-blocking fan-out: a subscriber whose bounded queue is full
    /// (a consumer that stopped draining its connection) or gone is
    /// dropped from the job, so fan-out memory is capped at the queue
    /// bound per connection and a stalled client never stalls the
    /// pipeline.
    fn broadcast(&self, state: &mut JobState, frame: &Frame) {
        state.subscribers.retain(|sub| {
            if sub.tx.try_send(frame.clone()).is_ok() {
                return true;
            }
            sub.active.store(false, Ordering::Release);
            false
        });
    }

    /// Emits every buffered shard whose turn (in ascending key order)
    /// has come, assigning each a contiguous raw label block.
    fn try_emit(&self, state: &mut JobState) {
        loop {
            let Some(plan) = &state.plan else { return };
            if state.emit_ptr >= plan.keys.len() {
                return;
            }
            let key = plan.keys[state.emit_ptr];
            let Some(shard) = state.pending.remove(&key) else {
                return;
            };
            let assignment = Frame::Assignment {
                job_id: self.id,
                key,
                raw_base: state.raw_base,
                members: shard.members.iter().map(|&m| m as u64).collect(),
                labels: shard.labels.iter().map(|&l| l as u32).collect(),
            };
            let consensus = Frame::Consensus {
                job_id: self.id,
                raw_base: state.raw_base,
                medoids: shard.medoids.iter().map(|&m| m as u64).collect(),
            };
            self.broadcast(state, &assignment);
            self.broadcast(state, &consensus);
            state.raw_base += shard.medoids.len() as u64;
            state.emit_ptr += 1;
        }
    }

    /// Observer callback run inside the pipeline (ingest thread and
    /// clustering workers, serialized by the pipeline's observer lock).
    fn on_event(&self, event: StreamEvent) {
        let mut state = self.state.lock().expect("job state poisoned");
        match event {
            StreamEvent::ShardClustered(shard) => {
                state.shards_clustered += 1;
                state.pending.insert(shard.key, shard);
            }
            StreamEvent::IngestDone {
                keys,
                kept,
                streamed,
            } => {
                state.plan = Some(IngestPlan {
                    keys,
                    kept,
                    streamed,
                });
            }
        }
        self.try_emit(&mut state);
    }

    /// Runs after the pipeline returns: every shard has been emitted
    /// (the pipeline delivers all events before returning), so the
    /// final `done = 1` stats frame is the job's last.
    fn on_complete(&self, outcome: &StreamOutcome) {
        let mut state = self.state.lock().expect("job state poisoned");
        debug_assert!(state.pending.is_empty(), "unemitted shards at completion");
        state.finished = true;
        let hac = outcome.outcome.stats().hac;
        let plan_streamed = state
            .plan
            .as_ref()
            .map_or(outcome.stream.spectra_streamed, |p| p.streamed);
        let plan_kept = state
            .plan
            .as_ref()
            .map_or(outcome.outcome.kept().len(), |p| p.kept);
        let frame = Frame::JobStats(JobStatsFrame {
            job_id: self.id,
            participants: state.participants,
            submitted: state.submitted,
            streamed: plan_streamed as u64,
            kept: plan_kept as u64,
            shards_opened: outcome.stream.shards_opened as u32,
            shards_clustered: state.shards_clustered,
            clusters: outcome.outcome.assignment().num_clusters() as u64,
            hac_comparisons: hac.comparisons,
            hac_updates: hac.updates,
            hac_merges: hac.merges,
            done: 1,
        });
        // Deactivate before broadcasting: by the time a client reads the
        // final frame off its socket, its handle already reads as
        // settled, so an immediately following `OpenJob` on the same
        // connection finds the slot vacated. The queued frames still
        // deliver after the senders drop.
        for sub in &state.subscribers {
            sub.active.store(false, Ordering::Release);
        }
        self.broadcast(&mut state, &frame);
        state.subscribers.clear();
    }
}

/// The server's table of live jobs, plus their pipeline threads.
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    queue_depth: usize,
}

impl JobRegistry {
    /// Creates an empty registry whose jobs use an ingest queue of
    /// `queue_depth` spectra (the backpressure bound).
    pub fn new(queue_depth: usize) -> Self {
        Self {
            jobs: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            queue_depth: queue_depth.max(1),
        }
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job table poisoned").len()
    }

    /// Whether no jobs are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens `job_id` (creating its pipeline) or joins it as another
    /// participant. Joining requires a bit-identical [`JobConfig`].
    /// `out_tx` is subscribed to the job's result frames; its bound is
    /// the fan-out budget — result frames are delivered with a
    /// non-blocking send, and a subscriber whose queue is full is
    /// dropped from the job. The returned [`JobHandle`] counts as one
    /// participant until closed or dropped.
    pub fn open_or_join(
        self: &Arc<Self>,
        job_id: u64,
        config: JobConfig,
        out_tx: mpsc::SyncSender<Frame>,
    ) -> Result<JobHandle, JobError> {
        let active = Arc::new(AtomicBool::new(true));
        let subscriber = Subscriber {
            tx: out_tx,
            active: Arc::clone(&active),
        };
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        if let Some(job) = jobs.get(&job_id) {
            let job = Arc::clone(job);
            let mut state = job.state.lock().expect("job state poisoned");
            if state.finished || state.template.is_none() {
                return Err(JobError::new(
                    ErrorCode::JobClosed,
                    format!("job {job_id} is finalizing and cannot be joined"),
                ));
            }
            if job.config != config {
                return Err(JobError::new(
                    ErrorCode::ConfigMismatch,
                    format!("job {job_id} exists with a different config"),
                ));
            }
            state.participants += 1;
            let sender = state.template.clone();
            state.subscribers.push(subscriber);
            drop(state);
            return Ok(JobHandle {
                job,
                sender,
                active,
                closed: false,
            });
        }

        let (tx, rx) = mpsc::sync_channel::<IngestItem>(self.queue_depth);
        let job = Arc::new(Job {
            id: job_id,
            config: config.clone(),
            state: Mutex::new(JobState {
                template: Some(tx.clone()),
                participants: 1,
                next_index: 0,
                submitted: 0,
                subscribers: vec![subscriber],
                shards_clustered: 0,
                pending: BTreeMap::new(),
                plan: None,
                emit_ptr: 0,
                raw_base: 0,
                finished: false,
            }),
        });
        jobs.insert(job_id, Arc::clone(&job));
        drop(jobs);

        let registry = Arc::clone(self);
        let pipeline_job = Arc::clone(&job);
        let handle = std::thread::Builder::new()
            .name(format!("spechd-job-{job_id}"))
            .spawn(move || {
                let engine = SpecHd::new(pipeline_job.config.pipeline_config());
                let stream_cfg = pipeline_job.config.stream_config();
                let outcome =
                    engine.run_streaming_observed(ChannelStream::new(rx), &stream_cfg, |event| {
                        pipeline_job.on_event(event)
                    });
                pipeline_job.on_complete(&outcome);
                registry
                    .jobs
                    .lock()
                    .expect("job table poisoned")
                    .remove(&pipeline_job.id);
            })
            .expect("spawn job pipeline thread");
        let mut threads = self.threads.lock().expect("thread table poisoned");
        // Prune handles of pipelines that already finished — a
        // long-running server must not retain one handle per job ever
        // created until shutdown.
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
        drop(threads);

        Ok(JobHandle {
            job,
            sender: Some(tx),
            active,
            closed: false,
        })
    }

    /// Joins every pipeline thread ever spawned. Call only after all
    /// connections are gone (their dropped senders are what let the
    /// pipelines finish).
    pub fn join_pipelines(&self) {
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("thread table poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// One connection's participation in one job.
pub struct JobHandle {
    job: Arc<Job>,
    sender: Option<SyncSender<IngestItem>>,
    active: Arc<AtomicBool>,
    closed: bool,
}

impl JobHandle {
    /// The job this handle participates in.
    pub fn job_id(&self) -> u64 {
        self.job.id
    }

    /// Whether the subscription is still live (job not finished).
    /// Connections use this for idle accounting: a connection waiting on
    /// a live job's results is not idle.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// True once this participation is over on both sides: closed (no
    /// more submits) and no longer subscribed (the job finished, or the
    /// subscription was dropped as a stalled consumer). A connection
    /// whose handle is settled may vacate it and open a new job.
    pub fn is_settled(&self) -> bool {
        self.closed && !self.is_active()
    }

    /// Appends a batch to the job's stream, returning the batch's base
    /// stream index. Spectra occupy contiguous indices `[base, base +
    /// len)` even with concurrent submitters — the job lock is held
    /// across the whole batch. Blocks (backpressure) when the ingest
    /// queue is full.
    pub fn submit(&self, spectra: Vec<Spectrum>) -> Result<(u64, u32), JobError> {
        let Some(sender) = &self.sender else {
            return Err(JobError::new(
                ErrorCode::ProtocolState,
                "job already closed on this connection",
            ));
        };
        let count = spectra.len() as u32;
        let mut state = self.job.state.lock().expect("job state poisoned");
        let base = state.next_index;
        for spectrum in spectra {
            if sender.send((spectrum, None)).is_err() {
                return Err(JobError::new(
                    ErrorCode::JobClosed,
                    "job pipeline terminated",
                ));
            }
        }
        state.next_index += u64::from(count);
        state.submitted += u64::from(count);
        Ok((base, count))
    }

    /// A statistics snapshot; serves as the `OpenJob` and `Flush` ack.
    /// Because a connection's frames are processed in order, by the time
    /// the snapshot is taken every earlier `Submit` on this connection
    /// has been ingested — `Flush` is a per-connection barrier.
    pub fn stats(&self) -> JobStatsFrame {
        let state = self.job.state.lock().expect("job state poisoned");
        self.job.stats_locked(&state)
    }

    /// Ends this participant's submissions. When the last participant
    /// closes (or disconnects — [`Drop`] calls this), the job's stream
    /// ends and the pipeline finalizes.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.sender = None;
        let mut state = self.job.state.lock().expect("job state poisoned");
        state.participants = state.participants.saturating_sub(1);
        if state.participants == 0 {
            // Drop the template: the last live sender. The channel
            // closes, `ChannelStream` drains and ends, the pipeline
            // finalizes and broadcasts the remaining result frames.
            state.template = None;
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.close();
    }
}
