//! Job lifecycle: many connections multiplexing into one streaming
//! pipeline per job.
//!
//! Each job owns one [`spechd_core::SpecHd::run_streaming_observed`]
//! pipeline fed through a bounded [`ChannelStream`]. Participants are
//! identified by the wire `client_id`, **not** by their TCP connection:
//! a job tracks one `ClientSlot` per participant, and the stream —
//! and therefore the job — ends when the **last** slot closes, which
//! drops the final sender (see the end-of-stream semantics on
//! [`spechd_ms::stream::ChannelStream`]).
//!
//! ## Reconnect and resume
//!
//! A connection that dies abruptly *detaches* its slot instead of
//! closing it: the slot survives for the registry's rejoin grace, during
//! which the same `client_id` may reconnect, re-send `OpenJob`, and
//! resume. Resume is idempotent on both directions of the stream:
//!
//! * **Submits** are sequence-numbered per slot. Each `seq` is ingested
//!   exactly once; a duplicate of the last acknowledged `seq` (a re-send
//!   after a lost ack) is answered with the stored ack instead of being
//!   re-ingested, so the clustering input — and therefore the outcome —
//!   is unchanged by retries.
//! * **Results** are archived per job (`emitted`) and replayed to a
//!   rejoining participant before it re-subscribes, so frames that were
//!   in flight when the connection died are not lost. The archive holds
//!   exactly the job's output frames and is freed when the job leaves
//!   the registry (a bounded linger after completion, so a participant
//!   disconnected across finalization can still rejoin for the replay).
//!
//! If the grace expires without a rejoin the slot closes as if it had
//! sent `CloseJob` — with a grace of zero this degenerates to the old
//! behavior where a disconnect *is* a close.
//!
//! Backpressure is bounded in both directions. Ingest: the job's
//! bounded channel — when the pipeline falls behind, `submit` blocks,
//! which stops the connection's reader thread, which stops reading the
//! socket, so slow pipelines throttle producers at TCP. Fan-out: each
//! subscriber's outbound queue is bounded, and result frames are handed
//! over with a non-blocking send — a consumer that stops draining its
//! queue is dropped from the job (its subscription goes inactive)
//! instead of accumulating the job's output in server memory or
//! stalling the pipeline for the other participants. (Rejoin replay is
//! the one blocking send: it pushes the backlog into the rejoining
//! connection's own bounded queue, throttled by that client's reads.)
//!
//! Results stream back as shards finalize. Shard events arrive in
//! completion order, but raw label blocks must be assigned in ascending
//! key order (the [`spechd_cluster::ShardLabelMerger`] contract), so
//! finished shards buffer in a [`BTreeMap`] until every
//! lower-keyed shard has been emitted; once ingest finishes the full
//! key set is known and the tail drains in order.

use crate::protocol::{ErrorCode, Frame, JobConfig, JobStatsFrame};
use spechd_core::{SpecHd, StreamEvent, StreamOutcome};
use spechd_ms::stream::ChannelStream;
use spechd_ms::Spectrum;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type IngestItem = (Spectrum, Option<u32>);

/// Why an open/join or submit was rejected; maps onto a
/// [`Frame::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Wire error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

struct Subscriber {
    tx: mpsc::SyncSender<Frame>,
    active: Arc<AtomicBool>,
}

struct IngestPlan {
    keys: Vec<i64>,
    kept: usize,
    streamed: usize,
}

/// One participant's durable state, keyed by `client_id` — it outlives
/// the TCP connection carrying it.
struct ClientSlot {
    /// A live connection currently holds this slot.
    attached: bool,
    /// The participant is done submitting (explicit `CloseJob`, or its
    /// rejoin grace expired).
    closed: bool,
    /// The next submit sequence number this slot will ingest.
    next_seq: u64,
    /// The last acknowledged submit, for duplicate re-acks:
    /// `(seq, base, count)`.
    last_ack: Option<(u64, u64, u32)>,
    /// Bumped on every rejoin; lets a pending grace timer recognize it
    /// has been superseded.
    epoch: u64,
}

struct JobState {
    /// Template sender; dropped when the last participant closes, which
    /// ends the job's stream.
    template: Option<SyncSender<IngestItem>>,
    clients: HashMap<u64, ClientSlot>,
    /// Next stream index to hand out; submits reserve contiguous ranges.
    next_index: u64,
    submitted: u64,
    subscribers: Vec<Subscriber>,
    shards_clustered: u32,
    /// Finished shards not yet emitted (waiting on lower keys).
    pending: BTreeMap<i64, spechd_core::ShardAssignment>,
    plan: Option<IngestPlan>,
    emit_ptr: usize,
    raw_base: u64,
    finished: bool,
    /// Every result frame the job has broadcast, in order — the replay
    /// backlog for rejoining participants. Bounded by the job's own
    /// output (assignments + consensus + the final stats frame) and
    /// freed when the job leaves the registry.
    emitted: Vec<Frame>,
}

impl JobState {
    fn participants(&self) -> u32 {
        self.clients.values().filter(|c| !c.closed).count() as u32
    }

    /// Drops the template once every slot has closed, ending the
    /// job's ingest stream so the pipeline can finalize.
    fn maybe_finalize(&mut self) {
        if self.participants() == 0 {
            self.template = None;
        }
    }
}

/// One clustering job: config, pipeline, and fan-out to subscribers.
pub struct Job {
    id: u64,
    config: JobConfig,
    rejoin_grace: Duration,
    state: Mutex<JobState>,
}

impl Job {
    fn stats_locked(&self, state: &JobState) -> JobStatsFrame {
        JobStatsFrame {
            job_id: self.id,
            participants: state.participants(),
            submitted: state.submitted,
            shards_clustered: state.shards_clustered,
            ..JobStatsFrame::default()
        }
    }

    /// Non-blocking fan-out: a subscriber whose bounded queue is full
    /// (a consumer that stopped draining its connection) or gone is
    /// dropped from the job, so fan-out memory is capped at the queue
    /// bound per connection and a stalled client never stalls the
    /// pipeline.
    fn broadcast(&self, state: &mut JobState, frame: &Frame) {
        state.subscribers.retain(|sub| {
            if sub.tx.try_send(frame.clone()).is_ok() {
                return true;
            }
            sub.active.store(false, Ordering::Release);
            false
        });
    }

    /// Broadcasts a result frame and archives it for rejoin replay.
    fn emit(&self, state: &mut JobState, frame: Frame) {
        self.broadcast(state, &frame);
        state.emitted.push(frame);
    }

    /// Emits every buffered shard whose turn (in ascending key order)
    /// has come, assigning each a contiguous raw label block.
    fn try_emit(&self, state: &mut JobState) {
        loop {
            let Some(plan) = &state.plan else { return };
            if state.emit_ptr >= plan.keys.len() {
                return;
            }
            let key = plan.keys[state.emit_ptr];
            let Some(shard) = state.pending.remove(&key) else {
                return;
            };
            let assignment = Frame::Assignment {
                job_id: self.id,
                key,
                raw_base: state.raw_base,
                members: shard.members.iter().map(|&m| m as u64).collect(),
                labels: shard.labels.iter().map(|&l| l as u32).collect(),
            };
            let consensus = Frame::Consensus {
                job_id: self.id,
                raw_base: state.raw_base,
                medoids: shard.medoids.iter().map(|&m| m as u64).collect(),
            };
            self.emit(state, assignment);
            self.emit(state, consensus);
            state.raw_base += shard.medoids.len() as u64;
            state.emit_ptr += 1;
        }
    }

    /// Observer callback run inside the pipeline (ingest thread and
    /// clustering workers, serialized by the pipeline's observer lock).
    fn on_event(&self, event: StreamEvent) {
        let mut state = self.state.lock().expect("job state poisoned");
        match event {
            StreamEvent::ShardClustered(shard) => {
                state.shards_clustered += 1;
                state.pending.insert(shard.key, shard);
            }
            StreamEvent::IngestDone {
                keys,
                kept,
                streamed,
            } => {
                state.plan = Some(IngestPlan {
                    keys,
                    kept,
                    streamed,
                });
            }
        }
        self.try_emit(&mut state);
    }

    /// Runs after the pipeline returns: every shard has been emitted
    /// (the pipeline delivers all events before returning), so the
    /// final `done = 1` stats frame is the job's last.
    fn on_complete(&self, outcome: &StreamOutcome) {
        let mut state = self.state.lock().expect("job state poisoned");
        debug_assert!(state.pending.is_empty(), "unemitted shards at completion");
        state.finished = true;
        let hac = outcome.outcome.stats().hac;
        let plan_streamed = state
            .plan
            .as_ref()
            .map_or(outcome.stream.spectra_streamed, |p| p.streamed);
        let plan_kept = state
            .plan
            .as_ref()
            .map_or(outcome.outcome.kept().len(), |p| p.kept);
        let frame = Frame::JobStats(JobStatsFrame {
            job_id: self.id,
            participants: state.participants(),
            submitted: state.submitted,
            streamed: plan_streamed as u64,
            kept: plan_kept as u64,
            shards_opened: outcome.stream.shards_opened as u32,
            shards_clustered: state.shards_clustered,
            clusters: outcome.outcome.assignment().num_clusters() as u64,
            hac_comparisons: hac.comparisons,
            hac_updates: hac.updates,
            hac_merges: hac.merges,
            done: 1,
        });
        // Deactivate before broadcasting: by the time a client reads the
        // final frame off its socket, its handle already reads as
        // settled, so an immediately following `OpenJob` on the same
        // connection finds the slot vacated. The queued frames still
        // deliver after the senders drop.
        for sub in &state.subscribers {
            sub.active.store(false, Ordering::Release);
        }
        self.emit(&mut state, frame);
        state.subscribers.clear();
    }

    /// Replays the archived result frames into a rejoining
    /// participant's outbound queue. This send is *blocking* — the
    /// backlog drains at the pace the rejoining client reads its socket
    /// — and aborts quietly if the connection dies mid-replay.
    fn replay_locked(&self, state: &JobState, out_tx: &mpsc::SyncSender<Frame>) {
        for frame in &state.emitted {
            if out_tx.send(frame.clone()).is_err() {
                return;
            }
        }
    }
}

/// The server's table of live jobs, plus their pipeline threads.
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    queue_depth: usize,
    max_jobs: usize,
    rejoin_grace: Duration,
}

impl JobRegistry {
    /// Creates an empty registry whose jobs use an ingest queue of
    /// `queue_depth` spectra (the backpressure bound), with no job cap
    /// and a zero rejoin grace — disconnect means close, exactly the
    /// pre-resume semantics. Servers use [`JobRegistry::with_policy`].
    pub fn new(queue_depth: usize) -> Self {
        Self::with_policy(queue_depth, usize::MAX, Duration::ZERO)
    }

    /// Creates an empty registry with explicit robustness policy:
    /// at most `max_jobs` jobs may be live at once (`OpenJob` creating
    /// one more is shed with a retryable [`ErrorCode::Busy`]), and a
    /// disconnected participant's slot survives `rejoin_grace` for the
    /// same `client_id` to reconnect and resume. The same grace is the
    /// linger a finished job stays in the registry for result replay.
    pub fn with_policy(queue_depth: usize, max_jobs: usize, rejoin_grace: Duration) -> Self {
        Self {
            jobs: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            queue_depth: queue_depth.max(1),
            max_jobs: max_jobs.max(1),
            rejoin_grace,
        }
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job table poisoned").len()
    }

    /// Whether no jobs are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens `job_id` (creating its pipeline), joins it as a new
    /// participant, or — when `client_id` already holds a slot —
    /// **rejoins** after a disconnect: the job replays every result
    /// frame the participant may have missed, then resumes its slot
    /// (submit seq numbering and all).
    ///
    /// Joining requires a bit-identical [`JobConfig`]. `out_tx` is
    /// subscribed to the job's result frames; its bound is the fan-out
    /// budget — result frames are delivered with a non-blocking send,
    /// and a subscriber whose queue is full is dropped from the job.
    /// The returned [`JobHandle`] counts as one participant until
    /// closed or dropped. Creating a new job when `max_jobs` are live
    /// is shed with a retryable [`ErrorCode::Busy`].
    pub fn open_or_join(
        self: &Arc<Self>,
        job_id: u64,
        client_id: u64,
        config: JobConfig,
        out_tx: mpsc::SyncSender<Frame>,
    ) -> Result<JobHandle, JobError> {
        let active = Arc::new(AtomicBool::new(true));
        let subscriber = Subscriber {
            tx: out_tx.clone(),
            active: Arc::clone(&active),
        };
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        if let Some(job) = jobs.get(&job_id) {
            let job = Arc::clone(job);
            drop(jobs);
            let mut state = job.state.lock().expect("job state poisoned");
            if job.config != config {
                return Err(JobError::new(
                    ErrorCode::ConfigMismatch,
                    format!("job {job_id} exists with a different config"),
                ));
            }
            let known = state.clients.contains_key(&client_id);
            if !known && (state.finished || state.template.is_none()) {
                return Err(JobError::new(
                    ErrorCode::JobClosed,
                    format!("job {job_id} is finalizing and cannot be joined"),
                ));
            }
            if known {
                let slot = state.clients.get_mut(&client_id).expect("slot known");
                // If the slot still reads as attached, the server has
                // not yet noticed the old connection die — the rejoin
                // *steals* it (newest connection wins). The epoch bump
                // turns the zombie handle's close/detach into no-ops,
                // and its dead subscription self-prunes on the next
                // broadcast.
                slot.attached = true;
                slot.epoch += 1;
                let epoch = slot.epoch;
                let slot_closed = slot.closed;
                // Replay the backlog *before* subscribing, so the
                // rejoiner sees every frame exactly once and in order.
                job.replay_locked(&state, &out_tx);
                let (sender, handle_active) = if state.finished {
                    // Nothing further will be broadcast; the replay
                    // already delivered the final done frame.
                    active.store(false, Ordering::Release);
                    (None, active)
                } else {
                    state.subscribers.push(subscriber);
                    let sender = if slot_closed {
                        None
                    } else {
                        state.template.clone()
                    };
                    (sender, active)
                };
                drop(state);
                return Ok(JobHandle {
                    job,
                    client_id,
                    epoch,
                    sender,
                    active: handle_active,
                    closed: slot_closed,
                });
            }
            state.clients.insert(client_id, ClientSlot::fresh());
            let sender = state.template.clone();
            state.subscribers.push(subscriber);
            drop(state);
            return Ok(JobHandle {
                job,
                client_id,
                epoch: 0,
                sender,
                active,
                closed: false,
            });
        }

        if jobs.len() >= self.max_jobs {
            return Err(JobError::new(
                ErrorCode::Busy,
                format!(
                    "job registry is full ({} jobs); retry after backoff",
                    jobs.len()
                ),
            ));
        }

        let (tx, rx) = mpsc::sync_channel::<IngestItem>(self.queue_depth);
        let job = Arc::new(Job {
            id: job_id,
            config: config.clone(),
            rejoin_grace: self.rejoin_grace,
            state: Mutex::new(JobState {
                template: Some(tx.clone()),
                clients: HashMap::from([(client_id, ClientSlot::fresh())]),
                next_index: 0,
                submitted: 0,
                subscribers: vec![subscriber],
                shards_clustered: 0,
                pending: BTreeMap::new(),
                plan: None,
                emit_ptr: 0,
                raw_base: 0,
                finished: false,
                emitted: Vec::new(),
            }),
        });
        jobs.insert(job_id, Arc::clone(&job));
        drop(jobs);

        let registry = Arc::clone(self);
        let pipeline_job = Arc::clone(&job);
        let handle = std::thread::Builder::new()
            .name(format!("spechd-job-{job_id}"))
            .spawn(move || {
                let engine = SpecHd::new(pipeline_job.config.pipeline_config());
                let stream_cfg = pipeline_job.config.stream_config();
                let outcome =
                    engine.run_streaming_observed(ChannelStream::new(rx), &stream_cfg, |event| {
                        pipeline_job.on_event(event)
                    });
                pipeline_job.on_complete(&outcome);
                registry.retire(pipeline_job.id);
            })
            .expect("spawn job pipeline thread");
        let mut threads = self.threads.lock().expect("thread table poisoned");
        // Prune handles of pipelines that already finished — a
        // long-running server must not retain one handle per job ever
        // created until shutdown.
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
        drop(threads);

        Ok(JobHandle {
            job,
            client_id,
            epoch: 0,
            sender: Some(tx),
            active,
            closed: false,
        })
    }

    /// Removes a finished job from the table — after the rejoin grace,
    /// so a participant disconnected across finalization can still
    /// rejoin and replay the results it missed. A zero grace removes
    /// immediately (the pre-resume behavior).
    fn retire(self: &Arc<Self>, job_id: u64) {
        if self.rejoin_grace.is_zero() {
            self.jobs
                .lock()
                .expect("job table poisoned")
                .remove(&job_id);
            return;
        }
        let registry = Arc::clone(self);
        // Detached on purpose: the linger must not block the pipeline
        // thread, and joining it at shutdown would serialize shutdowns
        // on the grace. Holds only the registry Arc.
        let _ = std::thread::Builder::new()
            .name(format!("spechd-job-{job_id}-linger"))
            .spawn(move || {
                std::thread::sleep(registry.rejoin_grace);
                registry
                    .jobs
                    .lock()
                    .expect("job table poisoned")
                    .remove(&job_id);
            });
    }

    /// Joins every pipeline thread ever spawned. Call only after all
    /// connections are gone (their dropped senders are what let the
    /// pipelines finish).
    pub fn join_pipelines(&self) {
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("thread table poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl ClientSlot {
    fn fresh() -> Self {
        Self {
            attached: true,
            closed: false,
            next_seq: 0,
            last_ack: None,
            epoch: 0,
        }
    }
}

/// One connection's participation in one job.
pub struct JobHandle {
    job: Arc<Job>,
    client_id: u64,
    /// The slot epoch this handle was issued under. A rejoin bumps the
    /// slot's epoch (stealing it from a connection the server has not
    /// yet reaped), after which this handle's close/detach are no-ops —
    /// a zombie connection cannot close the slot out from under its
    /// successor.
    epoch: u64,
    sender: Option<SyncSender<IngestItem>>,
    active: Arc<AtomicBool>,
    closed: bool,
}

impl JobHandle {
    /// The job this handle participates in.
    pub fn job_id(&self) -> u64 {
        self.job.id
    }

    /// The participant (wire `client_id`) this handle carries.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Whether the subscription is still live (job not finished).
    /// Connections use this for idle accounting: a connection waiting on
    /// a live job's results is not idle.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// True once this participation is over on both sides: closed (no
    /// more submits) and no longer subscribed (the job finished, or the
    /// subscription was dropped as a stalled consumer). A connection
    /// whose handle is settled may vacate it and open a new job.
    pub fn is_settled(&self) -> bool {
        self.closed && !self.is_active()
    }

    /// Appends a batch to the job's stream, returning the batch's base
    /// stream index. Spectra occupy contiguous indices `[base, base +
    /// len)` even with concurrent submitters — the job lock is held
    /// across the whole batch. Blocks (backpressure) when the ingest
    /// queue is full.
    ///
    /// `seq` makes this idempotent across reconnects: a duplicate of
    /// the slot's last acknowledged sequence number re-returns the
    /// stored `(base, count)` without ingesting anything, and any other
    /// out-of-order `seq` is a protocol error — each batch enters the
    /// clustering input exactly once.
    pub fn submit(&self, seq: u64, spectra: Vec<Spectrum>) -> Result<(u64, u32), JobError> {
        let Some(sender) = &self.sender else {
            return Err(JobError::new(
                ErrorCode::ProtocolState,
                "job already closed on this connection",
            ));
        };
        let count = spectra.len() as u32;
        let mut state = self.job.state.lock().expect("job state poisoned");
        let slot = state
            .clients
            .get(&self.client_id)
            .expect("submitting client has a slot");
        if slot.epoch != self.epoch {
            return Err(JobError::new(
                ErrorCode::ProtocolState,
                "this connection's job slot was resumed by a newer connection",
            ));
        }
        if let Some((ack_seq, base, count)) = slot.last_ack {
            if seq == ack_seq {
                // A re-sent batch whose ack was lost: re-ack, don't
                // re-ingest.
                return Ok((base, count));
            }
        }
        if seq != slot.next_seq {
            return Err(JobError::new(
                ErrorCode::ProtocolState,
                format!("submit seq {seq} out of order (expected {})", slot.next_seq),
            ));
        }
        let base = state.next_index;
        for spectrum in spectra {
            if sender.send((spectrum, None)).is_err() {
                return Err(JobError::new(
                    ErrorCode::JobClosed,
                    "job pipeline terminated",
                ));
            }
        }
        state.next_index += u64::from(count);
        state.submitted += u64::from(count);
        let slot = state
            .clients
            .get_mut(&self.client_id)
            .expect("submitting client has a slot");
        slot.next_seq = seq + 1;
        slot.last_ack = Some((seq, base, count));
        Ok((base, count))
    }

    /// A statistics snapshot; serves as the `OpenJob` and `Flush` ack.
    /// Because a connection's frames are processed in order, by the time
    /// the snapshot is taken every earlier `Submit` on this connection
    /// has been ingested — `Flush` is a per-connection barrier.
    pub fn stats(&self) -> JobStatsFrame {
        let state = self.job.state.lock().expect("job state poisoned");
        self.job.stats_locked(&state)
    }

    /// Ends this participant's submissions **permanently** (the wire
    /// `CloseJob`). When the last slot closes, the job's stream ends
    /// and the pipeline finalizes. Idempotent — a re-sent `CloseJob`
    /// after a reconnect is a no-op.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.sender = None;
        let mut state = self.job.state.lock().expect("job state poisoned");
        if let Some(slot) = state.clients.get_mut(&self.client_id) {
            if slot.epoch == self.epoch && !slot.closed {
                slot.closed = true;
                state.maybe_finalize();
            }
        }
    }

    /// The connection died without a `CloseJob`: release the slot but
    /// keep it resumable for the job's rejoin grace. If nobody rejoins
    /// in time the slot closes as if `CloseJob` had arrived; with a
    /// zero grace that happens immediately.
    fn detach(&mut self) {
        self.sender = None;
        let mut state = self.job.state.lock().expect("job state poisoned");
        let Some(slot) = state.clients.get_mut(&self.client_id) else {
            return;
        };
        if slot.epoch != self.epoch {
            // The slot was stolen by a newer connection; this zombie
            // handle has nothing left to release.
            return;
        }
        slot.attached = false;
        if slot.closed {
            return;
        }
        if self.job.rejoin_grace.is_zero() {
            slot.closed = true;
            state.maybe_finalize();
            return;
        }
        let epoch = slot.epoch;
        drop(state);
        let job = Arc::clone(&self.job);
        let client_id = self.client_id;
        // Detached grace timer; superseded by a rejoin (epoch bump).
        let _ = std::thread::Builder::new()
            .name(format!("spechd-job-{}-grace", job.id))
            .spawn(move || {
                std::thread::sleep(job.rejoin_grace);
                let mut state = job.state.lock().expect("job state poisoned");
                if let Some(slot) = state.clients.get_mut(&client_id) {
                    if !slot.attached && !slot.closed && slot.epoch == epoch {
                        slot.closed = true;
                        state.maybe_finalize();
                    }
                }
            });
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        // An abrupt end (connection gone without CloseJob) detaches
        // rather than closes, so the participant can reconnect and
        // resume within the grace.
        self.detach();
    }
}
