//! The TCP front end: accept loop, per-connection reader/writer
//! threads, timeouts, and graceful shutdown.
//!
//! Each connection gets two threads. The **reader** polls the socket in
//! short intervals (so it can notice shutdown and idle deadlines
//! without a frame arriving), reads and dispatches one frame at a time,
//! and owns the connection's [`JobHandle`]; once a handle settles (job
//! closed and finished) the reader vacates it, so a connection can run
//! jobs sequentially. The **writer** drains a **bounded** outbound
//! queue shared by the reader (direct acks) and the connection's job
//! subscription (streamed results) — one queue, so every client sees a
//! single total order of server frames, and one cap
//! ([`ServerConfig::outbound_queue_depth`]) on what a connection can
//! make the server buffer. A client that stops draining results is
//! dropped from its job's fan-out when the queue fills, and a socket
//! that stops accepting writes fails the writer at the frame deadline —
//! a stalled consumer costs a bounded queue, never the job's output.
//!
//! Error policy: anything the frame layer rejects — bad magic or
//! version, an oversized length prefix, a truncated or undecodable
//! payload — is fatal for the **connection**: a best-effort
//! [`Frame::Error`] goes out and the socket closes, exactly as if the
//! client had disconnected (its job participation ends, the job
//! itself survives). Frames that are well-formed but wrong for the
//! connection's state (`Submit` before `OpenJob`, a mismatched
//! `job_id`) get an [`ErrorCode::ProtocolState`] error and the
//! connection stays up.

use crate::job::{JobHandle, JobRegistry};
use crate::limits::Limits;
use crate::protocol::{
    decode_payload, parse_header, write_frame, ErrorCode, Frame, StoreAckFrame, WireError,
    HEADER_LEN,
};
use crate::search::{SearchHandle, SearchRegistry};
use crate::store::{StoreRegistry, StoreSessionHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Every decode-time cap the server enforces — frame length,
    /// per-batch counts, config ranges, store-name length — in one
    /// [`Limits`] table applied uniformly by the frame reader.
    pub limits: Limits,
    /// How long a connection with no open (unfinished) job may sit
    /// without sending a frame before the server closes it. Connections
    /// waiting on a live job's results are exempt.
    pub idle_timeout: Duration,
    /// Per-job ingest queue depth, in spectra — the backpressure bound:
    /// submitters block once the pipeline is this far behind.
    pub queue_depth: usize,
    /// Cap on frames queued toward one connection (direct acks plus its
    /// job subscription) — the fan-out bound: a subscriber whose queue
    /// is full when a result frame arrives is dropped from the job, so
    /// a stalled client never accumulates a job's output server-side.
    pub outbound_queue_depth: usize,
    /// Reader poll interval: the granularity at which shutdown and idle
    /// deadlines are noticed.
    pub poll_interval: Duration,
    /// Once a frame has started arriving, the per-read deadline for the
    /// rest of it; a mid-frame stall is treated as a truncated frame.
    /// Also the writer's per-write deadline: a peer whose socket stops
    /// accepting bytes this long is disconnected.
    pub frame_deadline: Duration,
    /// Load-shedding bound: at most this many clustering jobs may be
    /// live at once. An `OpenJob` that would create one more is refused
    /// with the **retryable** [`ErrorCode::Busy`] — clients back off and
    /// retry instead of the server over-committing memory and threads.
    pub max_jobs: usize,
    /// How long a disconnected participant's job slot stays resumable:
    /// a connection that dies without `CloseJob` can reconnect within
    /// this window, re-open the job with the same `client_id`, and
    /// resume (missed result frames are replayed, submit sequencing
    /// continues). Zero restores disconnect-is-close. Also the linger a
    /// finished job (and an emptied search job) stays joinable for.
    /// Store sessions use the same window: a disconnected holder's
    /// exclusive slot stays resumable this long before the store frees.
    pub rejoin_grace: Duration,
    /// Directory of `<name>.shpk` cluster-store backing files for
    /// `OpenStore`/`PersistStore` sessions. `None` (the default) keeps
    /// stores memory-only and refuses `PersistStore`.
    pub store_dir: Option<PathBuf>,
    /// Load-shedding bound on resident cluster stores; an `OpenStore`
    /// that would create one more is refused with the retryable
    /// [`ErrorCode::StoreBusy`].
    pub max_stores: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(60),
            queue_depth: 1024,
            outbound_queue_depth: 4096,
            poll_interval: Duration::from_millis(50),
            frame_deadline: Duration::from_secs(10),
            max_jobs: 1024,
            rejoin_grace: Duration::from_secs(2),
            store_dir: None,
            max_stores: 1024,
        }
    }
}

/// A bound, not-yet-serving clustering server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    registry: Arc<JobRegistry>,
    search_registry: Arc<SearchRegistry>,
    store_registry: Arc<StoreRegistry>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let registry = Arc::new(JobRegistry::with_policy(
            config.queue_depth,
            config.max_jobs,
            config.rejoin_grace,
        ));
        let search_registry = Arc::new(SearchRegistry::with_linger(config.rejoin_grace));
        let store_registry = Arc::new(StoreRegistry::new(
            config.store_dir.clone(),
            config.rejoin_grace,
            config.max_stores,
        ));
        Ok(Self {
            listener,
            config,
            registry,
            search_registry,
            store_registry,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that, once set, makes [`Server::serve`] return after its
    /// next accept. Combine with a wake-up connection to the bound
    /// address, or use [`Server::spawn`] which does both.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until the shutdown flag is set, then drains: waits for
    /// every connection thread to exit (dropping their job senders) and
    /// joins every job pipeline. Blocking — see [`Server::spawn`] for
    /// the backgrounded variant.
    pub fn serve(self) -> std::io::Result<()> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let config = self.config.clone();
            let registry = Arc::clone(&self.registry);
            let search_registry = Arc::clone(&self.search_registry);
            let store_registry = Arc::clone(&self.store_registry);
            let shutdown = Arc::clone(&self.shutdown);
            connections.retain(|c| !c.is_finished());
            connections.push(
                std::thread::Builder::new()
                    .name("spechd-conn".into())
                    .spawn(move || {
                        handle_connection(
                            stream,
                            config,
                            registry,
                            search_registry,
                            store_registry,
                            shutdown,
                        )
                    })
                    .expect("spawn connection thread"),
            );
        }
        for conn in connections {
            let _ = conn.join();
        }
        self.registry.join_pipelines();
        Ok(())
    }

    /// Serves on a background thread; the returned handle shuts the
    /// server down (and drains it) when asked or dropped.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_flag();
        let thread = std::thread::Builder::new()
            .name("spechd-accept".into())
            .spawn(move || self.serve())
            .expect("spawn accept thread");
        Ok(RunningServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// A server running on a background thread.
pub struct RunningServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown, wakes the accept loop, and waits for the
    /// server to drain (connections closed, job pipelines joined).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = thread.join();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What the polling frame reader produced.
enum ReadEvent {
    Frame(Frame),
    /// Clean close, idle kill, shutdown, or an I/O failure — in every
    /// case the connection is done; a `Some` carries the parting error.
    Hangup(Option<(ErrorCode, String)>),
}

fn handle_connection(
    stream: TcpStream,
    config: ServerConfig,
    registry: Arc<JobRegistry>,
    search_registry: Arc<SearchRegistry>,
    store_registry: Arc<StoreRegistry>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A peer that stops accepting bytes fails the writer at the frame
    // deadline (which shuts the socket down, unblocking the reader too)
    // instead of wedging the connection threads forever.
    let _ = writer_stream.set_write_timeout(Some(config.frame_deadline));
    let (out_tx, out_rx) = mpsc::sync_channel::<Frame>(config.outbound_queue_depth.max(1));
    let writer = std::thread::Builder::new()
        .name("spechd-conn-writer".into())
        .spawn(move || writer_loop(writer_stream, out_rx))
        .expect("spawn connection writer thread");

    let mut reader = FrameReader::new(stream, &config);
    let mut handle: Option<JobHandle> = None;
    let mut search: Option<SearchHandle> = None;
    let mut store: Option<StoreSessionHandle> = None;
    loop {
        // Idle exemption stays clustering-only: search and store
        // sessions never push unsolicited frames, so a connection
        // merely *holding* one open is idle if it stops sending — the
        // timeout reclaims it (and the handle's drop leaves the job /
        // detaches the store session into its rejoin grace).
        let engaged = handle.as_ref().is_some_and(JobHandle::is_active);
        match reader.next_frame(&shutdown, engaged) {
            ReadEvent::Frame(frame) => dispatch(
                frame,
                &mut handle,
                &mut search,
                &mut store,
                &registry,
                &search_registry,
                &store_registry,
                &out_tx,
            ),
            ReadEvent::Hangup(parting) => {
                if let Some((code, message)) = parting {
                    let _ = out_tx.send(Frame::Error { code, message });
                }
                break;
            }
        }
    }
    // Dropping the handles ends this connection's job participations;
    // if it was a job's last participant the clustering stream ends
    // (pipeline finalizes) / the search job is removed / the store
    // session detaches into its rejoin grace. Dropping `out_tx` lets
    // the writer exit once the job's subscription (if any) is gone too.
    drop(handle);
    drop(search);
    drop(store);
    drop(out_tx);
    let _ = writer.join();
}

/// Reads frames off a socket with a poll loop for the first byte (so
/// shutdown and idle deadlines are honored between frames) and a
/// deadline for the rest of each frame.
struct FrameReader {
    stream: TcpStream,
    limits: Limits,
    idle_timeout: Duration,
    poll_interval: Duration,
    frame_deadline: Duration,
    last_activity: Instant,
}

impl FrameReader {
    fn new(stream: TcpStream, config: &ServerConfig) -> Self {
        Self {
            stream,
            limits: config.limits.clone(),
            idle_timeout: config.idle_timeout,
            poll_interval: config.poll_interval,
            frame_deadline: config.frame_deadline,
            last_activity: Instant::now(),
        }
    }

    fn next_frame(&mut self, shutdown: &AtomicBool, engaged: bool) -> ReadEvent {
        // Phase 1: poll for the frame's first byte.
        let mut header = [0u8; HEADER_LEN];
        if self
            .stream
            .set_read_timeout(Some(self.poll_interval))
            .is_err()
        {
            return ReadEvent::Hangup(None);
        }
        loop {
            if shutdown.load(Ordering::Acquire) {
                return ReadEvent::Hangup(Some((
                    ErrorCode::ServerShutdown,
                    "server shutting down".into(),
                )));
            }
            match self.stream.read(&mut header[..1]) {
                Ok(0) => return ReadEvent::Hangup(None),
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if !engaged && self.last_activity.elapsed() >= self.idle_timeout {
                        return ReadEvent::Hangup(Some((
                            ErrorCode::IdleTimeout,
                            "connection idle with no open job".into(),
                        )));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadEvent::Hangup(None),
            }
        }
        // Phase 2: the frame has started — finish it under a deadline.
        if self
            .stream
            .set_read_timeout(Some(self.frame_deadline))
            .is_err()
        {
            return ReadEvent::Hangup(None);
        }
        if let Err(e) = self.stream.read_exact(&mut header[1..]) {
            return hangup_for(truncation(e, "header"));
        }
        let (frame_type, len) = match parse_header(&header, self.limits.max_frame_len) {
            Ok(parsed) => parsed,
            Err(e) => return hangup_for(e),
        };
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = self.stream.read_exact(&mut payload) {
            return hangup_for(truncation(e, "payload"));
        }
        match decode_payload(frame_type, &payload, &self.limits) {
            Ok(frame) => {
                self.last_activity = Instant::now();
                ReadEvent::Frame(frame)
            }
            Err(e) => hangup_for(e),
        }
    }
}

fn truncation(e: std::io::Error, what: &str) -> WireError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::WouldBlock
        | std::io::ErrorKind::TimedOut => WireError::Truncated(format!("stalled inside {what}")),
        _ => WireError::Io(e),
    }
}

fn hangup_for(e: WireError) -> ReadEvent {
    let parting = match &e {
        WireError::Closed | WireError::Io(_) => None,
        _ => Some((e.error_code(), e.to_string())),
    };
    ReadEvent::Hangup(parting)
}

/// Resolves the connection's search handle for a frame naming
/// `(job_id, dim)`: reuses the held handle when it matches, opens or
/// joins the job when none is held, and rejects a mismatch — one
/// connection drives at most one search job at a time (the search
/// session ends with the connection; there is no search `CloseJob`).
fn ensure_search<'a>(
    search: &'a mut Option<SearchHandle>,
    registry: &Arc<SearchRegistry>,
    job_id: u64,
    dim: u32,
) -> Result<&'a SearchHandle, crate::job::JobError> {
    if let Some(h) = search {
        if h.job_id() != job_id {
            return Err(crate::job::JobError {
                code: ErrorCode::ProtocolState,
                message: format!("connection is in search job {}, not {job_id}", h.job_id()),
            });
        }
        if h.dim() != dim {
            return Err(crate::job::JobError {
                code: ErrorCode::ConfigMismatch,
                message: format!("search job {job_id} has dim {}, not {dim}", h.dim()),
            });
        }
    } else {
        *search = Some(registry.open_or_join(job_id, dim)?);
    }
    Ok(search.as_ref().expect("search handle just ensured"))
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    frame: Frame,
    handle: &mut Option<JobHandle>,
    search: &mut Option<SearchHandle>,
    store: &mut Option<StoreSessionHandle>,
    registry: &Arc<JobRegistry>,
    search_registry: &Arc<SearchRegistry>,
    store_registry: &Arc<StoreRegistry>,
    out_tx: &mpsc::SyncSender<Frame>,
) {
    let reply = |frame: Frame| {
        let _ = out_tx.send(frame);
    };
    let state_error = |message: String| {
        reply(Frame::Error {
            code: ErrorCode::ProtocolState,
            message,
        });
    };
    match frame {
        Frame::OpenJob {
            job_id,
            client_id,
            config,
        } => {
            // A settled handle (closed, job finished) no longer
            // occupies the connection: vacate it so jobs can run
            // sequentially on one socket.
            if handle.as_ref().is_some_and(JobHandle::is_settled) {
                *handle = None;
            }
            if handle.is_some() {
                state_error("connection already has an open job".into());
                return;
            }
            match registry.open_or_join(job_id, client_id, config, out_tx.clone()) {
                Ok(h) => {
                    reply(Frame::JobStats(h.stats()));
                    *handle = Some(h);
                }
                Err(e) => reply(Frame::Error {
                    code: e.code,
                    message: e.message,
                }),
            }
        }
        Frame::Submit {
            job_id,
            seq,
            spectra,
        } => match handle {
            Some(h) if h.job_id() == job_id => match h.submit(seq, spectra) {
                Ok((base, count)) => reply(Frame::SubmitAck {
                    job_id,
                    seq,
                    base,
                    count,
                }),
                Err(e) => reply(Frame::Error {
                    code: e.code,
                    message: e.message,
                }),
            },
            _ => state_error(format!("job {job_id} is not open on this connection")),
        },
        Frame::Flush { job_id } => match handle {
            Some(h) if h.job_id() == job_id => reply(Frame::JobStats(h.stats())),
            _ => state_error(format!("job {job_id} is not open on this connection")),
        },
        Frame::CloseJob { job_id } => match handle {
            Some(h) if h.job_id() == job_id => h.close(),
            _ => state_error(format!("job {job_id} is not open on this connection")),
        },
        Frame::LoadLibrary {
            job_id,
            dim,
            entries,
        } => match ensure_search(search, search_registry, job_id, dim) {
            Ok(h) => match h.load(entries) {
                Ok(stats) => reply(Frame::SearchStats(stats)),
                Err(e) => reply(Frame::Error {
                    code: e.code,
                    message: e.message,
                }),
            },
            Err(e) => reply(Frame::Error {
                code: e.code,
                message: e.message,
            }),
        },
        Frame::SearchQuery {
            job_id,
            dim,
            window_da,
            top_k,
            queries,
        } => match ensure_search(search, search_registry, job_id, dim) {
            Ok(h) => {
                // Hit frames go through the same bounded outbound
                // queue as everything else: a full queue blocks the
                // reader here, so a client that stops draining its
                // results stops being served — backpressure, not
                // buffering.
                let stats = h.query(window_da, top_k, queries, &reply);
                reply(Frame::SearchStats(stats));
            }
            Err(e) => reply(Frame::Error {
                code: e.code,
                message: e.message,
            }),
        },
        Frame::OpenStore {
            name,
            client_id,
            config,
        } => {
            let job_error = |e: crate::job::JobError| {
                reply(Frame::Error {
                    code: e.code,
                    message: e.message,
                });
            };
            if let Some(h) = store {
                // Idempotent re-open of the held session (same store,
                // same participant) is a stats snapshot; anything else
                // would need a second session on one connection.
                if h.name() == name && h.client_id() == client_id {
                    match h.stats() {
                        Ok(ack) => reply(Frame::StoreAck(ack)),
                        Err(e) => job_error(e),
                    }
                } else {
                    state_error("connection already has an open store session".into());
                }
                return;
            }
            match store_registry.open(&name, client_id, &config) {
                Ok(h) => match h.stats() {
                    Ok(ack) => {
                        reply(Frame::StoreAck(ack));
                        *store = Some(h);
                    }
                    Err(e) => job_error(e),
                },
                Err(e) => job_error(e),
            }
        }
        Frame::SubmitIncremental { name, seq, spectra } => match store {
            Some(h) if h.name() == name => match h.submit_incremental(seq, spectra) {
                Ok(ack) => reply(Frame::IncrementalAck(ack)),
                Err(e) => reply(Frame::Error {
                    code: e.code,
                    message: e.message,
                }),
            },
            _ => state_error(format!("store {name} is not open on this connection")),
        },
        Frame::PersistStore { name } => match store {
            Some(h) if h.name() == name => reply(store_ack_or_error(h.persist())),
            _ => state_error(format!("store {name} is not open on this connection")),
        },
        Frame::StoreStats { name } => match store {
            Some(h) if h.name() == name => reply(store_ack_or_error(h.stats())),
            _ => state_error(format!("store {name} is not open on this connection")),
        },
        Frame::RefreshStore { name } => match store {
            Some(h) if h.name() == name => reply(store_ack_or_error(h.refresh())),
            _ => state_error(format!("store {name} is not open on this connection")),
        },
        Frame::SubmitAck { .. }
        | Frame::Assignment { .. }
        | Frame::Consensus { .. }
        | Frame::JobStats(_)
        | Frame::SearchHit { .. }
        | Frame::SearchStats(_)
        | Frame::IncrementalAck(_)
        | Frame::StoreAck(_)
        | Frame::Error { .. } => {
            state_error("server-to-client frame sent by client".into());
        }
    }
}

/// Folds a store-session admin result into the single frame that goes
/// back to the client.
fn store_ack_or_error(result: Result<StoreAckFrame, crate::job::JobError>) -> Frame {
    match result {
        Ok(ack) => Frame::StoreAck(ack),
        Err(e) => Frame::Error {
            code: e.code,
            message: e.message,
        },
    }
}

/// Drains the connection's outbound queue onto the socket, batching
/// writes and flushing at queue-empty boundaries. Exits when every
/// sender is gone (reader exited and job subscription pruned) or on a
/// write failure — in which case it shuts the socket down so the
/// reader notices too.
fn writer_loop(stream: TcpStream, out_rx: mpsc::Receiver<Frame>) {
    let mut w = std::io::BufWriter::new(stream);
    while let Ok(frame) = out_rx.recv() {
        if write_frame(&mut w, &frame).is_err() {
            break;
        }
        let mut flush_due = true;
        while let Ok(next) = out_rx.try_recv() {
            if write_frame(&mut w, &next).is_err() {
                flush_due = false;
                break;
            }
        }
        if !flush_due || w.flush().is_err() {
            break;
        }
    }
    if let Ok(stream) = w.into_inner() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}
