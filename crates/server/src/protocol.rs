//! The `spechd` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SPHD"
//! 4       2     protocol version (little-endian u16, currently 3)
//! 6       1     frame type (see [`FrameType`])
//! 7       1     reserved (must be 0)
//! 8       4     payload length in bytes (little-endian u32)
//! 12      len   payload
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 little-endian bit
//! patterns, so encoding is deterministic and byte-exact round-trippable
//! (`decode(encode(f)) == f` *and* `encode(decode(b)) == b` — the
//! robustness suite checks both for every frame type). Strings are
//! `u32` length + UTF-8 bytes; vectors are `u32` count + elements.
//!
//! A reader must reject, without reading the payload: wrong magic, wrong
//! version, unknown frame type, a non-zero reserved byte, and a length
//! prefix above its configured cap ([`DEFAULT_MAX_FRAME_LEN`] by
//! default) — the cap is what keeps a hostile 4 GiB length prefix from
//! becoming an allocation. Payload decoding then rejects truncated or
//! trailing bytes. The server treats any of these as fatal for the
//! *connection* (an [`Frame::Error`] is sent best-effort, then the socket
//! closes); the server itself keeps serving.
//!
//! Every decode-time cap — the frame cap, the config knobs, the batch
//! counts, the store-name bound — lives in one configurable
//! [`Limits`] value threaded into
//! [`decode_payload`] and [`read_frame`]; the `MAX_*` constants
//! re-exported here are its documented defaults (see [`crate::limits`]).

use crate::limits::Limits;
use spechd_cluster::Linkage;
use spechd_core::{SpecHdConfig, StreamConfig};
use spechd_ms::{MsError, Peak, Precursor, Spectrum};
use std::io::{Read, Write};

pub use crate::limits::{
    DEFAULT_MAX_FRAME_LEN, MAX_INCREMENTAL_BATCH, MAX_LIBRARY_BATCH, MAX_QUERY_BATCH,
    MAX_SEARCH_WINDOW_DA, MAX_STORE_NAME_LEN, MAX_TOP_K, MAX_WATERMARK, MAX_WORKERS,
};

/// Frame magic: `b"SPHD"`.
pub const MAGIC: [u8; 4] = *b"SPHD";
/// Current protocol version. Version 3 added the store-session frames
/// ([`Frame::OpenStore`] … [`Frame::StoreAck`]) and
/// [`ErrorCode::StoreBusy`]; version 2 added `client_id` to
/// [`Frame::OpenJob`] and `seq` to [`Frame::Submit`]/[`Frame::SubmitAck`]
/// — the identities that make reconnect-and-resume idempotent.
pub const VERSION: u16 = 3;
/// Header size in bytes (magic + version + type + reserved + length).
pub const HEADER_LEN: usize = 12;

/// Frame type discriminants as they appear on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client→server: open (or join) a clustering job.
    OpenJob = 0x01,
    /// Client→server: submit a batch of spectra into the open job.
    Submit = 0x02,
    /// Client→server: barrier; server acks with a [`Frame::JobStats`].
    Flush = 0x03,
    /// Client→server: this participant is done submitting.
    CloseJob = 0x04,
    /// Client→server: load a batch of entries into a search job's
    /// library (opens or joins the job).
    LoadLibrary = 0x05,
    /// Client→server: search a batch of query hypervectors against the
    /// job's library (seals the library on first use).
    SearchQuery = 0x06,
    /// Client→server: open (or resume) an exclusive session on a named
    /// persistent cluster store.
    OpenStore = 0x07,
    /// Client→server: fold an installment of spectra into the session's
    /// store via the incremental pipeline.
    SubmitIncremental = 0x08,
    /// Client→server: durably save the session's store to disk.
    PersistStore = 0x09,
    /// Client→server: request a [`Frame::StoreAck`] snapshot of the
    /// session's store.
    StoreStats = 0x0A,
    /// Client→server: run the medoid refresh / compaction pass on the
    /// session's store (admin; outside the stable-label contract).
    RefreshStore = 0x0B,
    /// Server→client: a `Submit` was ingested; carries the batch's base
    /// stream index.
    SubmitAck = 0x10,
    /// Server→client: one finalized shard's raw cluster assignment.
    Assignment = 0x11,
    /// Server→client: consensus (medoid) stream indices for one shard's
    /// raw cluster block.
    Consensus = 0x12,
    /// Server→client: job statistics snapshot (also the `OpenJob` and
    /// `Flush` ack, and the final `done` marker).
    JobStats = 0x13,
    /// Server→client: one query's top-k search hits.
    SearchHit = 0x14,
    /// Server→client: search-job statistics snapshot (the `LoadLibrary`
    /// ack, and the terminator of every `SearchQuery`'s hit frames).
    SearchStats = 0x15,
    /// Server→client: one `SubmitIncremental` was folded in; carries the
    /// installment's kept indices and stable labels.
    IncrementalAck = 0x16,
    /// Server→client: a store snapshot — the ack of `OpenStore`,
    /// `PersistStore`, `StoreStats` and `RefreshStore`.
    StoreAck = 0x17,
    /// Server→client: an error. Fatal errors are followed by a close.
    Error = 0x1F,
}

impl FrameType {
    fn from_wire(byte: u8) -> Option<Self> {
        Some(match byte {
            0x01 => Self::OpenJob,
            0x02 => Self::Submit,
            0x03 => Self::Flush,
            0x04 => Self::CloseJob,
            0x05 => Self::LoadLibrary,
            0x06 => Self::SearchQuery,
            0x07 => Self::OpenStore,
            0x08 => Self::SubmitIncremental,
            0x09 => Self::PersistStore,
            0x0A => Self::StoreStats,
            0x0B => Self::RefreshStore,
            0x10 => Self::SubmitAck,
            0x11 => Self::Assignment,
            0x12 => Self::Consensus,
            0x13 => Self::JobStats,
            0x14 => Self::SearchHit,
            0x15 => Self::SearchStats,
            0x16 => Self::IncrementalAck,
            0x17 => Self::StoreAck,
            0x1F => Self::Error,
            _ => return None,
        })
    }
}

/// Error codes carried by [`Frame::Error`], partitioned into two
/// documented ranges:
///
/// * `0x01..=0x3F` — **fatal**: the request (and usually the
///   connection) cannot succeed by being re-sent; the client must
///   change something or give up.
/// * `0x40..` — **retryable**: a transient server condition; the same
///   request is expected to succeed after a bounded backoff
///   (see `RetryPolicy` in this crate).
///
/// Both clients reject error codes outside the known set at decode time
/// (`ErrorCode::from_wire` is total over known codes only), so an
/// unknown code from a newer peer is a [`WireError::Malformed`], never a
/// silently misclassified retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be parsed; the connection will be closed.
    Malformed = 0x01,
    /// A frame arrived in a state that does not allow it (e.g. `Submit`
    /// before `OpenJob`). The connection stays open.
    ProtocolState = 0x02,
    /// `OpenJob` named a job that is finalizing and cannot accept new
    /// participants.
    JobClosed = 0x03,
    /// `OpenJob` tried to join an existing job with a different config.
    ConfigMismatch = 0x04,
    /// The connection sat idle (no open job, no frames) too long.
    IdleTimeout = 0x05,
    /// A length prefix exceeded the server's frame cap.
    Oversized = 0x06,
    /// The server is shutting down.
    ServerShutdown = 0x07,
    /// The server is saturated (job registry full) and sheds this
    /// request; the client should back off and retry.
    Busy = 0x40,
    /// The named store has a live (or grace-period) session held by
    /// another client, or a transient server-side condition kept the
    /// store operation from completing; exclusive write sessions mean
    /// the same request is expected to succeed once the holder detaches,
    /// so the client should back off and retry.
    StoreBusy = 0x41,
}

impl ErrorCode {
    fn from_wire(byte: u8) -> Option<Self> {
        Some(match byte {
            0x01 => Self::Malformed,
            0x02 => Self::ProtocolState,
            0x03 => Self::JobClosed,
            0x04 => Self::ConfigMismatch,
            0x05 => Self::IdleTimeout,
            0x06 => Self::Oversized,
            0x07 => Self::ServerShutdown,
            0x40 => Self::Busy,
            0x41 => Self::StoreBusy,
            _ => return None,
        })
    }

    /// Whether this code falls in the retryable range (`>= 0x40`): the
    /// same request may succeed after a bounded backoff.
    pub fn is_retryable(self) -> bool {
        (self as u8) >= 0x40
    }
}

/// The `SpecHdConfig` subset a client may set per job, plus the streaming
/// knobs. Everything else (item-memory seeds, preprocessing) stays at the
/// server's paper defaults so all participants of a job agree on them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Hypervector dimensionality `D`.
    pub dim: u32,
    /// Eq. (1) bucketing resolution in Dalton.
    pub resolution: f64,
    /// Cluster-cut threshold as a fraction of `D`.
    pub threshold_fraction: f64,
    /// HAC linkage criterion (wire: 0 single, 1 complete, 2 average,
    /// 3 ward).
    pub linkage: Linkage,
    /// [`StreamConfig::watermark`] of the job's pipeline. The wire
    /// accepts only `[1, MAX_WATERMARK]`: the unbounded mode (0) is not
    /// offered over the network (see [`MAX_WATERMARK`]).
    pub watermark: u32,
    /// [`StreamConfig::workers`] of the job's pipeline (0 = all
    /// available on the server). The wire rejects counts above
    /// [`MAX_WORKERS`].
    pub workers: u32,
}

impl Default for JobConfig {
    fn default() -> Self {
        let spechd = SpecHdConfig::default();
        let stream = StreamConfig::default();
        Self {
            dim: spechd.encoder.dim as u32,
            resolution: spechd.resolution,
            threshold_fraction: spechd.distance_threshold_fraction,
            linkage: spechd.linkage,
            watermark: stream.watermark as u32,
            workers: stream.workers as u32,
        }
    }
}

impl JobConfig {
    /// The pipeline configuration this job clusters with: the wire subset
    /// applied over [`SpecHdConfig::default`]. `JobConfig::default()`
    /// maps to exactly `SpecHdConfig::default()`, which is what makes
    /// server results comparable against local batch runs.
    pub fn pipeline_config(&self) -> SpecHdConfig {
        let encoder = spechd_core::EncoderConfig {
            dim: self.dim as usize,
            ..Default::default()
        };
        SpecHdConfig::builder()
            .encoder(encoder)
            .resolution(self.resolution)
            .distance_threshold_fraction(self.threshold_fraction)
            .linkage(self.linkage)
            .build()
    }

    /// The streaming configuration of the job's pipeline. The archive is
    /// never kept server-side — results leave as frames, and dropping the
    /// archive is proven label-identical by the pr5 equivalence suite.
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            watermark: self.watermark as usize,
            workers: self.workers as usize,
            keep_hypervectors: false,
        }
    }
}

fn linkage_to_wire(linkage: Linkage) -> u8 {
    match linkage {
        Linkage::Single => 0,
        Linkage::Complete => 1,
        Linkage::Average => 2,
        Linkage::Ward => 3,
    }
}

fn linkage_from_wire(byte: u8) -> Result<Linkage, WireError> {
    Ok(match byte {
        0 => Linkage::Single,
        1 => Linkage::Complete,
        2 => Linkage::Average,
        3 => Linkage::Ward,
        other => return Err(WireError::malformed(format!("unknown linkage {other}"))),
    })
}

/// The statistics snapshot carried by [`Frame::JobStats`]. Counter
/// meanings match the pipeline's [`spechd_core::StreamStats`] /
/// [`spechd_core::RunStats`]; `done != 0` marks the job's final frame,
/// after which `clusters`, `kept` and the HAC counters are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStatsFrame {
    /// The job this snapshot describes.
    pub job_id: u64,
    /// Participants currently attached (have opened, not yet closed).
    pub participants: u32,
    /// Spectra accepted into the job's ingest queue so far.
    pub submitted: u64,
    /// Spectra pulled from the queue by the pipeline (final value only).
    pub streamed: u64,
    /// Spectra surviving preprocessing (final value only).
    pub kept: u64,
    /// Shards opened so far (final value only).
    pub shards_opened: u32,
    /// Shards whose clustering has finished.
    pub shards_clustered: u32,
    /// Dense global cluster count (final frame only; 0 before).
    pub clusters: u64,
    /// Aggregate HAC distance comparisons (final frame only).
    pub hac_comparisons: u64,
    /// Aggregate Lance–Williams updates (final frame only).
    pub hac_updates: u64,
    /// Aggregate HAC merges (final frame only).
    pub hac_merges: u64,
    /// Non-zero once the job has finalized and all result frames for it
    /// have been sent.
    pub done: u8,
}

/// One library entry as shipped in a [`Frame::LoadLibrary`]. Rows are
/// raw packed hypervector words — exactly `dim.div_ceil(64)` of them,
/// with any bits at or beyond `dim` in the last word zero (the decoder
/// rejects anything else, which is what lets the server feed rows into
/// the packed store without re-validating).
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntryWire {
    /// Precursor neutral mass in Dalton (must be finite).
    pub mass: f64,
    /// Precursor charge (0 = unknown).
    pub charge: u8,
    /// Whether this entry is a decoy.
    pub is_decoy: bool,
    /// Entry identifier (peptide sequence, consensus cluster id, …).
    pub id: String,
    /// Packed hypervector words, little-endian bit order.
    pub words: Vec<u64>,
}

/// One query as shipped in a [`Frame::SearchQuery`]: a packed query
/// hypervector (same word-layout contract as [`LibraryEntryWire`]) and
/// its precursor neutral mass, the center of the search window.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWire {
    /// Precursor neutral mass in Dalton (must be finite).
    pub mass: f64,
    /// Packed hypervector words, little-endian bit order.
    pub words: Vec<u64>,
}

/// One search hit as shipped in a [`Frame::SearchHit`].
#[derive(Debug, Clone, PartialEq)]
pub struct HitWire {
    /// Row index of the matched entry in the job's library.
    pub library_index: u64,
    /// Hamming distance between query and entry (lower is better).
    pub distance: u16,
    /// `query_mass − entry_mass` in Dalton.
    pub mass_delta: f64,
    /// Whether the matched entry is a decoy.
    pub is_decoy: bool,
    /// The matched entry's identifier.
    pub id: String,
}

/// The statistics snapshot carried by [`Frame::SearchStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStatsFrame {
    /// The search job this snapshot describes.
    pub job_id: u64,
    /// Participants currently attached to the job.
    pub participants: u32,
    /// Library entries loaded so far (targets + decoys).
    pub entries: u64,
    /// Target entries loaded so far.
    pub targets: u64,
    /// Decoy entries loaded so far.
    pub decoys: u64,
    /// Non-zero once the library is sealed (first query arrived); no
    /// further `LoadLibrary` frames are accepted after this.
    pub sealed: u8,
    /// Queries scored so far.
    pub queries: u64,
    /// Hits returned so far.
    pub hits: u64,
}

/// The acknowledgement of one [`Frame::SubmitIncremental`], carried by
/// [`Frame::IncrementalAck`]: which spectra of the installment survived
/// preprocessing, the stable label each one received, and the
/// installment's work counters. Labels of earlier installments are never
/// disturbed (outside an explicit [`Frame::RefreshStore`]), so a client
/// reconstructs the full assignment by concatenating ack slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalAckFrame {
    /// The store this installment was folded into.
    pub name: String,
    /// The acknowledged installment's sequence number, echoing
    /// [`Frame::SubmitIncremental::seq`] (also on re-acks of
    /// duplicates).
    pub seq: u64,
    /// First global spectrum id assigned to this installment; its kept
    /// spectra own ids `base_id .. base_id + kept.len()`.
    pub base_id: u64,
    /// For each kept spectrum (in global-id order), its index in the
    /// installment's submitted batch.
    pub kept: Vec<u32>,
    /// Dense global cluster label per kept spectrum, parallel to
    /// `kept`. Stable: re-running earlier installments yields the same
    /// prefix verbatim.
    pub labels: Vec<u64>,
    /// Kept spectra absorbed into an existing cluster.
    pub absorbed: u64,
    /// Kept spectra no existing cluster accepted (reclustered among
    /// themselves).
    pub residual: u64,
    /// Clusters appended by this installment.
    pub new_clusters: u64,
    /// Spectra the store has absorbed across all installments, after
    /// this one.
    pub total_spectra: u64,
    /// Clusters the store holds after this installment.
    pub total_clusters: u64,
}

/// The store snapshot carried by [`Frame::StoreAck`]: the ack of
/// [`Frame::OpenStore`], [`Frame::PersistStore`], [`Frame::StoreStats`]
/// and [`Frame::RefreshStore`]. `persisted`/`refreshed`/`merged` refer
/// to the acknowledged operation; everything else is current state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreAckFrame {
    /// The store this snapshot describes.
    pub name: String,
    /// Hypervector dimensionality the store is bound to.
    pub dim: u32,
    /// Config fingerprint the store is bound to; an `OpenStore` whose
    /// config fingerprints differently is a
    /// [`ErrorCode::ConfigMismatch`].
    pub fingerprint: u64,
    /// Spectra absorbed across the store's lifetime.
    pub spectra: u64,
    /// Precursor buckets in the store.
    pub buckets: u64,
    /// Clusters in the store.
    pub clusters: u64,
    /// Non-zero if the store keeps per-member rows (required for
    /// `RefreshStore`).
    pub keeps_member_rows: u8,
    /// Non-zero if the in-memory store has changes not yet persisted.
    pub dirty: u8,
    /// Non-zero if this ack confirms a completed `PersistStore`.
    pub persisted: u8,
    /// Clusters whose medoid changed in the acknowledged refresh
    /// (0 unless this acks a `RefreshStore`).
    pub refreshed: u64,
    /// Clusters removed by merging in the acknowledged refresh
    /// (0 unless this acks a `RefreshStore`).
    pub merged: u64,
}

/// A decoded protocol frame. See the [module docs](self) for the wire
/// layout and [`FrameType`] for direction and intent.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Open a new job or join an existing one (configs must match).
    ///
    /// `client_id` names the *participant*, independent of the TCP
    /// connection: a client that reconnects after a network failure
    /// re-sends `OpenJob` with its original `client_id` and resumes its
    /// slot — the server replays any result frames it missed and
    /// deduplicates re-sent submits by `seq`.
    OpenJob {
        /// Caller-chosen job identity; all participants use the same id.
        job_id: u64,
        /// Caller-chosen participant identity within the job, stable
        /// across reconnects. Two live connections must not share one.
        client_id: u64,
        /// The job's pipeline configuration.
        config: JobConfig,
    },
    /// Submit a batch of spectra into the connection's open job.
    Submit {
        /// Must match the connection's open job.
        job_id: u64,
        /// Per-participant submit sequence number, starting at 0 and
        /// incremented per batch. A re-sent batch (after a lost ack)
        /// carries the same `seq`; the server ingests each `seq` once
        /// and re-acks duplicates — that is what makes reconnect-resume
        /// idempotent.
        seq: u64,
        /// The spectra, appended to the job's stream in batch order.
        spectra: Vec<Spectrum>,
    },
    /// Barrier: the server replies with a [`Frame::JobStats`] once every
    /// earlier frame on this connection has been processed.
    Flush {
        /// Must match the connection's open job.
        job_id: u64,
    },
    /// This participant is done submitting. When the last participant
    /// closes, the job's stream ends and the pipeline finalizes.
    CloseJob {
        /// Must match the connection's open job.
        job_id: u64,
    },
    /// Load entries into a search job's library, opening or joining the
    /// job (dims must match). An empty batch is a valid join-only frame.
    /// The server acks each batch with a [`Frame::SearchStats`]. At most
    /// [`MAX_LIBRARY_BATCH`] entries per frame.
    LoadLibrary {
        /// Caller-chosen search-job identity; independent of clustering
        /// job ids.
        job_id: u64,
        /// Hypervector dimensionality of every entry in the job.
        dim: u32,
        /// The entries to append.
        entries: Vec<LibraryEntryWire>,
    },
    /// Search query hypervectors against the job's library. The first
    /// `SearchQuery` seals the library (sorts it by mass); the server
    /// replies with one [`Frame::SearchHit`] per query followed by one
    /// [`Frame::SearchStats`]. At most [`MAX_QUERY_BATCH`] queries per
    /// frame.
    SearchQuery {
        /// Must name an open search job with matching `dim`.
        job_id: u64,
        /// Hypervector dimensionality of every query in the frame.
        dim: u32,
        /// Search-window half-width in Dalton: fractions of a Dalton
        /// for standard search, hundreds for open-modification search.
        /// Capped at [`MAX_SEARCH_WINDOW_DA`].
        window_da: f64,
        /// Hits kept per query, in `[1, MAX_TOP_K]`.
        top_k: u32,
        /// The queries to score.
        queries: Vec<QueryWire>,
    },
    /// Open (or resume) an exclusive session on a named persistent
    /// cluster store; acked with a [`Frame::StoreAck`] snapshot.
    ///
    /// One client holds a store's write session at a time: a second
    /// client gets [`ErrorCode::StoreBusy`] (retryable) until the holder
    /// detaches and its rejoin grace expires. The same `client_id`
    /// re-opening resumes the session — the server re-acks the duplicate
    /// installment `seq` instead of re-ingesting it, which is what makes
    /// reconnect-resume idempotent on the incremental path too.
    ///
    /// Store names are file names on the server (`<store_dir>/<name>.shpk`),
    /// so they are capped in length and restricted to `[A-Za-z0-9_-]` at
    /// decode time.
    OpenStore {
        /// The store's name.
        name: String,
        /// Caller-chosen identity, stable across reconnects.
        client_id: u64,
        /// The engine configuration the store is (or will be) bound to.
        /// Opening an existing store with a config that fingerprints
        /// differently is an [`ErrorCode::ConfigMismatch`].
        config: JobConfig,
    },
    /// Fold an installment of spectra into the session's store via the
    /// incremental pipeline; acked with a [`Frame::IncrementalAck`].
    SubmitIncremental {
        /// Must match the connection's open store session.
        name: String,
        /// Per-session installment sequence number, starting at 0. A
        /// re-sent installment (after a lost ack) carries the same
        /// `seq`; the server folds each `seq` in once and re-acks
        /// duplicates.
        seq: u64,
        /// The installment's spectra, at most
        /// [`MAX_INCREMENTAL_BATCH`] per frame.
        spectra: Vec<Spectrum>,
    },
    /// Durably save the session's store to disk (the crash-safe
    /// tmp→fsync→rename path); acked with a [`Frame::StoreAck`].
    PersistStore {
        /// Must match the connection's open store session.
        name: String,
    },
    /// Request a [`Frame::StoreAck`] snapshot of the session's store.
    StoreStats {
        /// Must match the connection's open store session.
        name: String,
    },
    /// Run the medoid refresh / compaction pass on the session's store;
    /// acked with a [`Frame::StoreAck`] carrying the refresh counters.
    /// This is the one operation **outside** the stable-label contract:
    /// medoids may move and clusters may merge (labels compact).
    RefreshStore {
        /// Must match the connection's open store session.
        name: String,
    },
    /// Acknowledges one `Submit`: its spectra occupy stream indices
    /// `[base, base + count)`.
    SubmitAck {
        /// The acknowledged job.
        job_id: u64,
        /// The acknowledged batch's sequence number, echoing
        /// [`Frame::Submit::seq`] (also on re-acks of duplicates).
        seq: u64,
        /// First stream index assigned to the batch.
        base: u64,
        /// Number of spectra in the batch.
        count: u32,
    },
    /// One finalized shard's assignment. `members[i]` (a stream index)
    /// has raw cluster label `raw_base + labels[i]`; shards arrive in
    /// ascending `key` order, so raw labels form the same blocks
    /// `ShardLabelMerger` builds, and dense labels follow by first
    /// appearance in stream order (see `AssignmentAssembler`).
    Assignment {
        /// The job this shard belongs to.
        job_id: u64,
        /// The shard's precursor bucket key.
        key: i64,
        /// First raw cluster id of this shard's block.
        raw_base: u64,
        /// Member stream indices, ascending.
        members: Vec<u64>,
        /// Shard-local labels, parallel to `members`.
        labels: Vec<u32>,
    },
    /// Consensus (medoid) stream indices for one shard's raw cluster
    /// block: raw cluster `raw_base + i` has medoid `medoids[i]`.
    Consensus {
        /// The job this shard belongs to.
        job_id: u64,
        /// First raw cluster id of the block, matching the shard's
        /// [`Frame::Assignment`].
        raw_base: u64,
        /// Medoid stream index per raw cluster in the block.
        medoids: Vec<u64>,
    },
    /// A statistics snapshot: the `OpenJob`/`Flush` ack, or — with
    /// `done != 0` — the job's final frame. Never pushed unsolicited
    /// before the final frame, so a client waiting for a `Flush` ack
    /// can treat the first `JobStats` it sees as that ack.
    JobStats(JobStatsFrame),
    /// One query's top-k hits, ordered by `(distance, library_index)`
    /// ascending. `query_index` is the job-global index the server
    /// assigned to the query (contiguous per `SearchQuery` frame).
    SearchHit {
        /// The search job the query ran against.
        job_id: u64,
        /// Job-global index of the query.
        query_index: u64,
        /// The hits, best first.
        hits: Vec<HitWire>,
    },
    /// A search-job statistics snapshot: the `LoadLibrary` ack, and the
    /// terminator after a `SearchQuery`'s hit frames — a client can
    /// treat the first `SearchStats` after sending a batch as "all hits
    /// for that batch have arrived".
    SearchStats(SearchStatsFrame),
    /// The ack of one [`Frame::SubmitIncremental`]: kept indices, stable
    /// labels, and installment counters.
    IncrementalAck(IncrementalAckFrame),
    /// A store snapshot: the ack of [`Frame::OpenStore`],
    /// [`Frame::PersistStore`], [`Frame::StoreStats`] and
    /// [`Frame::RefreshStore`].
    StoreAck(StoreAckFrame),
    /// An error report. [`ErrorCode::Malformed`], [`ErrorCode::Oversized`]
    /// and [`ErrorCode::IdleTimeout`] are followed by a connection close.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    fn frame_type(&self) -> FrameType {
        match self {
            Frame::OpenJob { .. } => FrameType::OpenJob,
            Frame::Submit { .. } => FrameType::Submit,
            Frame::Flush { .. } => FrameType::Flush,
            Frame::CloseJob { .. } => FrameType::CloseJob,
            Frame::LoadLibrary { .. } => FrameType::LoadLibrary,
            Frame::SearchQuery { .. } => FrameType::SearchQuery,
            Frame::OpenStore { .. } => FrameType::OpenStore,
            Frame::SubmitIncremental { .. } => FrameType::SubmitIncremental,
            Frame::PersistStore { .. } => FrameType::PersistStore,
            Frame::StoreStats { .. } => FrameType::StoreStats,
            Frame::RefreshStore { .. } => FrameType::RefreshStore,
            Frame::SubmitAck { .. } => FrameType::SubmitAck,
            Frame::Assignment { .. } => FrameType::Assignment,
            Frame::Consensus { .. } => FrameType::Consensus,
            Frame::JobStats(_) => FrameType::JobStats,
            Frame::SearchHit { .. } => FrameType::SearchHit,
            Frame::SearchStats(_) => FrameType::SearchStats,
            Frame::IncrementalAck(_) => FrameType::IncrementalAck,
            Frame::StoreAck(_) => FrameType::StoreAck,
            Frame::Error { .. } => FrameType::Error,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O error (including timeouts and mid-frame disconnects).
    Io(std::io::Error),
    /// The header's magic bytes were wrong.
    BadMagic([u8; 4]),
    /// The header announced an unsupported protocol version.
    BadVersion(u16),
    /// The length prefix exceeded the reader's cap.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// The payload (or header) did not decode: trailing bytes, invalid
    /// values, or an unknown frame type. The bytes arrived but mean
    /// nothing — a protocol bug or corruption, never worth a retry.
    Malformed(String),
    /// The stream ended (or stalled) in the middle of a frame: the
    /// bytes that *did* arrive were fine, delivery failed. For a client
    /// this is a transport fault like [`WireError::Io`] — retryable —
    /// even though the partial frame itself is unusable.
    Truncated(String),
}

impl WireError {
    pub(crate) fn malformed(msg: impl Into<String>) -> Self {
        Self::Malformed(msg.into())
    }

    /// The [`ErrorCode`] a server should report for this failure.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            WireError::Oversized { .. } => ErrorCode::Oversized,
            _ => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            WireError::Truncated(msg) => write!(f, "truncated frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<MsError> for WireError {
    fn from(e: MsError) -> Self {
        WireError::malformed(format!("invalid spectrum: {e}"))
    }
}

// ───────────────────────── encoding ─────────────────────────

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn spectrum(&mut self, s: &Spectrum) {
        self.str(s.title());
        self.f64(s.precursor().mz());
        self.u8(s.precursor().charge());
        match s.retention_time() {
            Some(rt) => {
                self.u8(1);
                self.f64(rt);
            }
            None => self.u8(0),
        }
        self.u32(s.peaks().len() as u32);
        for p in s.peaks() {
            self.f64(p.mz);
            self.f32(p.intensity);
        }
    }
    /// Raw hypervector words — no count prefix: the count is implied by
    /// the frame's `dim` (`dim.div_ceil(64)` words per row).
    fn words(&mut self, words: &[u64]) {
        for &w in words {
            self.u64(w);
        }
    }
    /// The [`JobConfig`] field block shared by `OpenJob` and
    /// `OpenStore`: dim, resolution, threshold, linkage, watermark,
    /// workers — in v1 field order.
    fn job_config(&mut self, config: &JobConfig) {
        self.u32(config.dim);
        self.f64(config.resolution);
        self.f64(config.threshold_fraction);
        self.u8(linkage_to_wire(config.linkage));
        self.u32(config.watermark);
        self.u32(config.workers);
    }
}

/// Encodes a frame's payload bytes (no header).
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::new();
    match frame {
        Frame::OpenJob {
            job_id,
            client_id,
            config,
        } => {
            e.u64(*job_id);
            e.job_config(config);
            // v2 addition, kept at the tail so the config field offsets
            // match v1 (and the offset-based decode tests).
            e.u64(*client_id);
        }
        Frame::Submit {
            job_id,
            seq,
            spectra,
        } => {
            e.u64(*job_id);
            e.u64(*seq);
            e.u32(spectra.len() as u32);
            for s in spectra {
                e.spectrum(s);
            }
        }
        Frame::Flush { job_id } | Frame::CloseJob { job_id } => {
            e.u64(*job_id);
        }
        Frame::LoadLibrary {
            job_id,
            dim,
            entries,
        } => {
            e.u64(*job_id);
            e.u32(*dim);
            e.u32(entries.len() as u32);
            for entry in entries {
                e.f64(entry.mass);
                e.u8(entry.charge);
                e.u8(u8::from(entry.is_decoy));
                e.str(&entry.id);
                e.words(&entry.words);
            }
        }
        Frame::SearchQuery {
            job_id,
            dim,
            window_da,
            top_k,
            queries,
        } => {
            e.u64(*job_id);
            e.u32(*dim);
            e.f64(*window_da);
            e.u32(*top_k);
            e.u32(queries.len() as u32);
            for q in queries {
                e.f64(q.mass);
                e.words(&q.words);
            }
        }
        Frame::OpenStore {
            name,
            client_id,
            config,
        } => {
            e.str(name);
            e.u64(*client_id);
            e.job_config(config);
        }
        Frame::SubmitIncremental { name, seq, spectra } => {
            e.str(name);
            e.u64(*seq);
            e.u32(spectra.len() as u32);
            for s in spectra {
                e.spectrum(s);
            }
        }
        Frame::PersistStore { name }
        | Frame::StoreStats { name }
        | Frame::RefreshStore { name } => {
            e.str(name);
        }
        Frame::SubmitAck {
            job_id,
            seq,
            base,
            count,
        } => {
            e.u64(*job_id);
            e.u64(*seq);
            e.u64(*base);
            e.u32(*count);
        }
        Frame::Assignment {
            job_id,
            key,
            raw_base,
            members,
            labels,
        } => {
            e.u64(*job_id);
            e.i64(*key);
            e.u64(*raw_base);
            e.u32(members.len() as u32);
            for &m in members {
                e.u64(m);
            }
            for &l in labels {
                e.u32(l);
            }
        }
        Frame::Consensus {
            job_id,
            raw_base,
            medoids,
        } => {
            e.u64(*job_id);
            e.u64(*raw_base);
            e.u32(medoids.len() as u32);
            for &m in medoids {
                e.u64(m);
            }
        }
        Frame::JobStats(s) => {
            e.u64(s.job_id);
            e.u32(s.participants);
            e.u64(s.submitted);
            e.u64(s.streamed);
            e.u64(s.kept);
            e.u32(s.shards_opened);
            e.u32(s.shards_clustered);
            e.u64(s.clusters);
            e.u64(s.hac_comparisons);
            e.u64(s.hac_updates);
            e.u64(s.hac_merges);
            e.u8(s.done);
        }
        Frame::SearchHit {
            job_id,
            query_index,
            hits,
        } => {
            e.u64(*job_id);
            e.u64(*query_index);
            e.u32(hits.len() as u32);
            for h in hits {
                e.u64(h.library_index);
                e.u16(h.distance);
                e.f64(h.mass_delta);
                e.u8(u8::from(h.is_decoy));
                e.str(&h.id);
            }
        }
        Frame::SearchStats(s) => {
            e.u64(s.job_id);
            e.u32(s.participants);
            e.u64(s.entries);
            e.u64(s.targets);
            e.u64(s.decoys);
            e.u8(s.sealed);
            e.u64(s.queries);
            e.u64(s.hits);
        }
        Frame::IncrementalAck(a) => {
            e.str(&a.name);
            e.u64(a.seq);
            e.u64(a.base_id);
            e.u32(a.kept.len() as u32);
            for &k in &a.kept {
                e.u32(k);
            }
            for &l in &a.labels {
                e.u64(l);
            }
            e.u64(a.absorbed);
            e.u64(a.residual);
            e.u64(a.new_clusters);
            e.u64(a.total_spectra);
            e.u64(a.total_clusters);
        }
        Frame::StoreAck(s) => {
            e.str(&s.name);
            e.u32(s.dim);
            e.u64(s.fingerprint);
            e.u64(s.spectra);
            e.u64(s.buckets);
            e.u64(s.clusters);
            e.u8(s.keeps_member_rows);
            e.u8(s.dirty);
            e.u8(s.persisted);
            e.u64(s.refreshed);
            e.u64(s.merged);
        }
        Frame::Error { code, message } => {
            e.u8(*code as u8);
            e.str(message);
        }
    }
    e.buf
}

/// Encodes a full frame: header + payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(frame.frame_type() as u8);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ───────────────────────── decoding ─────────────────────────

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::malformed(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length prefix that at minimum `elem_size` bytes per element must
    /// follow — rejects absurd counts before any allocation.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.buf.len() - self.pos {
            return Err(WireError::malformed(format!(
                "length prefix {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
    /// A count prefix with an explicit protocol cap, checked *before*
    /// the remaining-payload bound and before any allocation: a hostile
    /// `u32::MAX` count is rejected by the cap alone.
    fn capped_count(&mut self, cap: u32, elem_size: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32()?;
        if n > cap {
            return Err(WireError::malformed(format!(
                "{what} count {n} exceeds cap {cap}"
            )));
        }
        let n = n as usize;
        if n.saturating_mul(elem_size) > self.buf.len() - self.pos {
            return Err(WireError::malformed(format!(
                "length prefix {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::malformed("string is not UTF-8"))
    }
    /// A packed hypervector row of exactly `dim.div_ceil(64)` words,
    /// with any bits at or beyond `dim` in the last word required zero
    /// (the packed store's invariant — validated here so the server
    /// never has to).
    fn hv_words(&mut self, dim: u32) -> Result<Vec<u64>, WireError> {
        let stride = (dim as usize).div_ceil(64);
        let mut words = Vec::with_capacity(stride);
        for _ in 0..stride {
            words.push(self.u64()?);
        }
        if dim % 64 != 0 && words[stride - 1] >> (dim % 64) != 0 {
            return Err(WireError::malformed(format!(
                "hypervector has non-zero bits beyond dim {dim}"
            )));
        }
        Ok(words)
    }
    fn finite_f64(&mut self, what: &str) -> Result<f64, WireError> {
        let v = self.f64()?;
        if !v.is_finite() {
            return Err(WireError::malformed(format!("{what} must be finite")));
        }
        Ok(v)
    }
    fn bool_flag(&mut self, what: &str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::malformed(format!("bad {what} flag {other}"))),
        }
    }
    fn spectrum(&mut self) -> Result<Spectrum, WireError> {
        let title = self.str()?;
        let mz = self.f64()?;
        let charge = self.u8()?;
        let rt = match self.u8()? {
            0 => None,
            1 => Some(self.f64()?),
            other => {
                return Err(WireError::malformed(format!(
                    "bad retention-time flag {other}"
                )))
            }
        };
        let n = self.len_prefix(12)?;
        let mut peaks = Vec::with_capacity(n);
        for _ in 0..n {
            let mz = self.f64()?;
            let intensity = self.f32()?;
            peaks.push(Peak::new(mz, intensity));
        }
        let mut s = Spectrum::new(title, Precursor::new(mz, charge)?, peaks)?;
        if let Some(rt) = rt {
            s = s.with_retention_time(rt);
        }
        Ok(s)
    }
    /// The [`JobConfig`] field block shared by `OpenJob` and
    /// `OpenStore`, with its full validation: dim bounds, finite
    /// positive resolution, threshold in `[0, 1]`, and the worker /
    /// watermark caps from `limits`.
    fn job_config(&mut self, limits: &Limits) -> Result<JobConfig, WireError> {
        let config = JobConfig {
            dim: self.u32()?,
            resolution: self.f64()?,
            threshold_fraction: self.f64()?,
            linkage: linkage_from_wire(self.u8()?)?,
            watermark: self.u32()?,
            workers: self.u32()?,
        };
        check_dim(config.dim)?;
        if !config.resolution.is_finite()
            || config.resolution <= 0.0
            || !(0.0..=1.0).contains(&config.threshold_fraction)
        {
            return Err(WireError::malformed("invalid job config values"));
        }
        if config.workers > limits.max_workers {
            return Err(WireError::malformed(format!(
                "workers {} exceeds cap {}",
                config.workers, limits.max_workers
            )));
        }
        if config.watermark == 0 || config.watermark > limits.max_watermark {
            return Err(WireError::malformed(format!(
                "watermark {} outside [1, {}]",
                config.watermark, limits.max_watermark
            )));
        }
        Ok(config)
    }
    fn store_name(&mut self, limits: &Limits) -> Result<String, WireError> {
        let name = self.str()?;
        check_store_name(&name, limits)?;
        Ok(name)
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parses and validates a frame header, returning `(type, payload_len)`.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_len: u32,
) -> Result<(FrameType, u32), WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic(header[0..4].try_into().unwrap()));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let frame_type = FrameType::from_wire(header[6])
        .ok_or_else(|| WireError::malformed(format!("unknown frame type 0x{:02x}", header[6])))?;
    if header[7] != 0 {
        return Err(WireError::malformed("non-zero reserved byte"));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > max_len {
        return Err(WireError::Oversized { len, max: max_len });
    }
    Ok((frame_type, len))
}

/// Decodes a frame's payload, given its type from the header. Rejects
/// truncated payloads, trailing bytes, and any value beyond the caps in
/// `limits` — this is the single enforcement point for every
/// decode-time cap (see [`crate::limits`]).
pub fn decode_payload(
    frame_type: FrameType,
    payload: &[u8],
    limits: &Limits,
) -> Result<Frame, WireError> {
    let mut d = Dec::new(payload);
    let frame = match frame_type {
        FrameType::OpenJob => {
            let job_id = d.u64()?;
            let config = d.job_config(limits)?;
            let client_id = d.u64()?;
            Frame::OpenJob {
                job_id,
                client_id,
                config,
            }
        }
        FrameType::Submit => {
            let job_id = d.u64()?;
            let seq = d.u64()?;
            let n = d.len_prefix(18)?; // min spectrum: empty title + fixed fields
            let mut spectra = Vec::with_capacity(n);
            for _ in 0..n {
                spectra.push(d.spectrum()?);
            }
            Frame::Submit {
                job_id,
                seq,
                spectra,
            }
        }
        FrameType::Flush => Frame::Flush { job_id: d.u64()? },
        FrameType::CloseJob => Frame::CloseJob { job_id: d.u64()? },
        FrameType::LoadLibrary => {
            let job_id = d.u64()?;
            let dim = d.u32()?;
            check_dim(dim)?;
            let stride_bytes = (dim as usize).div_ceil(64) * 8;
            // min entry: mass + charge + decoy flag + empty id + words
            let n = d.capped_count(limits.max_library_batch, 14 + stride_bytes, "library entry")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(LibraryEntryWire {
                    mass: d.finite_f64("entry mass")?,
                    charge: d.u8()?,
                    is_decoy: d.bool_flag("is_decoy")?,
                    id: d.str()?,
                    words: d.hv_words(dim)?,
                });
            }
            Frame::LoadLibrary {
                job_id,
                dim,
                entries,
            }
        }
        FrameType::SearchQuery => {
            let job_id = d.u64()?;
            let dim = d.u32()?;
            check_dim(dim)?;
            let window_da = d.finite_f64("search window")?;
            if !(0.0..=limits.max_search_window_da).contains(&window_da) {
                return Err(WireError::malformed(format!(
                    "search window {window_da} outside [0, {}]",
                    limits.max_search_window_da
                )));
            }
            let top_k = d.u32()?;
            if top_k == 0 || top_k > limits.max_top_k {
                return Err(WireError::malformed(format!(
                    "top_k {top_k} outside [1, {}]",
                    limits.max_top_k
                )));
            }
            let stride_bytes = (dim as usize).div_ceil(64) * 8;
            let n = d.capped_count(limits.max_query_batch, 8 + stride_bytes, "query")?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(QueryWire {
                    mass: d.finite_f64("query mass")?,
                    words: d.hv_words(dim)?,
                });
            }
            Frame::SearchQuery {
                job_id,
                dim,
                window_da,
                top_k,
                queries,
            }
        }
        FrameType::OpenStore => {
            let name = d.store_name(limits)?;
            let client_id = d.u64()?;
            let config = d.job_config(limits)?;
            Frame::OpenStore {
                name,
                client_id,
                config,
            }
        }
        FrameType::SubmitIncremental => {
            let name = d.store_name(limits)?;
            let seq = d.u64()?;
            // min spectrum: empty title + fixed fields, as in `Submit`.
            let n = d.capped_count(limits.max_incremental_batch, 18, "incremental spectrum")?;
            let mut spectra = Vec::with_capacity(n);
            for _ in 0..n {
                spectra.push(d.spectrum()?);
            }
            Frame::SubmitIncremental { name, seq, spectra }
        }
        FrameType::PersistStore => Frame::PersistStore {
            name: d.store_name(limits)?,
        },
        FrameType::StoreStats => Frame::StoreStats {
            name: d.store_name(limits)?,
        },
        FrameType::RefreshStore => Frame::RefreshStore {
            name: d.store_name(limits)?,
        },
        FrameType::SubmitAck => Frame::SubmitAck {
            job_id: d.u64()?,
            seq: d.u64()?,
            base: d.u64()?,
            count: d.u32()?,
        },
        FrameType::Assignment => {
            let job_id = d.u64()?;
            let key = d.i64()?;
            let raw_base = d.u64()?;
            let n = d.len_prefix(12)?; // 8 bytes member + 4 bytes label
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(d.u64()?);
            }
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(d.u32()?);
            }
            Frame::Assignment {
                job_id,
                key,
                raw_base,
                members,
                labels,
            }
        }
        FrameType::Consensus => {
            let job_id = d.u64()?;
            let raw_base = d.u64()?;
            let n = d.len_prefix(8)?;
            let mut medoids = Vec::with_capacity(n);
            for _ in 0..n {
                medoids.push(d.u64()?);
            }
            Frame::Consensus {
                job_id,
                raw_base,
                medoids,
            }
        }
        FrameType::JobStats => Frame::JobStats(JobStatsFrame {
            job_id: d.u64()?,
            participants: d.u32()?,
            submitted: d.u64()?,
            streamed: d.u64()?,
            kept: d.u64()?,
            shards_opened: d.u32()?,
            shards_clustered: d.u32()?,
            clusters: d.u64()?,
            hac_comparisons: d.u64()?,
            hac_updates: d.u64()?,
            hac_merges: d.u64()?,
            done: d.u8()?,
        }),
        FrameType::SearchHit => {
            let job_id = d.u64()?;
            let query_index = d.u64()?;
            // min hit: index + distance + delta + decoy flag + empty id
            let n = d.len_prefix(23)?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                hits.push(HitWire {
                    library_index: d.u64()?,
                    distance: d.u16()?,
                    mass_delta: d.f64()?,
                    is_decoy: d.bool_flag("is_decoy")?,
                    id: d.str()?,
                });
            }
            Frame::SearchHit {
                job_id,
                query_index,
                hits,
            }
        }
        FrameType::SearchStats => Frame::SearchStats(SearchStatsFrame {
            job_id: d.u64()?,
            participants: d.u32()?,
            entries: d.u64()?,
            targets: d.u64()?,
            decoys: d.u64()?,
            sealed: d.u8()?,
            queries: d.u64()?,
            hits: d.u64()?,
        }),
        FrameType::IncrementalAck => {
            let name = d.store_name(limits)?;
            let seq = d.u64()?;
            let base_id = d.u64()?;
            // 4 bytes kept index + 8 bytes label per element.
            let n = d.capped_count(limits.max_incremental_batch, 12, "incremental label")?;
            let mut kept = Vec::with_capacity(n);
            for _ in 0..n {
                kept.push(d.u32()?);
            }
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(d.u64()?);
            }
            Frame::IncrementalAck(IncrementalAckFrame {
                name,
                seq,
                base_id,
                kept,
                labels,
                absorbed: d.u64()?,
                residual: d.u64()?,
                new_clusters: d.u64()?,
                total_spectra: d.u64()?,
                total_clusters: d.u64()?,
            })
        }
        FrameType::StoreAck => Frame::StoreAck(StoreAckFrame {
            name: d.store_name(limits)?,
            dim: d.u32()?,
            fingerprint: d.u64()?,
            spectra: d.u64()?,
            buckets: d.u64()?,
            clusters: d.u64()?,
            keeps_member_rows: d.u8()?,
            dirty: d.u8()?,
            persisted: d.u8()?,
            refreshed: d.u64()?,
            merged: d.u64()?,
        }),
        FrameType::Error => {
            let code_byte = d.u8()?;
            let code = ErrorCode::from_wire(code_byte)
                .ok_or_else(|| WireError::malformed(format!("unknown error code {code_byte}")))?;
            Frame::Error {
                code,
                message: d.str()?,
            }
        }
    };
    d.finish()?;
    Ok(frame)
}

fn check_dim(dim: u32) -> Result<(), WireError> {
    if dim == 0 || dim > u16::MAX as u32 {
        return Err(WireError::malformed(format!(
            "dim {dim} outside (0, 65535]"
        )));
    }
    Ok(())
}

/// Validates a store name: non-empty, at most
/// [`Limits::max_store_name_len`] bytes, and drawn from `[A-Za-z0-9_-]`.
/// Store names become server-side file names (`<store_dir>/<name>.shpk`),
/// so the alphabet admits no separators, no dots, no traversal. Public
/// so clients can fail fast before a frame ever leaves the machine.
pub fn check_store_name(name: &str, limits: &Limits) -> Result<(), WireError> {
    if name.is_empty() {
        return Err(WireError::malformed("store name is empty"));
    }
    if name.len() > limits.max_store_name_len as usize {
        return Err(WireError::malformed(format!(
            "store name length {} exceeds cap {}",
            name.len(),
            limits.max_store_name_len
        )));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(WireError::malformed("store name must match [A-Za-z0-9_-]"));
    }
    Ok(())
}

/// Writes one frame to `w` (no flush — callers batch then flush).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads one frame from a blocking reader, enforcing every cap in
/// `limits`. Returns [`WireError::Closed`] on a clean EOF at a frame
/// boundary; an EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, limits: &Limits) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: EOF here is a clean close, EOF later is a
    // truncated frame.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(WireError::Closed),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut header[1..])
        .map_err(|e| truncated(e, "header"))?;
    let (frame_type, len) = parse_header(&header, limits.max_frame_len)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| truncated(e, "payload"))?;
    decode_payload(frame_type, &payload, limits)
}

fn truncated(e: std::io::Error, what: &str) -> WireError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        WireError::Truncated(format!("EOF inside {what}"))
    } else {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shadows the real `decode_payload` with the default [`Limits`],
    /// so the suite reads as the common case; the cap-threading itself
    /// is covered by `crate::limits`' single-table test.
    fn decode_payload(frame_type: FrameType, payload: &[u8]) -> Result<Frame, WireError> {
        super::decode_payload(frame_type, payload, &Limits::default())
    }

    /// Shadows the real `read_frame`, taking just the frame cap.
    fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Frame, WireError> {
        let limits = Limits {
            max_frame_len: max_len,
            ..Limits::default()
        };
        super::read_frame(r, &limits)
    }

    fn spectrum(title: &str, mz: f64, charge: u8, rt: Option<f64>) -> Spectrum {
        let peaks = vec![Peak::new(200.25, 1.5), Peak::new(450.75, 3.25)];
        let mut s = Spectrum::new(title, Precursor::new(mz, charge).unwrap(), peaks).unwrap();
        if let Some(rt) = rt {
            s = s.with_retention_time(rt);
        }
        s
    }

    /// One instance of every frame type, with non-trivial payloads.
    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::OpenJob {
                job_id: 0xDEAD_BEEF_0001,
                client_id: 0xC11E_0001,
                config: JobConfig::default(),
            },
            Frame::Submit {
                job_id: 7,
                seq: 0,
                spectra: vec![
                    spectrum("scan=1", 500.5, 2, None),
                    spectrum("scan=2", 611.25, 3, Some(12.5)),
                ],
            },
            Frame::Submit {
                job_id: 7,
                seq: u64::MAX,
                spectra: Vec::new(),
            },
            Frame::Flush { job_id: 7 },
            Frame::CloseJob { job_id: u64::MAX },
            Frame::LoadLibrary {
                job_id: 40,
                dim: 65, // stride 2, one live bit in the tail word
                entries: vec![
                    LibraryEntryWire {
                        mass: 923.5,
                        charge: 2,
                        is_decoy: false,
                        id: "PEPTIDEK".into(),
                        words: vec![u64::MAX, 1],
                    },
                    LibraryEntryWire {
                        mass: 923.5,
                        charge: 0,
                        is_decoy: true,
                        id: "DECOY_PEPTIDEK".into(),
                        words: vec![0x0123_4567_89AB_CDEF, 0],
                    },
                ],
            },
            Frame::LoadLibrary {
                job_id: 40,
                dim: 65,
                entries: Vec::new(),
            },
            Frame::SearchQuery {
                job_id: 40,
                dim: 65,
                window_da: 250.0,
                top_k: 5,
                queries: vec![QueryWire {
                    mass: 930.25,
                    words: vec![0xFFFF_0000_FFFF_0000, 1],
                }],
            },
            Frame::OpenStore {
                name: "repo-2026_q3".into(),
                client_id: 0xC11E_0002,
                config: JobConfig::default(),
            },
            Frame::SubmitIncremental {
                name: "repo-2026_q3".into(),
                seq: 4,
                spectra: vec![spectrum("scan=9", 712.5, 2, Some(30.25))],
            },
            Frame::SubmitIncremental {
                name: "repo-2026_q3".into(),
                seq: 5,
                spectra: Vec::new(),
            },
            Frame::PersistStore {
                name: "repo-2026_q3".into(),
            },
            Frame::StoreStats {
                name: "repo-2026_q3".into(),
            },
            Frame::RefreshStore {
                name: "repo-2026_q3".into(),
            },
            Frame::IncrementalAck(IncrementalAckFrame {
                name: "repo-2026_q3".into(),
                seq: 4,
                base_id: 1000,
                kept: vec![0, 2, 3],
                labels: vec![17, 17, 410],
                absorbed: 2,
                residual: 1,
                new_clusters: 1,
                total_spectra: 1003,
                total_clusters: 411,
            }),
            Frame::IncrementalAck(IncrementalAckFrame {
                name: "repo-2026_q3".into(),
                seq: 5,
                base_id: 1003,
                kept: Vec::new(),
                labels: Vec::new(),
                absorbed: 0,
                residual: 0,
                new_clusters: 0,
                total_spectra: 1003,
                total_clusters: 411,
            }),
            Frame::StoreAck(StoreAckFrame {
                name: "repo-2026_q3".into(),
                dim: 4096,
                fingerprint: 0xFEED_F00D_CAFE,
                spectra: 1003,
                buckets: 120,
                clusters: 409,
                keeps_member_rows: 1,
                dirty: 1,
                persisted: 0,
                refreshed: 3,
                merged: 2,
            }),
            Frame::SubmitAck {
                job_id: 7,
                seq: 3,
                base: 1 << 40,
                count: 1024,
            },
            Frame::Assignment {
                job_id: 7,
                key: -3,
                raw_base: 17,
                members: vec![0, 5, 9],
                labels: vec![0, 1, 0],
            },
            Frame::Consensus {
                job_id: 7,
                raw_base: 17,
                medoids: vec![9, 5],
            },
            Frame::JobStats(JobStatsFrame {
                job_id: 7,
                participants: 4,
                submitted: 1200,
                streamed: 1200,
                kept: 1187,
                shards_opened: 33,
                shards_clustered: 33,
                clusters: 410,
                hac_comparisons: 123_456,
                hac_updates: 7890,
                hac_merges: 777,
                done: 1,
            }),
            Frame::SearchHit {
                job_id: 40,
                query_index: 12,
                hits: vec![
                    HitWire {
                        library_index: 3,
                        distance: 17,
                        mass_delta: 6.75,
                        is_decoy: false,
                        id: "PEPTIDEK".into(),
                    },
                    HitWire {
                        library_index: 9,
                        distance: 17,
                        mass_delta: -80.0,
                        is_decoy: true,
                        id: "DECOY_SAMPLER".into(),
                    },
                ],
            },
            Frame::SearchHit {
                job_id: 40,
                query_index: 13,
                hits: Vec::new(),
            },
            Frame::SearchStats(SearchStatsFrame {
                job_id: 40,
                participants: 2,
                entries: 12_000,
                targets: 6_000,
                decoys: 6_000,
                sealed: 1,
                queries: 512,
                hits: 2_560,
            }),
            Frame::Error {
                code: ErrorCode::ConfigMismatch,
                message: "job 7 exists with a different config".into(),
            },
            Frame::Error {
                code: ErrorCode::Busy,
                message: "job registry is full; retry after backoff".into(),
            },
            Frame::Error {
                code: ErrorCode::StoreBusy,
                message: "store is held by client 3; retry after backoff".into(),
            },
        ]
    }

    fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
        read_frame(&mut &bytes[..], DEFAULT_MAX_FRAME_LEN)
    }

    /// encode→decode→re-encode is the identity on both sides for every
    /// frame type: the wire format is deterministic and byte-exact.
    #[test]
    fn byte_level_round_trip_for_every_frame_type() {
        for frame in all_frames() {
            let bytes = encode_frame(&frame);
            assert_eq!(&bytes[0..4], &MAGIC, "magic for {frame:?}");
            assert_eq!(
                u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize,
                bytes.len() - HEADER_LEN,
                "length prefix for {frame:?}"
            );
            let decoded = decode_frame(&bytes).unwrap_or_else(|e| {
                panic!("decoding {frame:?} failed: {e}");
            });
            assert_eq!(decoded, frame, "value round-trip");
            assert_eq!(encode_frame(&decoded), bytes, "byte round-trip");
        }
    }

    /// Every proper prefix of every frame must decode to an error, never
    /// a frame and never a panic.
    #[test]
    fn truncated_frames_are_rejected_at_every_length() {
        for frame in all_frames() {
            let bytes = encode_frame(&frame);
            for cut in 1..bytes.len() {
                match decode_frame(&bytes[..cut]) {
                    Err(WireError::Malformed(_) | WireError::Truncated(_)) => {}
                    Err(other) => panic!("cut={cut} of {frame:?}: unexpected {other}"),
                    Ok(f) => panic!("cut={cut} of {frame:?} decoded as {f:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_input_is_clean_close_not_error() {
        assert!(matches!(decode_frame(&[]), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        // Deliberately no payload behind the huge prefix: a reader that
        // allocated or tried to read it would fail differently.
        match read_frame(&mut &bytes[..HEADER_LEN], 1024) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // A frame exactly at the cap is fine.
        let ok = encode_frame(&Frame::Flush { job_id: 1 });
        assert!(read_frame(&mut &ok[..], 8).is_ok());
        assert!(matches!(
            read_frame(&mut &ok[..], 7),
            Err(WireError::Oversized { len: 8, max: 7 })
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
        bytes[0..4].copy_from_slice(b"HTTP");
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadMagic(m)) if &m == b"HTTP"
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        for version in [VERSION - 1, VERSION + 1] {
            let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
            bytes[4..6].copy_from_slice(&version.to_le_bytes());
            assert!(matches!(
                decode_frame(&bytes),
                Err(WireError::BadVersion(v)) if v == version
            ));
        }
    }

    #[test]
    fn error_code_ranges_classify_retryability() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::ProtocolState,
            ErrorCode::JobClosed,
            ErrorCode::ConfigMismatch,
            ErrorCode::IdleTimeout,
            ErrorCode::Oversized,
            ErrorCode::ServerShutdown,
        ] {
            assert!(!code.is_retryable(), "{code:?} is in the fatal range");
        }
        assert!(ErrorCode::Busy.is_retryable());
        assert!(ErrorCode::StoreBusy.is_retryable());
        // Unknown codes — even ones inside the retryable range — are
        // rejected at decode, never misclassified or silently retried.
        for byte in [0u8, 8, 0x3F, 0x42, 0xFF] {
            let mut e = Enc::new();
            e.u8(byte);
            e.str("mystery");
            assert!(
                matches!(
                    decode_payload(FrameType::Error, &e.buf),
                    Err(WireError::Malformed(_))
                ),
                "unknown error code {byte} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_frame_type_and_reserved_byte_are_rejected() {
        let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
        bytes[6] = 0x77;
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
        let mut bytes = encode_frame(&Frame::Flush { job_id: 1 });
        bytes[7] = 1;
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_after_payload_are_rejected() {
        let payload_ok = encode_payload(&Frame::Flush { job_id: 1 });
        let mut padded = payload_ok.clone();
        padded.push(0);
        assert!(decode_payload(FrameType::Flush, &payload_ok).is_ok());
        assert!(matches!(
            decode_payload(FrameType::Flush, &padded),
            Err(WireError::Malformed(_))
        ));
    }

    /// A length prefix inside the payload (spectrum count, peak count,
    /// string length) that promises more than the payload holds must be
    /// rejected without a huge allocation.
    #[test]
    fn absurd_interior_counts_are_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // job id
        payload.extend_from_slice(&0u64.to_le_bytes()); // seq
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // spectrum count
        assert!(matches!(
            decode_payload(FrameType::Submit, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_spectrum_payloads_are_rejected_not_panicked() {
        // A spectrum whose precursor m/z is NaN fails Precursor::new.
        let mut e = Enc::new();
        e.u64(7); // job id
        e.u64(0); // seq
        e.u32(1); // one spectrum
        e.str("bad");
        e.f64(f64::NAN);
        e.u8(2);
        e.u8(0); // no retention time
        e.u32(0); // no peaks
        assert!(matches!(
            decode_payload(FrameType::Submit, &e.buf),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn job_config_defaults_match_the_pipeline_defaults() {
        let config = JobConfig::default();
        assert_eq!(config.pipeline_config(), SpecHdConfig::default());
        let stream = config.stream_config();
        assert_eq!(stream.watermark, StreamConfig::default().watermark);
        assert_eq!(stream.workers, StreamConfig::default().workers);
        assert!(!stream.keep_hypervectors);
    }

    #[test]
    fn invalid_job_configs_are_rejected() {
        let mut bad_dim = encode_payload(&Frame::OpenJob {
            job_id: 1,
            client_id: 7,
            config: JobConfig::default(),
        });
        bad_dim[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_payload(FrameType::OpenJob, &bad_dim),
            Err(WireError::Malformed(_))
        ));

        let mut bad_linkage = encode_payload(&Frame::OpenJob {
            job_id: 1,
            client_id: 7,
            config: JobConfig::default(),
        });
        // linkage byte sits after job id (8) + dim (4) + two f64s (16).
        bad_linkage[28] = 9;
        assert!(matches!(
            decode_payload(FrameType::OpenJob, &bad_linkage),
            Err(WireError::Malformed(_))
        ));
    }

    /// The streaming knobs turn into server threads and buffers, so the
    /// decode path must refuse hostile values before anything is
    /// allocated or spawned — and accept the documented boundaries.
    #[test]
    fn hostile_stream_knobs_are_rejected_at_decode() {
        let open = |config: JobConfig| {
            encode_payload(&Frame::OpenJob {
                job_id: 1,
                client_id: 7,
                config,
            })
        };
        let rejected = [
            JobConfig {
                workers: u32::MAX, // ~4B requested pipeline threads
                ..JobConfig::default()
            },
            JobConfig {
                workers: MAX_WORKERS + 1,
                ..JobConfig::default()
            },
            JobConfig {
                watermark: 0, // unbounded shard buffers
                ..JobConfig::default()
            },
            JobConfig {
                watermark: MAX_WATERMARK + 1,
                ..JobConfig::default()
            },
        ];
        for config in rejected {
            assert!(
                matches!(
                    decode_payload(FrameType::OpenJob, &open(config.clone())),
                    Err(WireError::Malformed(_))
                ),
                "config must be rejected: {config:?}"
            );
        }
        let accepted = [
            JobConfig {
                workers: 0, // auto: all cores on the server
                watermark: 1,
                ..JobConfig::default()
            },
            JobConfig {
                workers: MAX_WORKERS,
                watermark: MAX_WATERMARK,
                ..JobConfig::default()
            },
        ];
        for config in accepted {
            assert!(
                decode_payload(FrameType::OpenJob, &open(config.clone())).is_ok(),
                "boundary config must decode: {config:?}"
            );
        }
    }

    fn query_frame(window_da: f64, top_k: u32) -> Frame {
        Frame::SearchQuery {
            job_id: 1,
            dim: 64,
            window_da,
            top_k,
            queries: vec![QueryWire {
                mass: 900.0,
                words: vec![42],
            }],
        }
    }

    /// Search batch sizes turn into server allocations and windowed
    /// library scans, so — mirroring the stream-knob caps — hostile
    /// counts must be rejected at decode, before any allocation.
    #[test]
    fn hostile_search_batches_are_rejected_at_decode() {
        // A raw count prefix above the cap is rejected by the cap alone,
        // even when it also exceeds the remaining payload.
        let mut lib = Enc::new();
        lib.u64(1); // job id
        lib.u32(64); // dim
        lib.u32(MAX_LIBRARY_BATCH + 1);
        match decode_payload(FrameType::LoadLibrary, &lib.buf) {
            Err(WireError::Malformed(msg)) => {
                assert!(msg.contains("exceeds cap"), "cap checked first: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }

        let mut q = Enc::new();
        q.u64(1);
        q.u32(64);
        q.f64(1.0);
        q.u32(5); // top_k
        q.u32(u32::MAX); // query count
        match decode_payload(FrameType::SearchQuery, &q.buf) {
            Err(WireError::Malformed(msg)) => {
                assert!(msg.contains("exceeds cap"), "cap checked first: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn hostile_search_knobs_are_rejected_at_decode() {
        let rejected = [
            query_frame(f64::NAN, 5),
            query_frame(f64::INFINITY, 5),
            query_frame(-1.0, 5),
            query_frame(MAX_SEARCH_WINDOW_DA + 1.0, 5),
            query_frame(1.0, 0),
            query_frame(1.0, MAX_TOP_K + 1),
            query_frame(1.0, u32::MAX),
        ];
        for frame in rejected {
            let payload = encode_payload(&frame);
            assert!(
                matches!(
                    decode_payload(FrameType::SearchQuery, &payload),
                    Err(WireError::Malformed(_))
                ),
                "must be rejected: {frame:?}"
            );
        }
        let accepted = [
            query_frame(0.0, 1),
            query_frame(MAX_SEARCH_WINDOW_DA, MAX_TOP_K),
        ];
        for frame in accepted {
            let payload = encode_payload(&frame);
            assert_eq!(
                decode_payload(FrameType::SearchQuery, &payload).unwrap(),
                frame,
                "boundary knobs must decode"
            );
        }
    }

    #[test]
    fn search_dims_are_validated_at_decode() {
        for dim in [0u32, 65_536, u32::MAX] {
            let mut lib = Enc::new();
            lib.u64(1);
            lib.u32(dim);
            lib.u32(0);
            assert!(
                matches!(
                    decode_payload(FrameType::LoadLibrary, &lib.buf),
                    Err(WireError::Malformed(_))
                ),
                "LoadLibrary dim {dim} must be rejected"
            );
            let mut q = Enc::new();
            q.u64(1);
            q.u32(dim);
            q.f64(1.0);
            q.u32(1);
            q.u32(0);
            assert!(
                matches!(
                    decode_payload(FrameType::SearchQuery, &q.buf),
                    Err(WireError::Malformed(_))
                ),
                "SearchQuery dim {dim} must be rejected"
            );
        }
    }

    /// The decoder enforces the packed store's row invariants — exact
    /// stride, zero tail bits, finite mass, boolean decoy flag — so
    /// wire-loaded rows can enter `HvPack` without re-validation.
    #[test]
    fn hostile_library_entries_are_rejected_at_decode() {
        let entry = |mass: f64, decoy: u8, words: &[u64]| {
            let mut e = Enc::new();
            e.u64(1); // job id
            e.u32(65); // dim → stride 2, tail bits above bit 0 must be 0
            e.u32(1); // one entry
            e.f64(mass);
            e.u8(2); // charge
            e.u8(decoy);
            e.str("x");
            for &w in words {
                e.u64(w);
            }
            e.buf
        };
        let good = entry(900.0, 0, &[7, 1]);
        assert!(decode_payload(FrameType::LoadLibrary, &good).is_ok());
        for (name, payload) in [
            ("NaN mass", entry(f64::NAN, 0, &[7, 1])),
            ("infinite mass", entry(f64::INFINITY, 0, &[7, 1])),
            ("decoy flag 2", entry(900.0, 2, &[7, 1])),
            ("non-zero tail bits", entry(900.0, 0, &[7, 2])),
            ("missing tail word", entry(900.0, 0, &[7])),
        ] {
            assert!(
                matches!(
                    decode_payload(FrameType::LoadLibrary, &payload),
                    Err(WireError::Malformed(_))
                ),
                "{name} must be rejected"
            );
        }
        // Same tail-bit contract on the query side.
        let mut q = Enc::new();
        q.u64(1);
        q.u32(65);
        q.f64(1.0);
        q.u32(1);
        q.u32(1);
        q.f64(900.0);
        q.u64(0);
        q.u64(0b10); // bit 1 of the tail word is beyond dim 65
        assert!(matches!(
            decode_payload(FrameType::SearchQuery, &q.buf),
            Err(WireError::Malformed(_))
        ));
    }

    /// Store names become server-side file names, so the decode path —
    /// on every store frame, both directions — must refuse anything
    /// outside `[A-Za-z0-9_-]` within the length cap.
    #[test]
    fn hostile_store_names_are_rejected_at_decode() {
        let store_frames = |name: &str| {
            vec![
                Frame::OpenStore {
                    name: name.into(),
                    client_id: 7,
                    config: JobConfig::default(),
                },
                Frame::SubmitIncremental {
                    name: name.into(),
                    seq: 0,
                    spectra: Vec::new(),
                },
                Frame::PersistStore { name: name.into() },
                Frame::StoreStats { name: name.into() },
                Frame::RefreshStore { name: name.into() },
                Frame::IncrementalAck(IncrementalAckFrame {
                    name: name.into(),
                    seq: 0,
                    base_id: 0,
                    kept: Vec::new(),
                    labels: Vec::new(),
                    absorbed: 0,
                    residual: 0,
                    new_clusters: 0,
                    total_spectra: 0,
                    total_clusters: 0,
                }),
                Frame::StoreAck(StoreAckFrame {
                    name: name.into(),
                    dim: 64,
                    fingerprint: 0,
                    spectra: 0,
                    buckets: 0,
                    clusters: 0,
                    keeps_member_rows: 0,
                    dirty: 0,
                    persisted: 0,
                    refreshed: 0,
                    merged: 0,
                }),
            ]
        };
        for name in [
            "",
            "../escape",
            "a/b",
            "a\\b",
            "dot.shpk",
            "space name",
            "nul\0",
            "ünïcode",
            &"x".repeat(MAX_STORE_NAME_LEN as usize + 1),
        ] {
            for frame in store_frames(name) {
                let frame_type = frame.frame_type();
                assert!(
                    matches!(
                        decode_payload(frame_type, &encode_payload(&frame)),
                        Err(WireError::Malformed(_))
                    ),
                    "store name {name:?} must be rejected in {frame_type:?}"
                );
            }
        }
        // The full legal alphabet at exactly the cap decodes.
        let max_name = format!("AZaz09_-{}", "x".repeat(MAX_STORE_NAME_LEN as usize - 8));
        for frame in store_frames(&max_name) {
            let frame_type = frame.frame_type();
            assert_eq!(
                decode_payload(frame_type, &encode_payload(&frame)).unwrap(),
                frame,
                "boundary store name must decode in {frame_type:?}"
            );
        }
    }

    /// A hostile count prefix in `SubmitIncremental` (installments) or
    /// `IncrementalAck` (labels) is rejected by the cap alone, before
    /// any allocation.
    #[test]
    fn hostile_incremental_batches_are_rejected_at_decode() {
        let mut s = Enc::new();
        s.str("store");
        s.u64(0); // seq
        s.u32(MAX_INCREMENTAL_BATCH + 1);
        match decode_payload(FrameType::SubmitIncremental, &s.buf) {
            Err(WireError::Malformed(msg)) => {
                assert!(msg.contains("exceeds cap"), "cap checked first: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }

        let mut a = Enc::new();
        a.str("store");
        a.u64(0); // seq
        a.u64(0); // base_id
        a.u32(u32::MAX); // label count
        match decode_payload(FrameType::IncrementalAck, &a.buf) {
            Err(WireError::Malformed(msg)) => {
                assert!(msg.contains("exceeds cap"), "cap checked first: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
