//! Search job lifecycle: shared library loading, seal-on-first-query,
//! and windowed scoring.
//!
//! A **search job** is a shared [`HvLibrary`]: any number of
//! connections load entry batches into it ([`Frame::LoadLibrary`]
//! opens or joins the job), and the first [`Frame::SearchQuery`]
//! **seals** the library — the accumulated entries are sorted by mass
//! into their packed, windowed form, and further loads are rejected
//! with [`ErrorCode::ProtocolState`]. Sealing is what makes results
//! deterministic: every query, from every participant, scores against
//! the same immutable snapshot.
//!
//! Scoring happens **outside** the job lock. A query batch reserves its
//! contiguous job-global query-index range and grabs the sealed
//! library's [`Arc`] under the lock, then releases it for the whole
//! windowed scan — concurrent participants score in parallel and only
//! re-take the lock to bump the job's counters. Every wire-facing
//! precondition of the packed engine (finite masses, `dim ≤ 65535`,
//! exact row stride, zero tail bits, `top_k ≥ 1`) is enforced at frame
//! decode, so no client input can reach a panic in the search path.
//!
//! Lifecycle mirrors clustering jobs where it can: a handle counts as
//! one participant and its drop (connection gone) leaves the job; the
//! job itself is removed when the last participant leaves. Unlike
//! clustering jobs there is no pipeline thread and no `CloseJob` —
//! a search job is passive state, alive exactly as long as someone
//! holds it open.

use crate::job::JobError;
use crate::protocol::{ErrorCode, Frame, HitWire, LibraryEntryWire, QueryWire, SearchStatsFrame};
use spechd_hdc::BinaryHypervector;
use spechd_search::{HvLibrary, HvLibraryBuilder, PackedSearchConfig, PackedSearchEngine};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Server-side cap on a search job's **total** library size, across all
/// `LoadLibrary` frames and participants. The per-frame cap
/// ([`crate::protocol::MAX_LIBRARY_BATCH`]) bounds one decode; this
/// bounds what a client can make the server hold by looping frames.
/// 2²⁰ entries at the paper's `D = 2048` is 256 MiB of packed rows.
pub const MAX_LIBRARY_TOTAL_ENTRIES: usize = 1 << 20;

struct SearchState {
    participants: u32,
    /// Accumulates entries until the first query seals the job.
    builder: Option<HvLibraryBuilder>,
    /// The sealed, immutable library (`None` until sealed).
    library: Option<Arc<HvLibrary>>,
    targets: u64,
    decoys: u64,
    queries: u64,
    hits: u64,
    next_query_index: u64,
    /// Bumped on every join; lets a pending linger-removal recognize it
    /// has been superseded by a rejoin.
    generation: u64,
}

/// One search job: a shared library and its usage counters.
pub struct SearchJob {
    id: u64,
    dim: u32,
    state: Mutex<SearchState>,
}

impl SearchJob {
    fn stats_locked(&self, state: &SearchState) -> SearchStatsFrame {
        SearchStatsFrame {
            job_id: self.id,
            participants: state.participants,
            entries: state.targets + state.decoys,
            targets: state.targets,
            decoys: state.decoys,
            sealed: u8::from(state.library.is_some()),
            queries: state.queries,
            hits: state.hits,
        }
    }
}

/// The server's table of live search jobs.
pub struct SearchRegistry {
    jobs: Mutex<HashMap<u64, Arc<SearchJob>>>,
    linger: std::time::Duration,
}

impl Default for SearchRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchRegistry {
    /// Creates an empty registry that removes a job the instant its
    /// last participant leaves. Servers that want reconnecting clients
    /// to find their library still loaded use
    /// [`SearchRegistry::with_linger`].
    pub fn new() -> Self {
        Self::with_linger(std::time::Duration::ZERO)
    }

    /// Creates an empty registry whose jobs survive `linger` after the
    /// last participant leaves, so a client whose connection dropped
    /// mid-session can reconnect and rejoin the job (library and all)
    /// instead of starting over.
    pub fn with_linger(linger: std::time::Duration) -> Self {
        Self {
            jobs: Mutex::new(HashMap::new()),
            linger,
        }
    }

    /// Number of live search jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("search table poisoned").len()
    }

    /// Whether no search jobs are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens `job_id` or joins it as another participant. Joining
    /// requires the same `dim`. The returned handle counts as one
    /// participant until dropped; the job is removed when the last
    /// participant leaves.
    pub fn open_or_join(self: &Arc<Self>, job_id: u64, dim: u32) -> Result<SearchHandle, JobError> {
        let mut jobs = self.jobs.lock().expect("search table poisoned");
        let job = if let Some(job) = jobs.get(&job_id) {
            let job = Arc::clone(job);
            if job.dim != dim {
                return Err(JobError {
                    code: ErrorCode::ConfigMismatch,
                    message: format!("search job {job_id} exists with dim {}, not {dim}", job.dim),
                });
            }
            let mut state = job.state.lock().expect("search state poisoned");
            state.participants += 1;
            state.generation += 1;
            drop(state);
            job
        } else {
            let job = Arc::new(SearchJob {
                id: job_id,
                dim,
                state: Mutex::new(SearchState {
                    participants: 1,
                    builder: Some(HvLibraryBuilder::new(dim as usize)),
                    library: None,
                    targets: 0,
                    decoys: 0,
                    queries: 0,
                    hits: 0,
                    next_query_index: 0,
                    generation: 0,
                }),
            });
            jobs.insert(job_id, Arc::clone(&job));
            job
        };
        Ok(SearchHandle {
            registry: Arc::clone(self),
            job,
        })
    }
}

/// One connection's participation in one search job.
pub struct SearchHandle {
    registry: Arc<SearchRegistry>,
    job: Arc<SearchJob>,
}

impl SearchHandle {
    /// The search job this handle participates in.
    pub fn job_id(&self) -> u64 {
        self.job.id
    }

    /// The job's hypervector dimensionality.
    pub fn dim(&self) -> u32 {
        self.job.dim
    }

    /// A statistics snapshot of the job.
    pub fn stats(&self) -> SearchStatsFrame {
        let state = self.job.state.lock().expect("search state poisoned");
        self.job.stats_locked(&state)
    }

    /// Appends decoded entries to the job's library, returning the
    /// post-load snapshot (the `LoadLibrary` ack). Entry row invariants
    /// were already enforced at frame decode. Fails once the library is
    /// sealed or when the load would exceed
    /// [`MAX_LIBRARY_TOTAL_ENTRIES`].
    pub fn load(&self, entries: Vec<LibraryEntryWire>) -> Result<SearchStatsFrame, JobError> {
        let mut state = self.job.state.lock().expect("search state poisoned");
        let Some(builder) = state.builder.as_mut() else {
            return Err(JobError {
                code: ErrorCode::ProtocolState,
                message: format!(
                    "search job {} is sealed; no further library loads",
                    self.job.id
                ),
            });
        };
        if builder.len() + entries.len() > MAX_LIBRARY_TOTAL_ENTRIES {
            return Err(JobError {
                code: ErrorCode::ProtocolState,
                message: format!("library would exceed {MAX_LIBRARY_TOTAL_ENTRIES} total entries"),
            });
        }
        let mut targets = 0u64;
        let mut decoys = 0u64;
        for e in &entries {
            builder.push_row_words(&e.words, e.mass, e.charge, e.id.as_str(), e.is_decoy);
            if e.is_decoy {
                decoys += 1;
            } else {
                targets += 1;
            }
        }
        state.targets += targets;
        state.decoys += decoys;
        Ok(self.job.stats_locked(&state))
    }

    /// Scores a decoded query batch against the job's library, sealing
    /// it first if this is the job's first query. Emits one
    /// [`Frame::SearchHit`] per query (in batch order, with job-global
    /// contiguous query indices) through `emit`, and returns the
    /// post-batch snapshot — the frame pair's closing
    /// [`Frame::SearchStats`].
    pub fn query(
        &self,
        window_da: f64,
        top_k: u32,
        queries: Vec<QueryWire>,
        mut emit: impl FnMut(Frame),
    ) -> SearchStatsFrame {
        // Seal (if first query), reserve the batch's index range, and
        // snapshot the library Arc — then score without the lock.
        let library = {
            let mut state = self.job.state.lock().expect("search state poisoned");
            if state.library.is_none() {
                let builder = state.builder.take().expect("unsealed job has a builder");
                state.library = Some(Arc::new(builder.build()));
            }
            Arc::clone(state.library.as_ref().expect("sealed job has a library"))
        };
        let base = {
            let mut state = self.job.state.lock().expect("search state poisoned");
            let base = state.next_query_index;
            state.next_query_index += queries.len() as u64;
            base
        };
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            precursor_tol_da: window_da,
            open_window_da: window_da,
            top_k: top_k as usize,
            ..PackedSearchConfig::default()
        });
        let dim = self.job.dim as usize;
        let mut emitted_hits = 0u64;
        for (offset, q) in queries.iter().enumerate() {
            let hv = BinaryHypervector::from_words(dim, q.words.clone());
            let psms = engine.search_window(&library, &hv, q.mass, offset, window_da);
            emitted_hits += psms.len() as u64;
            emit(Frame::SearchHit {
                job_id: self.job.id,
                query_index: base + offset as u64,
                hits: psms
                    .into_iter()
                    .map(|p| HitWire {
                        library_index: p.library_index as u64,
                        distance: p.distance,
                        mass_delta: p.mass_delta,
                        is_decoy: p.is_decoy,
                        id: library.id(p.library_index).to_string(),
                    })
                    .collect(),
            });
        }
        let mut state = self.job.state.lock().expect("search state poisoned");
        state.queries += queries.len() as u64;
        state.hits += emitted_hits;
        self.job.stats_locked(&state)
    }
}

impl Drop for SearchHandle {
    fn drop(&mut self) {
        let mut jobs = self.registry.jobs.lock().expect("search table poisoned");
        let mut state = self.job.state.lock().expect("search state poisoned");
        state.participants = state.participants.saturating_sub(1);
        if state.participants > 0 {
            return;
        }
        if self.registry.linger.is_zero() {
            jobs.remove(&self.job.id);
            return;
        }
        let generation = state.generation;
        drop(state);
        drop(jobs);
        // Keep the empty job around for the linger so a reconnecting
        // participant finds its library intact; a rejoin in the
        // meantime (participants > 0 again) cancels the removal.
        let registry = Arc::clone(&self.registry);
        let job_id = self.job.id;
        let _ = std::thread::Builder::new()
            .name(format!("spechd-search-{job_id}-linger"))
            .spawn(move || {
                std::thread::sleep(registry.linger);
                let mut jobs = registry.jobs.lock().expect("search table poisoned");
                if let Some(job) = jobs.get(&job_id) {
                    let state = job.state.lock().expect("search state poisoned");
                    let expired = state.participants == 0 && state.generation == generation;
                    drop(state);
                    if expired {
                        jobs.remove(&job_id);
                    }
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::Xoshiro256StarStar;

    fn entry(mass: f64, id: &str, is_decoy: bool, words: Vec<u64>) -> LibraryEntryWire {
        LibraryEntryWire {
            mass,
            charge: 2,
            is_decoy,
            id: id.into(),
            words,
        }
    }

    fn random_words(dim: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng).words().to_vec()
    }

    #[test]
    fn load_then_query_returns_library_path_results() {
        let registry = Arc::new(SearchRegistry::new());
        let handle = registry.open_or_join(1, 128).unwrap();
        let rows: Vec<Vec<u64>> = (0..20).map(|i| random_words(128, i)).collect();
        let entries: Vec<LibraryEntryWire> = rows
            .iter()
            .enumerate()
            .map(|(i, w)| entry(1000.0 + i as f64, &format!("e{i}"), i % 2 == 1, w.clone()))
            .collect();
        let stats = handle.load(entries.clone()).unwrap();
        assert_eq!(stats.entries, 20);
        assert_eq!(stats.targets, 10);
        assert_eq!(stats.decoys, 10);
        assert_eq!(stats.sealed, 0);

        let mut frames = Vec::new();
        let stats = handle.query(
            5.0,
            3,
            vec![QueryWire {
                mass: 1007.2,
                words: rows[7].clone(),
            }],
            |f| frames.push(f),
        );
        assert_eq!(stats.sealed, 1);
        assert_eq!(stats.queries, 1);
        assert_eq!(frames.len(), 1);
        let Frame::SearchHit {
            query_index, hits, ..
        } = &frames[0]
        else {
            panic!("expected SearchHit, got {:?}", frames[0]);
        };
        assert_eq!(*query_index, 0);
        assert_eq!(hits[0].distance, 0, "exact row is the best hit");
        assert_eq!(hits[0].id, "e7");
        assert!(hits[0].is_decoy);

        // Same search through the library path must agree bit-for-bit.
        let mut b = HvLibraryBuilder::new(128);
        for e in &entries {
            b.push_row_words(&e.words, e.mass, e.charge, e.id.as_str(), e.is_decoy);
        }
        let lib = b.build();
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            top_k: 3,
            ..PackedSearchConfig::default()
        });
        let hv = BinaryHypervector::from_words(128, rows[7].clone());
        let expect = engine.search_window(&lib, &hv, 1007.2, 0, 5.0);
        assert_eq!(hits.len(), expect.len());
        for (h, p) in hits.iter().zip(&expect) {
            assert_eq!(h.library_index, p.library_index as u64);
            assert_eq!(h.distance, p.distance);
            assert_eq!(h.mass_delta, p.mass_delta);
            assert_eq!(h.is_decoy, p.is_decoy);
        }
    }

    #[test]
    fn load_after_seal_is_rejected() {
        let registry = Arc::new(SearchRegistry::new());
        let handle = registry.open_or_join(1, 64).unwrap();
        handle
            .load(vec![entry(900.0, "a", false, vec![1])])
            .unwrap();
        handle.query(1.0, 1, Vec::new(), |_| {});
        let err = handle
            .load(vec![entry(901.0, "b", false, vec![2])])
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::ProtocolState);
        assert!(err.message.contains("sealed"));
    }

    #[test]
    fn total_entry_cap_is_enforced() {
        let registry = Arc::new(SearchRegistry::new());
        let handle = registry.open_or_join(1, 64).unwrap();
        // A batch that would blow past the job-total cap is refused
        // outright (its entries are not partially applied).
        let big: Vec<LibraryEntryWire> = (0..=MAX_LIBRARY_TOTAL_ENTRIES)
            .map(|i| entry(900.0, "x", false, vec![i as u64 & 0xFF]))
            .collect();
        let err = handle.load(big).unwrap_err();
        assert_eq!(err.code, ErrorCode::ProtocolState);
        assert_eq!(handle.stats().entries, 0);
    }

    #[test]
    fn join_requires_matching_dim_and_last_drop_removes_job() {
        let registry = Arc::new(SearchRegistry::new());
        let a = registry.open_or_join(9, 256).unwrap();
        let err = match registry.open_or_join(9, 128) {
            Err(e) => e,
            Ok(_) => panic!("dim mismatch must be rejected"),
        };
        assert_eq!(err.code, ErrorCode::ConfigMismatch);
        let b = registry.open_or_join(9, 256).unwrap();
        assert_eq!(a.stats().participants, 2);
        drop(a);
        assert_eq!(registry.len(), 1);
        drop(b);
        assert!(registry.is_empty(), "last participant removes the job");
    }

    #[test]
    fn query_indices_are_contiguous_across_batches() {
        let registry = Arc::new(SearchRegistry::new());
        let handle = registry.open_or_join(1, 64).unwrap();
        handle
            .load(vec![entry(900.0, "a", false, vec![3])])
            .unwrap();
        let q = |mass: f64| QueryWire {
            mass,
            words: vec![5],
        };
        let mut indices = Vec::new();
        for _ in 0..2 {
            handle.query(10.0, 1, vec![q(900.0), q(901.0)], |f| {
                if let Frame::SearchHit { query_index, .. } = f {
                    indices.push(query_index);
                }
            });
        }
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(handle.stats().queries, 4);
    }

    #[test]
    fn empty_library_query_yields_empty_hits() {
        let registry = Arc::new(SearchRegistry::new());
        let handle = registry.open_or_join(1, 64).unwrap();
        let mut frames = Vec::new();
        let stats = handle.query(
            100.0,
            5,
            vec![QueryWire {
                mass: 900.0,
                words: vec![1],
            }],
            |f| frames.push(f),
        );
        assert_eq!(stats.sealed, 1);
        assert_eq!(stats.hits, 0);
        assert!(
            matches!(&frames[0], Frame::SearchHit { hits, .. } if hits.is_empty()),
            "empty library still acks the query: {frames:?}"
        );
    }
}
