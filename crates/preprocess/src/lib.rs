//! SpecHD preprocessing module (§III-A of the paper).
//!
//! "Certain modules like the Spectra Filter, Top-k Selector, and Scale and
//! Normalization emerge as standard features in MS preprocessing." This
//! crate implements all of them plus the precursor-m/z bucketing of Eq. (1),
//! bit-exactly matching what the near-storage MSAS accelerator computes in
//! hardware (the cycle/energy cost of that hardware lives in `spechd-fpga`).
//!
//! * [`SpectraFilter`] — removes precursor-related peaks and peaks below
//!   1% of the base peak.
//! * [`topk`] — top-k peak selection via a bitonic sorting network (the
//!   hardware algorithm) with a quickselect reference implementation.
//! * [`normalize`] — square-root intensity scaling and unit normalization.
//! * [`PrecursorBucketer`] — Eq. (1): `bucket = ⌊(mz − 1.00794)·C / res⌋`.
//! * [`PreprocessPipeline`] — the composed per-spectrum pipeline with
//!   dataset-level statistics.
//!
//! # Example
//!
//! ```
//! use spechd_preprocess::{PreprocessConfig, PreprocessPipeline};
//! use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
//!
//! let ds = SyntheticGenerator::new(SyntheticConfig {
//!     num_spectra: 50, num_peptides: 10, seed: 3, ..SyntheticConfig::default()
//! }).generate();
//! let pipeline = PreprocessPipeline::new(PreprocessConfig::default());
//! let result = pipeline.run(&ds);
//! assert!(result.dataset.len() <= 50);
//! assert!(result.stats.peaks_removed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod filter;
pub mod normalize;
mod pipeline;
pub mod topk;

pub use bucket::{bucket_stats, bucket_stats_from_sizes, Bucket, BucketStats, PrecursorBucketer};
pub use filter::SpectraFilter;
pub use pipeline::{PreprocessConfig, PreprocessPipeline, PreprocessResult, PreprocessStats};
