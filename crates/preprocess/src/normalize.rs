//! Scale and normalization (§III-A "Scale and Normalization" module).
//!
//! Intensities are square-root transformed (compressing dynamic range) and
//! scaled to unit Euclidean norm, the convention of falcon/HyperSpec that
//! SpecHD inherits. Normalization happens after filtering and top-k
//! selection, right before encoding.

use spechd_ms::{Peak, Spectrum};

/// Applies `sqrt` to every intensity, returning a new spectrum.
pub fn sqrt_scale(spectrum: &Spectrum) -> Spectrum {
    let peaks: Vec<Peak> = spectrum
        .peaks()
        .iter()
        .map(|p| Peak::new(p.mz, p.intensity.max(0.0).sqrt()))
        .collect();
    spectrum.with_peaks(peaks).expect("sqrt preserves validity")
}

/// Scales intensities to unit Euclidean norm. An all-zero spectrum is
/// returned unchanged.
pub fn unit_norm(spectrum: &Spectrum) -> Spectrum {
    let norm: f64 = spectrum
        .peaks()
        .iter()
        .map(|p| f64::from(p.intensity) * f64::from(p.intensity))
        .sum::<f64>()
        .sqrt();
    if norm <= 0.0 {
        return spectrum.clone();
    }
    let peaks: Vec<Peak> = spectrum
        .peaks()
        .iter()
        .map(|p| Peak::new(p.mz, (f64::from(p.intensity) / norm) as f32))
        .collect();
    spectrum
        .with_peaks(peaks)
        .expect("scaling preserves validity")
}

/// The composed scale-and-normalize stage: `sqrt` then unit norm.
pub fn scale_and_normalize(spectrum: &Spectrum) -> Spectrum {
    unit_norm(&sqrt_scale(spectrum))
}

/// Replaces intensities with dense ranks in `[1, n]` (1 = weakest), a
/// robust alternative normalization exposed for ablation experiments.
pub fn rank_transform(spectrum: &Spectrum) -> Spectrum {
    let n = spectrum.peak_count();
    let mut order: Vec<usize> = (0..n).collect();
    let peaks = spectrum.peaks();
    order.sort_by(|&a, &b| peaks[a].intensity.total_cmp(&peaks[b].intensity));
    let mut ranked = peaks.to_vec();
    for (rank, &idx) in order.iter().enumerate() {
        ranked[idx] = Peak::new(peaks[idx].mz, (rank + 1) as f32);
    }
    spectrum
        .with_peaks(ranked)
        .expect("ranking preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::Precursor;

    fn spectrum(intensities: &[f32]) -> Spectrum {
        let peaks: Vec<Peak> = intensities
            .iter()
            .enumerate()
            .map(|(i, &it)| Peak::new(100.0 + 10.0 * i as f64, it))
            .collect();
        Spectrum::new("t", Precursor::new(500.0, 2).unwrap(), peaks).unwrap()
    }

    #[test]
    fn sqrt_scale_values() {
        let s = sqrt_scale(&spectrum(&[4.0, 9.0, 16.0]));
        let its: Vec<f32> = s.peaks().iter().map(|p| p.intensity).collect();
        assert_eq!(its, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn unit_norm_gives_unit_length() {
        let s = unit_norm(&spectrum(&[3.0, 4.0]));
        let norm: f64 = s
            .peaks()
            .iter()
            .map(|p| f64::from(p.intensity) * f64::from(p.intensity))
            .sum();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((f64::from(s.peaks()[0].intensity) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn unit_norm_zero_spectrum_unchanged() {
        let s = spectrum(&[0.0, 0.0]);
        assert_eq!(unit_norm(&s), s);
    }

    #[test]
    fn scale_and_normalize_composition() {
        let s = scale_and_normalize(&spectrum(&[16.0, 9.0]));
        // sqrt -> [4, 3]; norm 5 -> [0.8, 0.6].
        assert!((f64::from(s.peaks()[0].intensity) - 0.8).abs() < 1e-6);
        assert!((f64::from(s.peaks()[1].intensity) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn sqrt_compresses_dynamic_range() {
        let s = spectrum(&[1.0, 10_000.0]);
        let scaled = sqrt_scale(&s);
        let ratio_before = s.peaks()[1].intensity / s.peaks()[0].intensity;
        let ratio_after = scaled.peaks()[1].intensity / scaled.peaks()[0].intensity;
        assert!(ratio_after < ratio_before / 10.0);
    }

    #[test]
    fn rank_transform_is_permutation_of_ranks() {
        let s = rank_transform(&spectrum(&[50.0, 10.0, 30.0]));
        let its: Vec<f32> = s.peaks().iter().map(|p| p.intensity).collect();
        assert_eq!(its, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn rank_transform_preserves_order_relation() {
        let orig = spectrum(&[5.0, 2.0, 8.0, 1.0]);
        let ranked = rank_transform(&orig);
        for i in 0..4 {
            for j in 0..4 {
                let before = orig.peaks()[i].intensity < orig.peaks()[j].intensity;
                let after = ranked.peaks()[i].intensity < ranked.peaks()[j].intensity;
                assert_eq!(before, after);
            }
        }
    }

    #[test]
    fn empty_spectrum_all_transforms() {
        let s = spectrum(&[]);
        assert_eq!(sqrt_scale(&s).peak_count(), 0);
        assert_eq!(unit_norm(&s).peak_count(), 0);
        assert_eq!(rank_transform(&s).peak_count(), 0);
    }
}
