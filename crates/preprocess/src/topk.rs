//! Top-k peak selection.
//!
//! The paper's Top-k Selector "employs a streamlined Bitonic sorting
//! algorithm" (§III-A) because bitonic networks have a fixed,
//! data-independent comparator schedule that maps directly onto FPGA
//! pipelines. [`bitonic_top_k`] is a bit-exact software model of that
//! network (padding to a power of two, full sort, take k);
//! [`select_top_k`] is the O(n) quickselect reference both are tested
//! against. Both return the k most intense peaks **re-sorted by m/z**, the
//! order the encoder consumes.

use spechd_ms::{Peak, Spectrum};

/// Selects the `k` most intense peaks using a bitonic sorting network,
/// mirroring the FPGA implementation. Returns peaks sorted by m/z.
///
/// Ties in intensity resolve deterministically by m/z (larger m/z ranks
/// higher), making the network output unique.
///
/// # Examples
///
/// ```
/// use spechd_preprocess::topk::bitonic_top_k;
/// use spechd_ms::Peak;
/// let peaks = vec![
///     Peak::new(100.0, 5.0),
///     Peak::new(200.0, 50.0),
///     Peak::new(300.0, 20.0),
/// ];
/// let top2 = bitonic_top_k(&peaks, 2);
/// assert_eq!(top2.len(), 2);
/// assert_eq!(top2[0].mz, 200.0); // sorted by m/z again
/// assert_eq!(top2[1].mz, 300.0);
/// ```
pub fn bitonic_top_k(peaks: &[Peak], k: usize) -> Vec<Peak> {
    if k == 0 || peaks.is_empty() {
        return Vec::new();
    }
    if peaks.len() <= k {
        let mut out = peaks.to_vec();
        out.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        return out;
    }
    // Pad to the next power of two with sentinel minimum elements, exactly
    // like the hardware pads its sorting lanes.
    let n = peaks.len().next_power_of_two();
    let sentinel = Peak::new(f64::MAX, f32::NEG_INFINITY);
    let mut lanes: Vec<Peak> = Vec::with_capacity(n);
    lanes.extend_from_slice(peaks);
    lanes.resize(n, sentinel);

    bitonic_sort_desc(&mut lanes);

    let mut out: Vec<Peak> = lanes.into_iter().take(k).collect();
    out.sort_by(|a, b| a.mz.total_cmp(&b.mz));
    out
}

/// Rank key: intensity first, m/z as the deterministic tiebreak.
#[inline]
fn rank_ge(a: &Peak, b: &Peak) -> bool {
    match a.intensity.total_cmp(&b.intensity) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.mz >= b.mz,
    }
}

/// In-place bitonic sort into descending rank order. `data.len()` must be
/// a power of two (guaranteed by the caller's padding).
fn bitonic_sort_desc(data: &mut [Peak]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut stage = 2;
    while stage <= n {
        let mut step = stage / 2;
        while step > 0 {
            for i in 0..n {
                let partner = i ^ step;
                if partner > i {
                    // Direction: ascending blocks alternate; we sort the
                    // whole array descending, so invert the classic test.
                    let descending = (i & stage) == 0;
                    let in_order = rank_ge(&data[i], &data[partner]);
                    if descending != in_order {
                        data.swap(i, partner);
                    }
                }
            }
            step /= 2;
        }
        stage *= 2;
    }
}

/// Number of compare-exchange operations the bitonic network performs for
/// `len` input peaks — the quantity the FPGA cycle model charges.
pub fn bitonic_comparator_count(len: usize) -> u64 {
    if len <= 1 {
        return 0;
    }
    let n = len.next_power_of_two() as u64;
    let stages = n.trailing_zeros() as u64; // log2(n)
                                            // Sum over k=1..log2(n) of k comparator columns, each n/2 comparators.
    n / 2 * stages * (stages + 1) / 2
}

/// Quickselect-based top-k reference (host-side algorithm); same contract
/// as [`bitonic_top_k`] and tested equal against it.
pub fn select_top_k(peaks: &[Peak], k: usize) -> Vec<Peak> {
    if k == 0 || peaks.is_empty() {
        return Vec::new();
    }
    let mut work = peaks.to_vec();
    let k = k.min(work.len());
    work.sort_by(|a, b| match b.intensity.total_cmp(&a.intensity) {
        std::cmp::Ordering::Equal => b.mz.total_cmp(&a.mz),
        other => other,
    });
    work.truncate(k);
    work.sort_by(|a, b| a.mz.total_cmp(&b.mz));
    work
}

/// Convenience: applies [`bitonic_top_k`] to a spectrum, preserving its
/// metadata.
pub fn top_k_spectrum(spectrum: &Spectrum, k: usize) -> Spectrum {
    let kept = bitonic_top_k(spectrum.peaks(), k);
    spectrum
        .with_peaks(kept)
        .expect("top-k preserves peak validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::{Rng, Xoshiro256StarStar};

    fn random_peaks(n: usize, seed: u64) -> Vec<Peak> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n)
            .map(|_| Peak::new(rng.range_f64(100.0, 2000.0), rng.next_f32() * 1000.0))
            .collect()
    }

    #[test]
    fn keeps_k_most_intense() {
        let peaks = vec![
            Peak::new(100.0, 1.0),
            Peak::new(200.0, 9.0),
            Peak::new(300.0, 5.0),
            Peak::new(400.0, 7.0),
            Peak::new(500.0, 3.0),
        ];
        let top3 = bitonic_top_k(&peaks, 3);
        let mzs: Vec<f64> = top3.iter().map(|p| p.mz).collect();
        assert_eq!(mzs, vec![200.0, 300.0, 400.0]);
    }

    #[test]
    fn matches_quickselect_reference() {
        for seed in 0..10 {
            for n in [1usize, 2, 3, 7, 16, 33, 100, 257] {
                let peaks = random_peaks(n, seed * 31 + n as u64);
                for k in [1usize, 5, 20, 50, 300] {
                    let a = bitonic_top_k(&peaks, k);
                    let b = select_top_k(&peaks, k);
                    assert_eq!(a, b, "n={n} k={k} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(bitonic_top_k(&[], 5).is_empty());
        assert!(bitonic_top_k(&random_peaks(10, 1), 0).is_empty());
        assert!(select_top_k(&[], 5).is_empty());
    }

    #[test]
    fn k_larger_than_input_returns_all_sorted() {
        let peaks = random_peaks(7, 2);
        let out = bitonic_top_k(&peaks, 100);
        assert_eq!(out.len(), 7);
        assert!(out.windows(2).all(|w| w[0].mz <= w[1].mz));
    }

    #[test]
    fn output_sorted_by_mz() {
        let out = bitonic_top_k(&random_peaks(64, 3), 20);
        assert!(out.windows(2).all(|w| w[0].mz <= w[1].mz));
    }

    #[test]
    fn intensity_ties_broken_by_mz() {
        let peaks = vec![
            Peak::new(100.0, 5.0),
            Peak::new(200.0, 5.0),
            Peak::new(300.0, 5.0),
        ];
        // Larger m/z ranks higher on ties: top-2 keeps 200 and 300.
        let out = bitonic_top_k(&peaks, 2);
        let mzs: Vec<f64> = out.iter().map(|p| p.mz).collect();
        assert_eq!(mzs, vec![200.0, 300.0]);
    }

    #[test]
    fn comparator_count_formula() {
        // n=8: log2=3 stages, 3*(3+1)/2 = 6 columns of 4 comparators = 24.
        assert_eq!(bitonic_comparator_count(8), 24);
        assert_eq!(bitonic_comparator_count(1), 0);
        // Non-power-of-two pads up: 5 -> 8.
        assert_eq!(bitonic_comparator_count(5), 24);
        // n=1024: 10 stages -> 512 * 55 = 28160.
        assert_eq!(bitonic_comparator_count(1024), 28_160);
    }

    #[test]
    fn top_k_spectrum_preserves_metadata() {
        use spechd_ms::{Precursor, Spectrum};
        let s = Spectrum::new(
            "meta",
            Precursor::new(444.0, 2).unwrap(),
            random_peaks(30, 4),
        )
        .unwrap()
        .with_retention_time(12.0);
        let t = top_k_spectrum(&s, 10);
        assert_eq!(t.peak_count(), 10);
        assert_eq!(t.title(), "meta");
        assert_eq!(t.retention_time(), Some(12.0));
    }

    #[test]
    fn large_input_stress() {
        let peaks = random_peaks(3000, 5);
        let out = bitonic_top_k(&peaks, 150);
        assert_eq!(out.len(), 150);
        assert_eq!(out, select_top_k(&peaks, 150));
    }
}
