//! The composed preprocessing pipeline.

use crate::{normalize, topk, SpectraFilter};
use spechd_ms::SpectrumDataset;

/// Configuration for the full preprocessing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Peak-level filter settings.
    pub filter: SpectraFilter,
    /// Number of peaks kept by the top-k selector.
    pub top_k: usize,
    /// Spectra with fewer surviving peaks are discarded (falcon uses 5;
    /// the same default applies here).
    pub min_peaks: usize,
    /// Whether to apply the sqrt + unit-norm scaling stage.
    pub scale: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            filter: SpectraFilter::default(),
            top_k: 50,
            min_peaks: 5,
            scale: true,
        }
    }
}

/// Work/volume counters reported by a preprocessing run, mirrored by the
/// MSAS energy model in `spechd-fpga`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessStats {
    /// Spectra seen on input.
    pub spectra_in: usize,
    /// Spectra surviving `min_peaks`.
    pub spectra_out: usize,
    /// Total peaks on input.
    pub peaks_in: usize,
    /// Total peaks after filter + top-k.
    pub peaks_out: usize,
    /// Peaks removed by filtering and top-k selection.
    pub peaks_removed: usize,
}

/// Result of preprocessing a dataset.
#[derive(Debug, Clone)]
pub struct PreprocessResult {
    /// The surviving spectra (filtered, top-k'd, scaled), labels aligned.
    pub dataset: SpectrumDataset,
    /// For every output spectrum, its index in the input dataset.
    pub kept: Vec<usize>,
    /// Volume statistics.
    pub stats: PreprocessStats,
}

/// The composed per-spectrum pipeline: filter → top-k → scale/normalize,
/// with dataset-level bookkeeping.
///
/// # Examples
///
/// ```
/// use spechd_preprocess::{PreprocessConfig, PreprocessPipeline};
/// use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
/// let ds = SyntheticGenerator::new(SyntheticConfig {
///     num_spectra: 30, num_peptides: 6, seed: 1, ..SyntheticConfig::default()
/// }).generate();
/// let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&ds);
/// assert_eq!(result.dataset.len(), result.kept.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessPipeline {
    config: PreprocessConfig,
}

impl PreprocessPipeline {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `top_k == 0`.
    pub fn new(config: PreprocessConfig) -> Self {
        assert!(config.top_k > 0, "top_k must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PreprocessConfig {
        &self.config
    }

    /// Runs the pipeline over a dataset, keeping labels aligned with the
    /// surviving spectra.
    pub fn run(&self, dataset: &SpectrumDataset) -> PreprocessResult {
        let mut out = SpectrumDataset::new();
        let mut kept = Vec::new();
        let mut stats = PreprocessStats::default();
        for (index, (spectrum, label)) in dataset.iter().enumerate() {
            if let Some(finished) = self.process_one(spectrum, &mut stats) {
                out.push(finished, label);
                kept.push(index);
            }
        }
        PreprocessResult {
            dataset: out,
            kept,
            stats,
        }
    }

    /// Preprocesses a single spectrum, the streaming counterpart of
    /// [`PreprocessPipeline::run`]: filter → top-k → `min_peaks` gate →
    /// scale/normalize. Returns `None` when the spectrum is discarded.
    ///
    /// Folds the same volume counters into `stats` that `run` reports, so
    /// streaming a dataset spectrum-by-spectrum accumulates statistics
    /// identical to one batch call.
    pub fn process_one(
        &self,
        spectrum: &spechd_ms::Spectrum,
        stats: &mut PreprocessStats,
    ) -> Option<spechd_ms::Spectrum> {
        stats.spectra_in += 1;
        stats.peaks_in += spectrum.peak_count();
        let filtered = self.config.filter.apply(spectrum);
        let selected = topk::top_k_spectrum(&filtered, self.config.top_k);
        if selected.peak_count() < self.config.min_peaks {
            stats.peaks_removed += spectrum.peak_count();
            return None;
        }
        let finished = if self.config.scale {
            normalize::scale_and_normalize(&selected)
        } else {
            selected
        };
        stats.spectra_out += 1;
        stats.peaks_out += finished.peak_count();
        stats.peaks_removed += spectrum.peak_count() - finished.peak_count();
        Some(finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
    use spechd_ms::{Peak, Precursor, Spectrum};

    fn synthetic(n: usize) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: 20,
            seed: 5,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn output_capped_at_top_k() {
        let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&synthetic(100));
        for s in result.dataset.spectra() {
            assert!(s.peak_count() <= 50);
            assert!(s.peak_count() >= 5);
        }
    }

    #[test]
    fn labels_stay_aligned() {
        let ds = synthetic(150);
        let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&ds);
        for (out_idx, &in_idx) in result.kept.iter().enumerate() {
            assert_eq!(result.dataset.labels()[out_idx], ds.labels()[in_idx]);
            assert_eq!(
                result.dataset.spectra()[out_idx].title(),
                ds.spectra()[in_idx].title()
            );
        }
    }

    #[test]
    fn min_peaks_discards_sparse_spectra() {
        let mut ds = SpectrumDataset::new();
        ds.push(
            Spectrum::new(
                "sparse",
                Precursor::new(500.0, 2).unwrap(),
                vec![Peak::new(300.0, 10.0), Peak::new(310.0, 10.0)],
            )
            .unwrap(),
            Some(1),
        );
        let dense_peaks: Vec<Peak> = (0..30)
            .map(|i| Peak::new(250.0 + 10.0 * i as f64, 10.0))
            .collect();
        ds.push(
            Spectrum::new("dense", Precursor::new(600.0, 2).unwrap(), dense_peaks).unwrap(),
            Some(2),
        );
        let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&ds);
        assert_eq!(result.dataset.len(), 1);
        assert_eq!(result.dataset.spectra()[0].title(), "dense");
        assert_eq!(result.kept, vec![1]);
        assert_eq!(result.stats.spectra_in, 2);
        assert_eq!(result.stats.spectra_out, 1);
    }

    #[test]
    fn stats_balance() {
        let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&synthetic(80));
        let st = result.stats;
        assert_eq!(st.peaks_in, st.peaks_out + st.peaks_removed);
        assert!(st.peaks_out <= st.peaks_in);
    }

    #[test]
    fn scaling_gives_unit_norm() {
        let result = PreprocessPipeline::new(PreprocessConfig::default()).run(&synthetic(20));
        for s in result.dataset.spectra() {
            let norm: f64 = s
                .peaks()
                .iter()
                .map(|p| f64::from(p.intensity) * f64::from(p.intensity))
                .sum();
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        }
    }

    #[test]
    fn scale_disabled_keeps_raw_intensities() {
        let cfg = PreprocessConfig {
            scale: false,
            ..PreprocessConfig::default()
        };
        let result = PreprocessPipeline::new(cfg).run(&synthetic(20));
        let max = result
            .dataset
            .spectra()
            .iter()
            .flat_map(|s| s.peaks())
            .map(|p| p.intensity)
            .fold(0.0f32, f32::max);
        assert!(max > 10.0, "raw intensities expected, max {max}");
    }

    #[test]
    fn deterministic() {
        let ds = synthetic(60);
        let p = PreprocessPipeline::new(PreprocessConfig::default());
        let a = p.run(&ds);
        let b = p.run(&ds);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn process_one_accumulates_run_stats() {
        let ds = synthetic(120);
        let p = PreprocessPipeline::new(PreprocessConfig::default());
        let batch = p.run(&ds);
        let mut stats = PreprocessStats::default();
        let mut survivors = Vec::new();
        for (s, _) in ds.iter() {
            if let Some(out) = p.process_one(s, &mut stats) {
                survivors.push(out);
            }
        }
        assert_eq!(stats, batch.stats);
        assert_eq!(survivors.as_slice(), batch.dataset.spectra());
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn zero_top_k_panics() {
        let cfg = PreprocessConfig {
            top_k: 0,
            ..PreprocessConfig::default()
        };
        PreprocessPipeline::new(cfg);
    }
}
