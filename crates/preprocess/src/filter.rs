//! Spectra filtering: precursor-peak and low-intensity removal.

use spechd_ms::{Peak, Spectrum};

/// The paper's Spectra Filter: "efficiently filtering out peaks related to
/// the precursor ion or with intensities less than 1% of the base peak"
/// (§III-A), plus an instrument m/z window.
///
/// # Examples
///
/// ```
/// use spechd_preprocess::SpectraFilter;
/// use spechd_ms::{Peak, Precursor, Spectrum};
///
/// let s = Spectrum::new(
///     "x",
///     Precursor::new(500.0, 2)?,
///     vec![
///         Peak::new(500.05, 100.0), // precursor-related: removed
///         Peak::new(300.0, 100.0),  // kept
///         Peak::new(400.0, 0.5),    // < 1% of base: removed
///     ],
/// )?;
/// let filtered = SpectraFilter::default().apply(&s);
/// assert_eq!(filtered.peak_count(), 1);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectraFilter {
    /// Window (± Thomson) around the precursor m/z (and its neutral-loss
    /// satellites) to remove.
    pub precursor_tolerance: f64,
    /// Minimum intensity relative to the base peak (paper: 0.01).
    pub min_relative_intensity: f64,
    /// Retained m/z window; peaks outside are dropped.
    pub mz_window: (f64, f64),
}

impl Default for SpectraFilter {
    fn default() -> Self {
        Self {
            precursor_tolerance: 1.5,
            min_relative_intensity: 0.01,
            mz_window: (101.0, 1999.0),
        }
    }
}

impl SpectraFilter {
    /// Applies the filter, returning a new spectrum with the surviving
    /// peaks (metadata preserved).
    pub fn apply(&self, spectrum: &Spectrum) -> Spectrum {
        let base = spectrum
            .base_peak()
            .map(|p| f64::from(p.intensity))
            .unwrap_or(0.0);
        let threshold = base * self.min_relative_intensity;
        let precursor_mz = spectrum.precursor().mz();
        let kept: Vec<Peak> = spectrum
            .peaks()
            .iter()
            .filter(|p| {
                let rel_ok = f64::from(p.intensity) >= threshold;
                let not_precursor = (p.mz - precursor_mz).abs() > self.precursor_tolerance;
                let in_window = p.mz >= self.mz_window.0 && p.mz <= self.mz_window.1;
                rel_ok && not_precursor && in_window
            })
            .copied()
            .collect();
        spectrum
            .with_peaks(kept)
            .expect("filtering preserves peak validity")
    }

    /// Number of peaks the filter would remove.
    pub fn removed_count(&self, spectrum: &Spectrum) -> usize {
        spectrum.peak_count() - self.apply(spectrum).peak_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::Precursor;

    fn spectrum(peaks: Vec<Peak>) -> Spectrum {
        Spectrum::new("t", Precursor::new(500.0, 2).unwrap(), peaks).unwrap()
    }

    #[test]
    fn removes_low_intensity() {
        let s = spectrum(vec![
            Peak::new(300.0, 100.0),
            Peak::new(310.0, 0.9),
            Peak::new(320.0, 1.1),
        ]);
        let f = SpectraFilter::default().apply(&s);
        // 1% of 100 = 1.0: the 0.9 peak goes, the 1.1 stays.
        assert_eq!(f.peak_count(), 2);
        assert!(f.peaks().iter().all(|p| p.intensity >= 1.0));
    }

    #[test]
    fn removes_precursor_window() {
        let s = spectrum(vec![
            Peak::new(499.0, 50.0),
            Peak::new(500.0, 50.0),
            Peak::new(501.4, 50.0),
            Peak::new(502.0, 50.0),
        ]);
        let f = SpectraFilter::default().apply(&s);
        let mzs: Vec<f64> = f.peaks().iter().map(|p| p.mz).collect();
        assert_eq!(mzs, vec![502.0]);
    }

    #[test]
    fn removes_out_of_window() {
        let s = spectrum(vec![Peak::new(50.0, 10.0), Peak::new(300.0, 10.0)]);
        let f = SpectraFilter::default().apply(&s);
        assert_eq!(f.peak_count(), 1);
        assert_eq!(f.peaks()[0].mz, 300.0);
    }

    #[test]
    fn empty_spectrum_passes_through() {
        let s = spectrum(vec![]);
        assert_eq!(SpectraFilter::default().apply(&s).peak_count(), 0);
    }

    #[test]
    fn metadata_preserved() {
        let s = spectrum(vec![Peak::new(300.0, 10.0)]).with_retention_time(7.0);
        let f = SpectraFilter::default().apply(&s);
        assert_eq!(f.title(), "t");
        assert_eq!(f.retention_time(), Some(7.0));
        assert_eq!(f.precursor().charge(), 2);
    }

    #[test]
    fn removed_count_consistent() {
        let s = spectrum(vec![
            Peak::new(300.0, 100.0),
            Peak::new(500.1, 50.0),
            Peak::new(310.0, 0.1),
        ]);
        let filter = SpectraFilter::default();
        assert_eq!(filter.removed_count(&s), 2);
    }

    #[test]
    fn custom_threshold() {
        let s = spectrum(vec![Peak::new(300.0, 100.0), Peak::new(310.0, 4.0)]);
        let strict = SpectraFilter {
            min_relative_intensity: 0.05,
            ..Default::default()
        };
        assert_eq!(strict.apply(&s).peak_count(), 1);
        let lax = SpectraFilter {
            min_relative_intensity: 0.01,
            ..Default::default()
        };
        assert_eq!(lax.apply(&s).peak_count(), 2);
    }
}
