//! Precursor-m/z bucketing (Eq. 1 of the SpecHD paper).
//!
//! "To manage the computational complexity, we partition the dataset into
//! smaller, discrete 'buckets' calculated as
//! `bucket_i = ⌊(m/z_i − 1.00794) · C_i / resolution⌋`" — confining the
//! quadratic pairwise work to spectra whose neutral mass agrees within the
//! instrument resolution. Charge participates in the formula, so the same
//! peptide at different charge states lands in the same *mass* bucket.

use spechd_ms::{Spectrum, HYDROGEN_AVG_MASS};

/// Computes Eq. (1) bucket indices and groups spectra by them.
///
/// # Examples
///
/// ```
/// use spechd_preprocess::PrecursorBucketer;
/// use spechd_ms::{Precursor, Spectrum};
///
/// let bucketer = PrecursorBucketer::new(1.0);
/// let s = Spectrum::new("x", Precursor::new(500.5, 2)?, vec![])?;
/// // (500.5 - 1.00794) * 2 / 1.0 = 998.98 -> bucket 998
/// assert_eq!(bucketer.bucket_of(&s), 998);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecursorBucketer {
    resolution: f64,
}

impl PrecursorBucketer {
    /// Creates a bucketer. `resolution` is the mass granularity in Dalton;
    /// the paper states it "can range from 0.05 to 1".
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not finite and positive.
    pub fn new(resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "resolution must be positive"
        );
        Self { resolution }
    }

    /// The configured resolution in Dalton.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Eq. (1): the bucket index of one spectrum.
    ///
    /// The neutral mass `(mz − 1.00794) · charge` is *negative* for
    /// spectra whose precursor m/z lies below the hydrogen mass at charge
    /// 1 — physically nonsensical, but nothing upstream forbids such
    /// records (`Precursor` only requires `mz > 0`), and file formats
    /// deliver whatever the instrument wrote. Two properties keep shard
    /// routing sound for them:
    ///
    /// * `.floor()` (not an `as i64` truncation of the quotient) is used,
    ///   so the sub-hydrogen range does not collapse into bucket 0:
    ///   truncation would fold every mass in `(-resolution, resolution)`
    ///   together, merging bogus records into a real bucket. With `floor`,
    ///   negative masses land in distinct, correctly ordered negative
    ///   buckets of the same `resolution` width.
    /// * The key space is `i64` end to end (map keys, [`Bucket::key`]), so
    ///   negative keys sort before all real buckets instead of wrapping.
    ///
    /// The cast itself saturates at `i64::MIN`/`i64::MAX` only for masses
    /// beyond ±9.2 × 10¹⁸ Da, far outside anything a parser accepts.
    pub fn bucket_of(&self, spectrum: &Spectrum) -> i64 {
        let mz = spectrum.precursor().mz();
        let charge = f64::from(spectrum.precursor().charge());
        ((mz - HYDROGEN_AVG_MASS) * charge / self.resolution).floor() as i64
    }

    /// Groups spectrum indices by bucket, returning buckets sorted by key
    /// (i.e. by precursor neutral mass — the paper's "data organization
    /// strategy based on precursor m/z sorting").
    pub fn bucketize(&self, spectra: &[Spectrum]) -> Vec<Bucket> {
        let mut map: std::collections::BTreeMap<i64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, s) in spectra.iter().enumerate() {
            map.entry(self.bucket_of(s)).or_default().push(i);
        }
        map.into_iter()
            .map(|(key, members)| Bucket { key, members })
            .collect()
    }
}

impl Default for PrecursorBucketer {
    fn default() -> Self {
        Self::new(1.0)
    }
}

/// One precursor-mass bucket: its Eq. (1) key and the indices of member
/// spectra (in input order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Eq. (1) bucket index.
    pub key: i64,
    /// Indices into the source spectrum slice.
    pub members: Vec<usize>,
}

impl Bucket {
    /// Number of member spectra.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the bucket is empty (never true for produced buckets).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Summary of a bucketized dataset: the quantity the FPGA scheduler uses
/// for load balancing across clustering kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStats {
    /// Number of non-empty buckets.
    pub count: usize,
    /// Largest bucket size.
    pub max_size: usize,
    /// Mean bucket size.
    pub mean_size: f64,
    /// Sum over buckets of `n_b²` — proportional to total pairwise work.
    pub pairwise_work: u64,
}

/// Computes [`BucketStats`] for a bucketization.
pub fn bucket_stats(buckets: &[Bucket]) -> BucketStats {
    bucket_stats_from_sizes(buckets.iter().map(Bucket::len))
}

/// Computes [`BucketStats`] from bucket sizes alone — for callers (like
/// the streaming sharder) whose membership lists live elsewhere and should
/// not be copied into [`Bucket`] values just for accounting.
pub fn bucket_stats_from_sizes<I: IntoIterator<Item = usize>>(sizes: I) -> BucketStats {
    let mut count = 0usize;
    let mut max_size = 0usize;
    let mut total = 0usize;
    let mut pairwise_work = 0u64;
    for size in sizes {
        count += 1;
        max_size = max_size.max(size);
        total += size;
        pairwise_work += (size * size) as u64;
    }
    BucketStats {
        count,
        max_size,
        mean_size: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        pairwise_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::Precursor;

    fn spectrum(mz: f64, charge: u8) -> Spectrum {
        Spectrum::new(
            format!("mz={mz}/z={charge}"),
            Precursor::new(mz, charge).unwrap(),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn equation_one_values() {
        let b = PrecursorBucketer::new(1.0);
        // (500.5 - 1.00794)*2 = 998.98 -> 998
        assert_eq!(b.bucket_of(&spectrum(500.5, 2)), 998);
        // (500.5 - 1.00794)*3 = 1498.48 -> 1498
        assert_eq!(b.bucket_of(&spectrum(500.5, 3)), 1498);
    }

    #[test]
    fn same_neutral_mass_different_charge_same_bucket() {
        // A peptide of neutral mass M observed at 2+ and 3+:
        // mz_z = M/z + proton. Eq. (1) recovers ≈M for both.
        let m = 1500.0;
        let mz2 = m / 2.0 + 1.00728;
        let mz3 = m / 3.0 + 1.00728;
        let b = PrecursorBucketer::new(1.0);
        let b2 = b.bucket_of(&spectrum(mz2, 2));
        let b3 = b.bucket_of(&spectrum(mz3, 3));
        assert!((b2 - b3).abs() <= 1, "buckets {b2} vs {b3}");
    }

    #[test]
    fn negative_neutral_mass_keeps_distinct_buckets() {
        // m/z below the hydrogen mass at charge 1 computes a negative
        // neutral mass. Regression guard: floor (not truncation) must keep
        // these in their own negative buckets rather than silently
        // collapsing them into bucket 0 alongside real sub-resolution
        // masses.
        let b = PrecursorBucketer::new(1.0);
        let tiny = spectrum(0.10, 1); // mass ≈ −0.908 → bucket −1
        let tinier = spectrum(0.10, 3); // mass ≈ −2.724 → bucket −3
        let sub_da = spectrum(1.50, 1); // mass ≈ 0.492 → bucket 0
        assert_eq!(b.bucket_of(&tiny), -1);
        assert_eq!(b.bucket_of(&tinier), -3);
        assert_eq!(b.bucket_of(&sub_da), 0);
        // Truncation (`as i64` on the raw quotient) would have mapped all
        // three to bucket 0.
        let buckets = b.bucketize(&[tiny, tinier, sub_da]);
        assert_eq!(buckets.len(), 3);
        assert_eq!(
            buckets.iter().map(|b| b.key).collect::<Vec<_>>(),
            vec![-3, -1, 0],
            "negative keys must sort below real buckets"
        );
    }

    #[test]
    fn negative_mass_fine_resolution_stays_distinct() {
        let b = PrecursorBucketer::new(0.05);
        let a = spectrum(0.20, 1); // mass ≈ −0.808 → bucket −17
        let c = spectrum(0.90, 1); // mass ≈ −0.108 → bucket −3
        assert_ne!(b.bucket_of(&a), b.bucket_of(&c));
        assert!(b.bucket_of(&a) < b.bucket_of(&c));
    }

    #[test]
    fn finer_resolution_means_more_buckets() {
        let spectra: Vec<Spectrum> = (0..100)
            .map(|i| spectrum(400.0 + 0.37 * i as f64, 2))
            .collect();
        let coarse = PrecursorBucketer::new(1.0).bucketize(&spectra);
        let fine = PrecursorBucketer::new(0.05).bucketize(&spectra);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn bucketize_partitions_everything() {
        let spectra: Vec<Spectrum> = (0..57)
            .map(|i| spectrum(400.0 + 3.1 * (i % 9) as f64, 2))
            .collect();
        let buckets = PrecursorBucketer::new(1.0).bucketize(&spectra);
        let mut seen = vec![false; spectra.len()];
        for bucket in &buckets {
            assert!(!bucket.is_empty());
            for &m in &bucket.members {
                assert!(!seen[m], "index {m} appears twice");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn buckets_sorted_by_key() {
        let spectra: Vec<Spectrum> =
            vec![spectrum(900.0, 2), spectrum(300.0, 2), spectrum(600.0, 2)];
        let buckets = PrecursorBucketer::new(1.0).bucketize(&spectra);
        assert!(buckets.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn close_precursors_share_bucket() {
        let spectra = vec![spectrum(500.20, 2), spectrum(500.21, 2)];
        let buckets = PrecursorBucketer::new(1.0).bucketize(&spectra);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].members, vec![0, 1]);
    }

    #[test]
    fn stats_computation() {
        let spectra = vec![spectrum(500.2, 2), spectrum(500.21, 2), spectrum(800.0, 2)];
        let buckets = PrecursorBucketer::new(1.0).bucketize(&spectra);
        let st = bucket_stats(&buckets);
        assert_eq!(st.count, 2);
        assert_eq!(st.max_size, 2);
        assert!((st.mean_size - 1.5).abs() < 1e-12);
        assert_eq!(st.pairwise_work, 4 + 1);
    }

    #[test]
    fn stats_empty() {
        let st = bucket_stats(&[]);
        assert_eq!(st.count, 0);
        assert_eq!(st.max_size, 0);
        assert_eq!(st.mean_size, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        PrecursorBucketer::new(0.0);
    }
}
