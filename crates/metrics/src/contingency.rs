//! Contingency table between predicted clusters and ground-truth classes.

use std::collections::HashMap;

/// A contingency table over the *identified* items (those with
/// `Some(class)` ground truth): cell `(cluster, class)` counts co-occurring
/// items. All information-theoretic metrics derive from it.
///
/// # Examples
///
/// ```
/// use spechd_metrics::Contingency;
/// let predicted = [0, 0, 1];
/// let truth = [Some(5), Some(5), Some(6)];
/// let c = Contingency::build(&predicted, &truth);
/// assert_eq!(c.total(), 3);
/// assert!((c.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Contingency {
    /// cells[(cluster, class)] = count
    cells: HashMap<(usize, u32), usize>,
    cluster_totals: HashMap<usize, usize>,
    class_totals: HashMap<u32, usize>,
    total: usize,
}

impl Contingency {
    /// Builds the table, skipping items with `None` truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn build(predicted: &[usize], truth: &[Option<u32>]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "predicted/truth length mismatch"
        );
        let mut cells = HashMap::new();
        let mut cluster_totals = HashMap::new();
        let mut class_totals = HashMap::new();
        let mut total = 0usize;
        for (&k, t) in predicted.iter().zip(truth) {
            if let Some(c) = t {
                *cells.entry((k, *c)).or_insert(0) += 1;
                *cluster_totals.entry(k).or_insert(0) += 1;
                *class_totals.entry(*c).or_insert(0) += 1;
                total += 1;
            }
        }
        Self {
            cells,
            cluster_totals,
            class_totals,
            total,
        }
    }

    /// Number of identified items covered by the table.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct predicted clusters containing identified items.
    pub fn num_clusters(&self) -> usize {
        self.cluster_totals.len()
    }

    /// Number of distinct ground-truth classes.
    pub fn num_classes(&self) -> usize {
        self.class_totals.len()
    }

    fn entropy(totals: impl Iterator<Item = usize>, n: f64) -> f64 {
        let mut h = 0.0;
        for t in totals {
            if t > 0 {
                let p = t as f64 / n;
                h -= p * p.ln();
            }
        }
        h
    }

    /// Entropy of the class marginal, `H(C)`.
    pub fn class_entropy(&self) -> f64 {
        Self::entropy(self.class_totals.values().copied(), self.total as f64)
    }

    /// Entropy of the cluster marginal, `H(K)`.
    pub fn cluster_entropy(&self) -> f64 {
        Self::entropy(self.cluster_totals.values().copied(), self.total as f64)
    }

    /// Conditional entropy of classes given clusters, `H(C|K)`.
    pub fn class_given_cluster_entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut h = 0.0;
        for ((k, _), &count) in &self.cells {
            let p_joint = count as f64 / n;
            let p_cluster = self.cluster_totals[k] as f64 / n;
            h -= p_joint * (p_joint / p_cluster).ln();
        }
        h
    }

    /// Conditional entropy of clusters given classes, `H(K|C)`.
    pub fn cluster_given_class_entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut h = 0.0;
        for ((_, c), &count) in &self.cells {
            let p_joint = count as f64 / n;
            let p_class = self.class_totals[c] as f64 / n;
            h -= p_joint * (p_joint / p_class).ln();
        }
        h
    }

    /// Mutual information `I(C; K)` in nats.
    pub fn mutual_information(&self) -> f64 {
        (self.class_entropy() - self.class_given_cluster_entropy()).max(0.0)
    }

    /// Homogeneity: `1 − H(C|K)/H(C)` (1 when every cluster holds one
    /// class; 1 by convention when `H(C) = 0`).
    pub fn homogeneity(&self) -> f64 {
        let hc = self.class_entropy();
        if hc == 0.0 {
            return 1.0;
        }
        (1.0 - self.class_given_cluster_entropy() / hc).clamp(0.0, 1.0)
    }

    /// Completeness: `1 − H(K|C)/H(K)` (1 when every class lands in one
    /// cluster; 1 by convention when `H(K) = 0`).
    pub fn completeness(&self) -> f64 {
        let hk = self.cluster_entropy();
        if hk == 0.0 {
            return 1.0;
        }
        (1.0 - self.cluster_given_class_entropy() / hk).clamp(0.0, 1.0)
    }

    /// Purity: fraction of items belonging to their cluster's majority
    /// class (0 for an empty table).
    pub fn purity(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut majority_sum = 0usize;
        for &k in self.cluster_totals.keys() {
            let best = self
                .cells
                .iter()
                .filter(|((kk, _), _)| *kk == k)
                .map(|(_, &v)| v)
                .max()
                .unwrap_or(0);
            majority_sum += best;
        }
        majority_sum as f64 / self.total as f64
    }

    /// Normalized mutual information with arithmetic-mean normalization:
    /// `2·I(C;K) / (H(C) + H(K))`, 0 for degenerate tables.
    pub fn nmi(&self) -> f64 {
        let denom = self.class_entropy() + self.cluster_entropy();
        if denom == 0.0 {
            return 0.0;
        }
        (2.0 * self.mutual_information() / denom).clamp(0.0, 1.0)
    }

    /// Adjusted Rand index (Hubert & Arabie 1985); 0 for degenerate
    /// tables.
    pub fn ari(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let choose2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
        let sum_cells: f64 = self.cells.values().map(|&v| choose2(v)).sum();
        let sum_clusters: f64 = self.cluster_totals.values().map(|&v| choose2(v)).sum();
        let sum_classes: f64 = self.class_totals.values().map(|&v| choose2(v)).sum();
        let all = choose2(self.total);
        let expected = sum_clusters * sum_classes / all;
        let max_index = 0.5 * (sum_clusters + sum_classes);
        if (max_index - expected).abs() < 1e-15 {
            return 0.0;
        }
        (sum_cells - expected) / (max_index - expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(v: &[u32]) -> Vec<Option<u32>> {
        v.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn totals_and_shape() {
        let c = Contingency::build(&[0, 0, 1, 1], &truth(&[1, 1, 2, 3]));
        assert_eq!(c.total(), 4);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_classes(), 3);
    }

    #[test]
    fn skips_unidentified() {
        let c = Contingency::build(&[0, 0, 1], &[Some(1), None, Some(2)]);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn entropies_of_uniform_marginals() {
        // Two classes, 2 items each: H = ln 2.
        let c = Contingency::build(&[0, 0, 1, 1], &truth(&[1, 1, 2, 2]));
        assert!((c.class_entropy() - (2.0f64).ln()).abs() < 1e-12);
        assert!((c.cluster_entropy() - (2.0f64).ln()).abs() < 1e-12);
        assert!((c.mutual_information() - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn perfect_match_metrics() {
        let c = Contingency::build(&[0, 0, 1, 1], &truth(&[9, 9, 4, 4]));
        assert!((c.homogeneity() - 1.0).abs() < 1e-12);
        assert!((c.completeness() - 1.0).abs() < 1e-12);
        assert!((c.nmi() - 1.0).abs() < 1e-12);
        assert!((c.ari() - 1.0).abs() < 1e-12);
        assert!((c.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partition_near_zero_mi() {
        // Classes alternate independently of clusters.
        let c = Contingency::build(&[0, 0, 1, 1], &truth(&[1, 2, 1, 2]));
        assert!(c.mutual_information().abs() < 1e-12);
        assert!(c.nmi().abs() < 1e-12);
        assert!((c.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn purity_majority() {
        // Cluster 0: {1,1,2} -> majority 2/3; cluster 1: {3} -> 1.
        let c = Contingency::build(&[0, 0, 0, 1], &truth(&[1, 1, 2, 3]));
        assert!((c.purity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_table_conventions() {
        let c = Contingency::build(&[], &[]);
        assert_eq!(c.total(), 0);
        assert_eq!(c.purity(), 0.0);
        assert_eq!(c.nmi(), 0.0);
        assert_eq!(c.ari(), 0.0);
        assert_eq!(c.homogeneity(), 1.0);
        assert_eq!(c.completeness(), 1.0);
    }

    #[test]
    fn single_class_conventions() {
        let c = Contingency::build(&[0, 1], &truth(&[5, 5]));
        assert_eq!(c.homogeneity(), 1.0, "H(C)=0 convention");
        assert!(c.completeness() < 1.0, "class split across clusters");
    }

    #[test]
    fn conditional_entropy_identity() {
        // H(C) - H(C|K) == H(K) - H(K|C) == I(C;K).
        let c = Contingency::build(&[0, 0, 1, 1, 1, 2], &truth(&[1, 2, 2, 2, 3, 3]));
        let lhs = c.class_entropy() - c.class_given_cluster_entropy();
        let rhs = c.cluster_entropy() - c.cluster_given_class_entropy();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn ari_symmetric_range() {
        let c = Contingency::build(&[0, 0, 1, 1, 2, 2], &truth(&[1, 1, 1, 2, 2, 2]));
        let a = c.ari();
        assert!((-1.0..=1.0).contains(&a));
    }
}
