//! Equivalence gating between two clusterings of the same items.
//!
//! The incremental pipeline (`SpecHd::run_incremental` in `spechd-core`)
//! approximates the batch clustering on buckets that change across
//! sessions; whether that approximation is acceptable is a *measured*
//! question, answered here. [`PartitionAgreement`] quantifies how closely
//! two label vectors agree (ARI/NMI/V-measure, truth-free), and
//! [`EquivalenceGate`] turns agreement plus ground-truth quality deltas
//! into a pass/fail [`GateReport`] with typed [`GateViolation`]s — the
//! same artifact the incremental equivalence tests and the PR benchmark
//! assert on.

use crate::{ClusteringEval, Contingency};

/// Truth-free agreement between two flat clusterings of the same items,
/// computed by treating one partition as the "classes" of the other.
/// Symmetric in its inputs for ARI and NMI; V-measure is symmetric by
/// construction (harmonic mean of the two conditional entropies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionAgreement {
    /// Number of items compared.
    pub num_items: usize,
    /// Adjusted Rand index in `[-1, 1]` (1 = identical partitions).
    pub ari: f64,
    /// Normalized mutual information in `[0, 1]`.
    pub nmi: f64,
    /// V-measure in `[0, 1]`.
    pub v_measure: f64,
}

impl PartitionAgreement {
    /// Compares two label vectors over the same items.
    ///
    /// Labels are opaque — only the induced partitions matter, so
    /// differently-numbered but identical groupings score 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compute(a: &[usize], b: &[usize]) -> Self {
        assert_eq!(a.len(), b.len(), "partition length mismatch");
        // Contingency takes u32 truth labels; renumber `b` densely so
        // arbitrary usize labels cannot overflow the cast.
        let mut dense: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let truth: Vec<Option<u32>> = b
            .iter()
            .map(|&label| {
                let next = dense.len() as u32;
                Some(*dense.entry(label).or_insert(next))
            })
            .collect();
        let contingency = Contingency::build(a, &truth);
        let homogeneity = contingency.homogeneity();
        let completeness = contingency.completeness();
        let v_measure = if homogeneity + completeness > 0.0 {
            2.0 * homogeneity * completeness / (homogeneity + completeness)
        } else if a.is_empty() {
            1.0
        } else {
            0.0
        };
        Self {
            num_items: a.len(),
            ari: if a.is_empty() { 1.0 } else { contingency.ari() },
            nmi: contingency.nmi(),
            v_measure,
        }
    }
}

/// Acceptance thresholds for "incremental is equivalent to batch".
///
/// The defaults encode the acceptance gate: the two partitions must
/// agree strongly (NMI ≥ 0.90) and, against ground truth, the
/// incremental result may lose at most 2 V-measure points and gain at
/// most 1 point of incorrect-clustering ratio.
///
/// Agreement is gated on **NMI rather than ARI** deliberately. SpecHD's
/// threshold cut produces very fine partitions (hundreds of 2–3-member
/// clusters per few hundred spectra), and at that granularity the
/// pair-counting ARI is hypersensitive: flipping a handful of merge
/// decisions — exactly what freezing session boundaries does — moves
/// many pairs but very little information. Measured on the synthetic
/// corpus, installment splits score NMI 0.93–0.96 against batch while
/// ARI swings 0.46–0.66 on the *same* partitions whose truth-based
/// quality is equal or better than batch. ARI is still computed and
/// reported in [`PartitionAgreement`] for visibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceGate {
    /// Minimum NMI between the two partitions.
    pub min_agreement_nmi: f64,
    /// Maximum allowed `batch − incremental` V-measure drop (truth-based).
    pub max_v_measure_drop: f64,
    /// Maximum allowed `incremental − batch` rise of the incorrect
    /// clustering ratio (truth-based).
    pub max_incorrect_rise: f64,
}

impl Default for EquivalenceGate {
    fn default() -> Self {
        Self {
            min_agreement_nmi: 0.90,
            max_v_measure_drop: 0.02,
            max_incorrect_rise: 0.01,
        }
    }
}

/// One way a [`GateReport`] failed its [`EquivalenceGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateViolation {
    /// The partitions disagree more than allowed.
    Agreement {
        /// Measured NMI.
        nmi: f64,
        /// Gate minimum.
        min: f64,
    },
    /// The incremental V-measure fell too far below batch.
    VMeasureDrop {
        /// Batch V-measure.
        batch: f64,
        /// Incremental V-measure.
        incremental: f64,
        /// Gate maximum drop.
        max_drop: f64,
    },
    /// The incremental incorrect-clustering ratio rose too far above
    /// batch.
    IncorrectRise {
        /// Batch ICR.
        batch: f64,
        /// Incremental ICR.
        incremental: f64,
        /// Gate maximum rise.
        max_rise: f64,
    },
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateViolation::Agreement { nmi, min } => {
                write!(f, "partition agreement NMI {nmi:.4} below minimum {min:.4}")
            }
            GateViolation::VMeasureDrop {
                batch,
                incremental,
                max_drop,
            } => write!(
                f,
                "V-measure dropped {:.4} (batch {batch:.4} → incremental {incremental:.4}), max {max_drop:.4}",
                batch - incremental
            ),
            GateViolation::IncorrectRise {
                batch,
                incremental,
                max_rise,
            } => write!(
                f,
                "incorrect ratio rose {:.4} (batch {batch:.4} → incremental {incremental:.4}), max {max_rise:.4}",
                incremental - batch
            ),
        }
    }
}

/// The full evidence behind one equivalence decision.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Truth-free agreement between the two partitions.
    pub agreement: PartitionAgreement,
    /// Ground-truth quality of the batch partition.
    pub batch: ClusteringEval,
    /// Ground-truth quality of the incremental partition.
    pub incremental: ClusteringEval,
    /// Every threshold the comparison violated (empty = pass).
    pub violations: Vec<GateViolation>,
}

impl GateReport {
    /// Whether every threshold held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl EquivalenceGate {
    /// Evaluates an incremental partition against the batch partition of
    /// the same items, with `truth` supplying ground-truth labels for the
    /// quality deltas (use all-`None` truth to gate on agreement alone).
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn check(
        &self,
        incremental: &[usize],
        batch: &[usize],
        truth: &[Option<u32>],
    ) -> GateReport {
        let agreement = PartitionAgreement::compute(incremental, batch);
        let batch_eval = ClusteringEval::compute(batch, truth);
        let incremental_eval = ClusteringEval::compute(incremental, truth);
        let mut violations = Vec::new();
        if agreement.nmi < self.min_agreement_nmi {
            violations.push(GateViolation::Agreement {
                nmi: agreement.nmi,
                min: self.min_agreement_nmi,
            });
        }
        if batch_eval.v_measure - incremental_eval.v_measure > self.max_v_measure_drop {
            violations.push(GateViolation::VMeasureDrop {
                batch: batch_eval.v_measure,
                incremental: incremental_eval.v_measure,
                max_drop: self.max_v_measure_drop,
            });
        }
        if incremental_eval.incorrect_ratio - batch_eval.incorrect_ratio > self.max_incorrect_rise {
            violations.push(GateViolation::IncorrectRise {
                batch: batch_eval.incorrect_ratio,
                incremental: incremental_eval.incorrect_ratio,
                max_rise: self.max_incorrect_rise,
            });
        }
        GateReport {
            agreement,
            batch: batch_eval,
            incremental: incremental_eval,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_agree_perfectly() {
        let a = [0, 0, 1, 1, 2];
        let agreement = PartitionAgreement::compute(&a, &a);
        assert!((agreement.ari - 1.0).abs() < 1e-12);
        assert!((agreement.v_measure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renumbered_partitions_still_agree_perfectly() {
        let a = [0, 0, 1, 1, 2];
        let b = [9, 9, 4, 4, 7];
        let agreement = PartitionAgreement::compute(&a, &b);
        assert!((agreement.ari - 1.0).abs() < 1e-12, "{agreement:?}");
        assert!((agreement.v_measure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_is_symmetric() {
        let a = [0, 0, 1, 1, 2, 2, 2];
        let b = [0, 1, 1, 1, 2, 2, 0];
        let ab = PartitionAgreement::compute(&a, &b);
        let ba = PartitionAgreement::compute(&b, &a);
        assert!((ab.ari - ba.ari).abs() < 1e-12);
        assert!((ab.v_measure - ba.v_measure).abs() < 1e-12);
        assert!(ab.ari < 1.0);
    }

    #[test]
    fn empty_partitions_agree() {
        let agreement = PartitionAgreement::compute(&[], &[]);
        assert_eq!(agreement.num_items, 0);
        assert_eq!(agreement.ari, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        PartitionAgreement::compute(&[0], &[]);
    }

    #[test]
    fn gate_passes_identical_partitions() {
        let labels = [0, 0, 1, 1, 2, 2];
        let truth: Vec<Option<u32>> = [1, 1, 2, 2, 3, 3].map(Some).to_vec();
        let report = EquivalenceGate::default().check(&labels, &labels, &truth);
        assert!(report.passed(), "{:?}", report.violations);
        assert!((report.agreement.ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_flags_disagreement() {
        let batch = [0, 0, 1, 1, 2, 2];
        let incremental = [0, 1, 2, 0, 1, 2];
        let truth: Vec<Option<u32>> = [1, 1, 2, 2, 3, 3].map(Some).to_vec();
        let report = EquivalenceGate::default().check(&incremental, &batch, &truth);
        assert!(!report.passed());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, GateViolation::Agreement { .. })),
            "{:?}",
            report.violations
        );
        // Violations render human-readable messages.
        for v in &report.violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn gate_flags_incorrect_rise_specifically() {
        // Batch separates the two peptides; incremental merges them, so
        // its ICR rises from 0 to 0.5 while the partitions still overlap
        // enough that only quality thresholds can catch it with a lax
        // agreement gate.
        let batch = [0, 0, 1, 1];
        let incremental = [0, 0, 0, 0];
        let truth: Vec<Option<u32>> = [1, 1, 2, 2].map(Some).to_vec();
        let lax = EquivalenceGate {
            min_agreement_nmi: -1.0,
            max_v_measure_drop: 1.0,
            max_incorrect_rise: 0.01,
        };
        let report = lax.check(&incremental, &batch, &truth);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(matches!(
            report.violations[0],
            GateViolation::IncorrectRise { .. }
        ));
    }

    #[test]
    fn gate_without_truth_checks_agreement_only() {
        let batch = [0, 0, 1, 1];
        let incremental = [0, 0, 1, 2];
        let truth = [None, None, None, None];
        let report = EquivalenceGate::default().check(&incremental, &batch, &truth);
        // Quality metrics degenerate to zero without truth; only the
        // agreement threshold can fire.
        for v in &report.violations {
            assert!(matches!(v, GateViolation::Agreement { .. }), "{v}");
        }
    }
}
