//! Clustering quality metrics for mass-spectrometry evaluation.
//!
//! Implements the exact quantities SpecHD's evaluation section reports:
//!
//! * **Clustered spectra ratio** — fraction of spectra in non-singleton
//!   clusters (x-axis of Fig. 10).
//! * **Incorrect clustering ratio (ICR)** — among identified spectra in
//!   non-singleton clusters, the fraction whose peptide differs from the
//!   cluster's majority peptide (y-axis of Fig. 10; the paper tunes every
//!   tool to ICR ≈ 1%).
//! * **Completeness / homogeneity / V-measure** — the information-theoretic
//!   measures of Fig. 6a and §IV-E2 (Rosenberg & Hirschberg 2007), computed
//!   over identified spectra.
//! * **Purity, NMI, ARI** — auxiliary comparisons.
//!
//! Ground truth is an `Option<u32>` per item: `Some(peptide)` for
//! identified spectra, `None` for unidentified ones. Truth-based metrics
//! ignore unidentified items; the clustered ratio counts all items.
//!
//! # Example
//!
//! ```
//! use spechd_metrics::ClusteringEval;
//! let predicted = [0, 0, 1, 1, 2];
//! let truth = [Some(7), Some(7), Some(8), Some(9), None];
//! let eval = ClusteringEval::compute(&predicted, &truth);
//! assert!((eval.clustered_ratio - 0.8).abs() < 1e-12);   // 4 of 5 non-singleton
//! assert!((eval.incorrect_ratio - 0.25).abs() < 1e-12);  // 1 of 4 off-majority
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contingency;
mod gate;

pub use contingency::Contingency;
pub use gate::{EquivalenceGate, GateReport, GateViolation, PartitionAgreement};

/// Full set of clustering quality metrics for one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringEval {
    /// Number of items.
    pub num_items: usize,
    /// Number of predicted clusters.
    pub num_clusters: usize,
    /// Number of identified items (truth present).
    pub num_identified: usize,
    /// Fraction of all items in non-singleton clusters.
    pub clustered_ratio: f64,
    /// Incorrect clustering ratio over identified, clustered items.
    pub incorrect_ratio: f64,
    /// Homogeneity in `[0, 1]` over identified items.
    pub homogeneity: f64,
    /// Completeness in `[0, 1]` over identified items.
    pub completeness: f64,
    /// V-measure: harmonic mean of homogeneity and completeness.
    pub v_measure: f64,
    /// Purity in `[0, 1]` over identified items.
    pub purity: f64,
    /// Normalized mutual information (arithmetic normalization).
    pub nmi: f64,
    /// Adjusted Rand index over identified items.
    pub ari: f64,
}

impl ClusteringEval {
    /// Computes every metric for `predicted` cluster labels against
    /// optional ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn compute(predicted: &[usize], truth: &[Option<u32>]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "predicted/truth length mismatch"
        );
        let n = predicted.len();

        // Cluster sizes over ALL items for the clustered ratio.
        let mut sizes = std::collections::HashMap::new();
        for &c in predicted {
            *sizes.entry(c).or_insert(0usize) += 1;
        }
        let num_clusters = sizes.len();
        let clustered: usize = predicted.iter().filter(|c| sizes[c] > 1).count();
        let clustered_ratio = if n == 0 {
            0.0
        } else {
            clustered as f64 / n as f64
        };

        let contingency = Contingency::build(predicted, truth);
        let incorrect_ratio = incorrect_clustering_ratio(predicted, truth, &sizes);
        let homogeneity = contingency.homogeneity();
        let completeness = contingency.completeness();
        let v_measure = if homogeneity + completeness > 0.0 {
            2.0 * homogeneity * completeness / (homogeneity + completeness)
        } else {
            0.0
        };

        Self {
            num_items: n,
            num_clusters,
            num_identified: contingency.total(),
            clustered_ratio,
            incorrect_ratio,
            homogeneity,
            completeness,
            v_measure,
            purity: contingency.purity(),
            nmi: contingency.nmi(),
            ari: contingency.ari(),
        }
    }
}

/// Incorrect clustering ratio: over identified items that live in
/// non-singleton clusters (singleton determination counts *all* members,
/// identified or not), the fraction not matching their cluster's majority
/// peptide. Majority ties resolve to the smaller peptide id, counting the
/// non-majority tied items as incorrect — the conservative convention.
fn incorrect_clustering_ratio(
    predicted: &[usize],
    truth: &[Option<u32>],
    sizes: &std::collections::HashMap<usize, usize>,
) -> f64 {
    // Peptide counts per cluster, identified members only.
    let mut per_cluster: std::collections::HashMap<usize, std::collections::HashMap<u32, usize>> =
        std::collections::HashMap::new();
    for (&c, t) in predicted.iter().zip(truth) {
        if sizes[&c] <= 1 {
            continue;
        }
        if let Some(p) = t {
            *per_cluster.entry(c).or_default().entry(*p).or_insert(0) += 1;
        }
    }
    let mut identified_clustered = 0usize;
    let mut incorrect = 0usize;
    for counts in per_cluster.values() {
        let total: usize = counts.values().sum();
        let majority = counts
            .iter()
            .map(|(&p, &c)| (c, std::cmp::Reverse(p)))
            .max()
            .map(|(c, _)| c)
            .unwrap_or(0);
        identified_clustered += total;
        incorrect += total - majority;
    }
    if identified_clustered == 0 {
        0.0
    } else {
        incorrect as f64 / identified_clustered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering() {
        let predicted = [0, 0, 1, 1, 2, 2];
        let truth: Vec<Option<u32>> = [1, 1, 2, 2, 3, 3].iter().map(|&x| Some(x)).collect();
        let e = ClusteringEval::compute(&predicted, &truth);
        assert_eq!(e.clustered_ratio, 1.0);
        assert_eq!(e.incorrect_ratio, 0.0);
        assert!((e.homogeneity - 1.0).abs() < 1e-12);
        assert!((e.completeness - 1.0).abs() < 1e-12);
        assert!((e.v_measure - 1.0).abs() < 1e-12);
        assert!((e.purity - 1.0).abs() < 1e-12);
        assert!((e.ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons() {
        let predicted = [0, 1, 2, 3];
        let truth: Vec<Option<u32>> = vec![Some(1), Some(1), Some(2), Some(2)];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert_eq!(e.clustered_ratio, 0.0);
        assert_eq!(e.incorrect_ratio, 0.0, "no clustered spectra, no mistakes");
        assert!((e.homogeneity - 1.0).abs() < 1e-12, "singletons are pure");
        // Each 2-item class shatters over 2 of 4 singleton clusters:
        // completeness = 1 − ln2/ln4 = 0.5 exactly.
        assert!((e.completeness - 0.5).abs() < 1e-9, "classes are shattered");
    }

    #[test]
    fn everything_one_cluster() {
        let predicted = [0, 0, 0, 0];
        let truth: Vec<Option<u32>> = vec![Some(1), Some(1), Some(2), Some(2)];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert_eq!(e.clustered_ratio, 1.0);
        // Majority is peptide 1 (tie broken to smaller id): 2 incorrect of 4.
        assert!((e.incorrect_ratio - 0.5).abs() < 1e-12);
        assert!(
            (e.completeness - 1.0).abs() < 1e-12,
            "one cluster is complete"
        );
        assert!(e.homogeneity < 0.5);
    }

    #[test]
    fn icr_counts_only_identified_in_non_singletons() {
        // Cluster 0: members {Some(5), Some(5), None} — no incorrect.
        // Cluster 1: singleton Some(9) — excluded.
        let predicted = [0, 0, 0, 1];
        let truth = [Some(5), Some(5), None, Some(9)];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert_eq!(e.incorrect_ratio, 0.0);
        assert!((e.clustered_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn icr_mixed_cluster() {
        // Cluster of 5 identified: 3×A, 2×B -> 2/5 incorrect.
        let predicted = [0, 0, 0, 0, 0];
        let truth = [Some(1), Some(1), Some(1), Some(2), Some(2)];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert!((e.incorrect_ratio - 0.4).abs() < 1e-12);
    }

    #[test]
    fn no_identifications_gives_zero_truth_metrics() {
        let predicted = [0, 0, 1];
        let truth = [None, None, None];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert_eq!(e.num_identified, 0);
        assert_eq!(e.incorrect_ratio, 0.0);
        assert_eq!(e.nmi, 0.0);
    }

    #[test]
    fn empty_input() {
        let e = ClusteringEval::compute(&[], &[]);
        assert_eq!(e.num_items, 0);
        assert_eq!(e.clustered_ratio, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ClusteringEval::compute(&[0], &[]);
    }

    #[test]
    fn merging_distinct_classes_lowers_homogeneity_not_completeness() {
        let truth: Vec<Option<u32>> = [1, 1, 2, 2].iter().map(|&x| Some(x)).collect();
        let split = ClusteringEval::compute(&[0, 0, 1, 1], &truth);
        let merged = ClusteringEval::compute(&[0, 0, 0, 0], &truth);
        assert!(merged.homogeneity < split.homogeneity);
        assert!(merged.completeness >= split.completeness);
    }

    #[test]
    fn v_measure_between_h_and_c() {
        let predicted = [0, 0, 1, 1, 1];
        let truth = [Some(1), Some(2), Some(2), Some(2), Some(3)];
        let e = ClusteringEval::compute(&predicted, &truth);
        let lo = e.homogeneity.min(e.completeness);
        let hi = e.homogeneity.max(e.completeness);
        assert!(e.v_measure >= lo - 1e-12 && e.v_measure <= hi + 1e-12);
    }

    #[test]
    fn ari_low_for_chance_level_split() {
        let predicted = [0, 1, 0, 1];
        let truth = [Some(1), Some(1), Some(2), Some(2)];
        let e = ClusteringEval::compute(&predicted, &truth);
        assert!(e.ari.abs() < 0.5, "ari {}", e.ari);
    }
}
