//! The in-memory cluster store model.

use crate::format;
use crate::io::{DiskIo, RecoveryReport, RecoverySource, StoreIo};
use crate::StoreError;
use spechd_cluster::{ClusterAssignment, HacStats, ShardLabelMerger};
use spechd_hdc::HvPack;
use std::collections::BTreeMap;
use std::path::Path;

/// One persisted cluster: the global spectrum id of its medoid (whose
/// hypervector row lives in the owning bucket's medoid pack) and its
/// member count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredCluster {
    /// Global spectrum id of the medoid spectrum.
    pub medoid_id: u64,
    /// Number of member spectra (including the medoid).
    pub members: u32,
}

/// One persisted spectrum membership: which local cluster of its bucket a
/// spectrum belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredMember {
    /// Global spectrum id.
    pub id: u64,
    /// Local cluster index within the bucket.
    pub cluster: u32,
}

/// One precursor bucket's persisted state: the medoid hypervector rows
/// (row `c` belongs to cluster `c`), cluster bookkeeping, and the
/// per-spectrum memberships.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredBucket {
    pub(crate) medoids: HvPack,
    pub(crate) clusters: Vec<StoredCluster>,
    pub(crate) members: Vec<StoredMember>,
}

impl StoredBucket {
    /// The medoid hypervector rows, one per cluster.
    pub fn medoids(&self) -> &HvPack {
        &self.medoids
    }

    /// Cluster bookkeeping, parallel to the medoid rows.
    pub fn clusters(&self) -> &[StoredCluster] {
        &self.clusters
    }

    /// Per-spectrum memberships, in absorption order.
    pub fn members(&self) -> &[StoredMember] {
        &self.members
    }
}

/// A persistent store of per-bucket medoid hypervectors and cluster
/// memberships — the state `SpecHd::run_incremental` (in `spechd-core`)
/// reads, extends, and re-persists between sessions.
///
/// Spectra are identified by dense **global ids** assigned in arrival
/// order across sessions ([`ClusterStore::reserve_ids`]); every id in
/// `[0, next_spectrum_id)` belongs to exactly one bucket. That density is
/// what makes [`ClusterStore::union_assignment`] a pure
/// [`ShardLabelMerger`] replay: buckets added in ascending key order, raw
/// labels renumbered densely by first appearance in id order — so a
/// spectrum's label can only change if its cluster membership changes,
/// never because new spectra arrived elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStore {
    dim: usize,
    fingerprint: u64,
    next_id: u64,
    buckets: BTreeMap<i64, StoredBucket>,
}

impl ClusterStore {
    /// Creates an empty store for hypervectors of dimensionality `dim`,
    /// pinned to a pipeline-configuration `fingerprint` (see
    /// [`ClusterStore::ensure_compatible`]).
    pub fn new(dim: usize, fingerprint: u64) -> Result<Self, StoreError> {
        if dim == 0 {
            return Err(StoreError::Pack(spechd_hdc::PackError::ZeroDim));
        }
        Ok(Self {
            dim,
            fingerprint,
            next_id: 0,
            buckets: BTreeMap::new(),
        })
    }

    /// Hypervector dimensionality shared by every stored medoid row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pipeline-configuration fingerprint the store was built under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The id the next reserved spectrum will receive — also the total
    /// number of spectra the store covers.
    pub fn next_spectrum_id(&self) -> u64 {
        self.next_id
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total clusters across all buckets.
    pub fn num_clusters(&self) -> usize {
        self.buckets.values().map(|b| b.clusters.len()).sum()
    }

    /// Whether the store covers no spectra.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Ascending bucket keys.
    pub fn keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.buckets.keys().copied()
    }

    /// The persisted state of one bucket.
    pub fn bucket(&self, key: i64) -> Option<&StoredBucket> {
        self.buckets.get(&key)
    }

    /// Number of clusters in bucket `key` (0 when the bucket is absent).
    pub fn cluster_count(&self, key: i64) -> usize {
        self.buckets.get(&key).map_or(0, |b| b.clusters.len())
    }

    /// Checks that the store can serve an engine with dimensionality
    /// `dim` and configuration fingerprint `fingerprint`.
    ///
    /// Returns [`StoreError::DimMismatch`] / [`StoreError::ConfigMismatch`]
    /// otherwise — hypervectors encoded under different settings are not
    /// comparable, so mixing them would silently corrupt every cluster.
    pub fn ensure_compatible(&self, dim: usize, fingerprint: u64) -> Result<(), StoreError> {
        if self.dim != dim {
            return Err(StoreError::DimMismatch {
                store: self.dim,
                expected: dim,
            });
        }
        if self.fingerprint != fingerprint {
            return Err(StoreError::ConfigMismatch {
                store: self.fingerprint,
                expected: fingerprint,
            });
        }
        Ok(())
    }

    /// Reserves `count` consecutive global spectrum ids, returning the
    /// first. Every kept spectrum of a session must be registered (via
    /// [`ClusterStore::absorb`]) under exactly one reserved id before
    /// [`ClusterStore::union_assignment`] is meaningful again.
    pub fn reserve_ids(&mut self, count: u64) -> Result<u64, StoreError> {
        let base = self.next_id;
        self.next_id = base
            .checked_add(count)
            .ok_or(StoreError::IdSpaceExhausted)?;
        Ok(base)
    }

    /// Appends a new cluster to bucket `key` (creating the bucket if
    /// absent) with the given medoid hypervector row and medoid spectrum
    /// id, returning the cluster's local index. The medoid itself still
    /// needs to be registered as a member via [`ClusterStore::absorb`].
    pub fn add_cluster(
        &mut self,
        key: i64,
        medoid_words: &[u64],
        medoid_id: u64,
    ) -> Result<u32, StoreError> {
        if medoid_id >= self.next_id {
            return Err(StoreError::InvalidSpectrumId {
                id: medoid_id,
                next: self.next_id,
            });
        }
        let dim = self.dim;
        let bucket = self.buckets.entry(key).or_insert_with(|| StoredBucket {
            medoids: HvPack::new(dim),
            clusters: Vec::new(),
            members: Vec::new(),
        });
        let local = u32::try_from(bucket.clusters.len())
            .map_err(|_| StoreError::Corrupt(format!("bucket {key} exceeds 2^32 clusters")))?;
        bucket.medoids.try_push_row_words(medoid_words)?;
        bucket.clusters.push(StoredCluster {
            medoid_id,
            members: 0,
        });
        Ok(local)
    }

    /// Registers spectrum `id` as a member of cluster `cluster` in bucket
    /// `key`, bumping that cluster's member count.
    pub fn absorb(&mut self, key: i64, cluster: u32, id: u64) -> Result<(), StoreError> {
        if id >= self.next_id {
            return Err(StoreError::InvalidSpectrumId {
                id,
                next: self.next_id,
            });
        }
        let bucket = self
            .buckets
            .get_mut(&key)
            .ok_or(StoreError::UnknownBucket { key })?;
        let meta = bucket
            .clusters
            .get_mut(cluster as usize)
            .ok_or(StoreError::UnknownCluster { key, cluster })?;
        meta.members = meta.members.checked_add(1).ok_or_else(|| {
            StoreError::Corrupt(format!("cluster {key}/{cluster} count overflow"))
        })?;
        bucket.members.push(StoredMember { id, cluster });
        Ok(())
    }

    /// Replays every bucket through [`ShardLabelMerger`] in ascending key
    /// order, producing the dense global assignment over all
    /// `next_spectrum_id` spectra plus the medoid spectrum id per dense
    /// cluster — the exact merge the batch and streaming pipelines use,
    /// which is what keeps labels stable across sessions.
    ///
    /// Fails with [`StoreError::Corrupt`] if the memberships do not cover
    /// every reserved id exactly once (a store mid-session, or a
    /// hand-edited file that slipped past the checksum).
    pub fn union_assignment(&self) -> Result<(ClusterAssignment, Vec<u64>), StoreError> {
        let total = usize::try_from(self.next_id)
            .map_err(|_| StoreError::Corrupt("id space exceeds usize".into()))?;
        let mut seen = vec![false; total];
        for (key, bucket) in &self.buckets {
            for m in &bucket.members {
                let idx = m.id as usize; // < next_id, enforced by absorb/load
                if idx >= total || seen[idx] {
                    return Err(StoreError::Corrupt(format!(
                        "spectrum id {} of bucket {key} is out of range or duplicated",
                        m.id
                    )));
                }
                seen[idx] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            let missing = seen.iter().filter(|&&s| !s).count();
            return Err(StoreError::Corrupt(format!(
                "{missing} reserved spectrum ids have no bucket membership"
            )));
        }
        let mut merger = ShardLabelMerger::new(total);
        for bucket in self.buckets.values() {
            let members: Vec<usize> = bucket.members.iter().map(|m| m.id as usize).collect();
            let labels: Vec<usize> = bucket.members.iter().map(|m| m.cluster as usize).collect();
            let medoids: Vec<usize> = bucket
                .clusters
                .iter()
                .map(|c| c.medoid_id as usize)
                .collect();
            merger.add_shard(&members, &labels, &medoids, &HacStats::default());
        }
        let (assignment, consensus, _) = merger.finish();
        Ok((
            assignment,
            consensus.into_iter().map(|c| c as u64).collect(),
        ))
    }

    /// Serializes the store into the versioned `SHPK` byte format (see
    /// the [crate docs](crate) for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::to_bytes(self)
    }

    /// Deserializes a store from `SHPK` bytes, validating structure,
    /// checksum, and internal consistency before any state is built.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        format::from_bytes(bytes)
    }

    /// Durably writes the store to `path` via [`DiskIo`]:
    /// [`ClusterStore::to_bytes`] goes to `<path>.tmp`, is fsynced,
    /// the previous generation (if any) is rotated to `<path>.bak`, the
    /// temp file is atomically renamed into place, and the parent
    /// directory is fsynced. A crash or I/O failure at any point leaves
    /// at least one checksum-valid generation recoverable through
    /// [`ClusterStore::load_or_recover`]; on `Ok` the new generation is
    /// committed at `path` and the previous one survives as `.bak`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.save_with(&DiskIo, path)
    }

    /// [`ClusterStore::save`] over an explicit [`StoreIo`] backend — the
    /// injectable seam the fault-injection suites drive.
    pub fn save_with<I: StoreIo + ?Sized>(
        &self,
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<(), StoreError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = crate::io::pending_path(path);
        io.write(&tmp, &bytes)
            .map_err(|e| StoreError::io(&tmp, e))?;
        io.sync_file(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        if io.exists(path) {
            let bak = crate::io::backup_path(path);
            io.rename(path, &bak).map_err(|e| StoreError::io(path, e))?;
        }
        io.rename(&tmp, path).map_err(|e| StoreError::io(&tmp, e))?;
        io.sync_parent_dir(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(())
    }

    /// Reads a store back from `path`; the round trip is bit-identical
    /// (`load(save(s)) == s` and re-saving reproduces the same bytes).
    /// Fails if the primary file is missing or damaged — use
    /// [`ClusterStore::load_or_recover`] to fall back to surviving
    /// generations after a crash.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::load_with(&DiskIo, path)
    }

    /// [`ClusterStore::load`] over an explicit [`StoreIo`] backend.
    pub fn load_with<I: StoreIo + ?Sized>(
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes = io.read(path).map_err(|e| StoreError::io(path, e))?;
        Self::from_bytes(&bytes)
    }

    /// Loads `path`, falling back to the newest surviving generation
    /// when the primary is missing or fails SHPK validation: first the
    /// pending `<path>.tmp` (a fully-synced *newer* generation whose
    /// commit rename was interrupted), then the previous `<path>.bak`.
    ///
    /// On success the [`RecoveryReport`] says which generation was used
    /// and, when it was not the primary, why the primary was rejected.
    /// Fails with the primary's error only when no candidate passes the
    /// checksum — recovery never yields a partially-written store.
    pub fn load_or_recover(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        Self::load_or_recover_with(&DiskIo, path)
    }

    /// [`ClusterStore::load_or_recover`] over an explicit [`StoreIo`]
    /// backend.
    pub fn load_or_recover_with<I: StoreIo + ?Sized>(
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let path = path.as_ref();
        let primary_error = match Self::load_with(io, path) {
            Ok(store) => {
                return Ok((
                    store,
                    RecoveryReport {
                        source: RecoverySource::Primary,
                        loaded_from: path.to_path_buf(),
                        primary_error: None,
                    },
                ))
            }
            Err(e) => e,
        };
        let candidates = [
            (RecoverySource::Pending, crate::io::pending_path(path)),
            (RecoverySource::Backup, crate::io::backup_path(path)),
        ];
        for (source, candidate) in candidates {
            let Ok(bytes) = io.read(&candidate) else {
                continue;
            };
            if let Ok(store) = Self::from_bytes(&bytes) {
                return Ok((
                    store,
                    RecoveryReport {
                        source,
                        loaded_from: candidate,
                        primary_error: Some(Box::new(primary_error)),
                    },
                ));
            }
        }
        Err(primary_error)
    }

    pub(crate) fn buckets(&self) -> &BTreeMap<i64, StoredBucket> {
        &self.buckets
    }

    pub(crate) fn from_parts(
        dim: usize,
        fingerprint: u64,
        next_id: u64,
        buckets: BTreeMap<i64, StoredBucket>,
    ) -> Self {
        Self {
            dim,
            fingerprint,
            next_id,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_hdc::BinaryHypervector;
    use spechd_rng::Xoshiro256StarStar;

    fn row(dim: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng).words().to_vec()
    }

    /// A small two-bucket store: bucket 10 has clusters {0: ids 0,2} and
    /// {1: id 3}, bucket -4 has cluster {0: id 1}.
    fn sample(dim: usize) -> ClusterStore {
        let mut store = ClusterStore::new(dim, 0xF00D).unwrap();
        assert_eq!(store.reserve_ids(4).unwrap(), 0);
        let c0 = store.add_cluster(10, &row(dim, 1), 0).unwrap();
        let c1 = store.add_cluster(10, &row(dim, 2), 3).unwrap();
        let d0 = store.add_cluster(-4, &row(dim, 3), 1).unwrap();
        store.absorb(10, c0, 0).unwrap();
        store.absorb(-4, d0, 1).unwrap();
        store.absorb(10, c0, 2).unwrap();
        store.absorb(10, c1, 3).unwrap();
        store
    }

    #[test]
    fn build_and_inspect() {
        let store = sample(100);
        assert_eq!(store.dim(), 100);
        assert_eq!(store.next_spectrum_id(), 4);
        assert_eq!(store.num_buckets(), 2);
        assert_eq!(store.num_clusters(), 3);
        assert_eq!(store.keys().collect::<Vec<_>>(), vec![-4, 10]);
        let b = store.bucket(10).unwrap();
        assert_eq!(b.clusters()[0].members, 2);
        assert_eq!(b.medoids().len(), 2);
        assert_eq!(store.cluster_count(7), 0);
    }

    #[test]
    fn union_assignment_is_dense_and_stable() {
        let store = sample(100);
        let (assignment, consensus) = store.union_assignment().unwrap();
        // Id order: 0 (bucket 10/c0), 1 (bucket -4/d0), 2 (10/c0), 3 (10/c1).
        assert_eq!(assignment.labels(), &[0, 1, 0, 2]);
        assert_eq!(consensus, vec![0, 1, 3]);
    }

    #[test]
    fn union_assignment_rejects_uncovered_ids() {
        let mut store = sample(100);
        store.reserve_ids(1).unwrap();
        let err = store.union_assignment().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn mutations_validate_their_references() {
        let mut store = ClusterStore::new(64, 1).unwrap();
        assert!(matches!(
            store.add_cluster(0, &[0], 0),
            Err(StoreError::InvalidSpectrumId { .. })
        ));
        store.reserve_ids(2).unwrap();
        assert!(matches!(
            store.absorb(0, 0, 0),
            Err(StoreError::UnknownBucket { key: 0 })
        ));
        let c = store.add_cluster(0, &[0], 0).unwrap();
        assert!(matches!(
            store.absorb(0, c + 1, 0),
            Err(StoreError::UnknownCluster { .. })
        ));
        assert!(matches!(
            store.absorb(0, c, 9),
            Err(StoreError::InvalidSpectrumId { id: 9, next: 2 })
        ));
        // A malformed medoid row is a PackError, not a panic.
        assert!(matches!(
            store.add_cluster(0, &[0, 0], 1),
            Err(StoreError::Pack(_))
        ));
    }

    #[test]
    fn zero_dim_is_rejected() {
        assert!(matches!(
            ClusterStore::new(0, 0),
            Err(StoreError::Pack(spechd_hdc::PackError::ZeroDim))
        ));
    }

    #[test]
    fn compatibility_gate() {
        let store = sample(100);
        store.ensure_compatible(100, 0xF00D).unwrap();
        assert!(matches!(
            store.ensure_compatible(64, 0xF00D),
            Err(StoreError::DimMismatch {
                store: 100,
                expected: 64
            })
        ));
        assert!(matches!(
            store.ensure_compatible(100, 1),
            Err(StoreError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn byte_round_trip_all_dims() {
        for dim in [63, 64, 65, 100, 2048] {
            let store = sample(dim);
            let bytes = store.to_bytes();
            let reloaded = ClusterStore::from_bytes(&bytes).unwrap();
            assert_eq!(reloaded, store, "dim {dim}");
            assert_eq!(reloaded.to_bytes(), bytes, "re-save must be identical");
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ClusterStore::new(2048, 42).unwrap();
        let reloaded = ClusterStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(reloaded, store);
        let (assignment, consensus) = reloaded.union_assignment().unwrap();
        assert!(assignment.is_empty());
        assert!(consensus.is_empty());
    }
}
