//! The in-memory cluster store model.

use crate::format;
use crate::io::{DiskIo, RecoveryReport, RecoverySource, StoreIo};
use crate::StoreError;
use spechd_cluster::{ClusterAssignment, HacStats, ShardLabelMerger};
use spechd_hdc::HvPack;
use std::collections::BTreeMap;
use std::path::Path;

/// One persisted cluster: the global spectrum id of its medoid (whose
/// hypervector row lives in the owning bucket's medoid pack) and its
/// member count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredCluster {
    /// Global spectrum id of the medoid spectrum.
    pub medoid_id: u64,
    /// Number of member spectra (including the medoid).
    pub members: u32,
}

/// One persisted spectrum membership: which local cluster of its bucket a
/// spectrum belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredMember {
    /// Global spectrum id.
    pub id: u64,
    /// Local cluster index within the bucket.
    pub cluster: u32,
}

/// One precursor bucket's persisted state: the medoid hypervector rows
/// (row `c` belongs to cluster `c`), cluster bookkeeping, and the
/// per-spectrum memberships. Row-keeping stores additionally hold one
/// hypervector row per member, parallel to the membership list.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredBucket {
    pub(crate) medoids: HvPack,
    pub(crate) clusters: Vec<StoredCluster>,
    pub(crate) members: Vec<StoredMember>,
    pub(crate) member_rows: Option<HvPack>,
}

impl StoredBucket {
    /// The medoid hypervector rows, one per cluster.
    pub fn medoids(&self) -> &HvPack {
        &self.medoids
    }

    /// Cluster bookkeeping, parallel to the medoid rows.
    pub fn clusters(&self) -> &[StoredCluster] {
        &self.clusters
    }

    /// Per-spectrum memberships, in absorption order.
    pub fn members(&self) -> &[StoredMember] {
        &self.members
    }

    /// Member hypervector rows (row `i` belongs to `members()[i]`), only
    /// present in row-keeping stores
    /// ([`ClusterStore::keeps_member_rows`]).
    pub fn member_rows(&self) -> Option<&HvPack> {
        self.member_rows.as_ref()
    }
}

/// What a [`ClusterStore::refresh`] pass changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshReport {
    /// Clusters whose recomputed medoid differs from the stored one.
    pub refreshed: u64,
    /// Clusters garbage-collected because the refreshed medoids fell
    /// within the merge threshold of a sibling in the same bucket.
    pub merged: u64,
}

/// A persistent store of per-bucket medoid hypervectors and cluster
/// memberships — the state `SpecHd::run_incremental` (in `spechd-core`)
/// reads, extends, and re-persists between sessions.
///
/// Spectra are identified by dense **global ids** assigned in arrival
/// order across sessions ([`ClusterStore::reserve_ids`]); every id in
/// `[0, next_spectrum_id)` belongs to exactly one bucket. That density is
/// what makes [`ClusterStore::union_assignment`] a pure
/// [`ShardLabelMerger`] replay: buckets added in ascending key order, raw
/// labels renumbered densely by first appearance in id order — so a
/// spectrum's label can only change if its cluster membership changes,
/// never because new spectra arrived elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStore {
    dim: usize,
    fingerprint: u64,
    next_id: u64,
    keep_rows: bool,
    buckets: BTreeMap<i64, StoredBucket>,
}

impl ClusterStore {
    /// Creates an empty store for hypervectors of dimensionality `dim`,
    /// pinned to a pipeline-configuration `fingerprint` (see
    /// [`ClusterStore::ensure_compatible`]).
    pub fn new(dim: usize, fingerprint: u64) -> Result<Self, StoreError> {
        if dim == 0 {
            return Err(StoreError::Pack(spechd_hdc::PackError::ZeroDim));
        }
        Ok(Self {
            dim,
            fingerprint,
            next_id: 0,
            keep_rows: false,
            buckets: BTreeMap::new(),
        })
    }

    /// Like [`ClusterStore::new`], but the store keeps every member's
    /// hypervector row alongside its membership record. Row-keeping
    /// stores cost `O(spectra)` extra rows on disk and in memory, and in
    /// exchange support [`ClusterStore::refresh`] without access to the
    /// original spectra — members are registered through
    /// [`ClusterStore::absorb_with_row`] instead of
    /// [`ClusterStore::absorb`].
    pub fn new_keeping_rows(dim: usize, fingerprint: u64) -> Result<Self, StoreError> {
        let mut store = Self::new(dim, fingerprint)?;
        store.keep_rows = true;
        Ok(store)
    }

    /// Whether this store keeps member hypervector rows (created via
    /// [`ClusterStore::new_keeping_rows`], or loaded from a file whose
    /// header carries the member-rows flag).
    pub fn keeps_member_rows(&self) -> bool {
        self.keep_rows
    }

    /// Hypervector dimensionality shared by every stored medoid row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pipeline-configuration fingerprint the store was built under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The id the next reserved spectrum will receive — also the total
    /// number of spectra the store covers.
    pub fn next_spectrum_id(&self) -> u64 {
        self.next_id
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total clusters across all buckets.
    pub fn num_clusters(&self) -> usize {
        self.buckets.values().map(|b| b.clusters.len()).sum()
    }

    /// Whether the store covers no spectra.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Ascending bucket keys.
    pub fn keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.buckets.keys().copied()
    }

    /// The persisted state of one bucket.
    pub fn bucket(&self, key: i64) -> Option<&StoredBucket> {
        self.buckets.get(&key)
    }

    /// Number of clusters in bucket `key` (0 when the bucket is absent).
    pub fn cluster_count(&self, key: i64) -> usize {
        self.buckets.get(&key).map_or(0, |b| b.clusters.len())
    }

    /// Checks that the store can serve an engine with dimensionality
    /// `dim` and configuration fingerprint `fingerprint`.
    ///
    /// Returns [`StoreError::DimMismatch`] / [`StoreError::ConfigMismatch`]
    /// otherwise — hypervectors encoded under different settings are not
    /// comparable, so mixing them would silently corrupt every cluster.
    pub fn ensure_compatible(&self, dim: usize, fingerprint: u64) -> Result<(), StoreError> {
        if self.dim != dim {
            return Err(StoreError::DimMismatch {
                store: self.dim,
                expected: dim,
            });
        }
        if self.fingerprint != fingerprint {
            return Err(StoreError::ConfigMismatch {
                store: self.fingerprint,
                expected: fingerprint,
            });
        }
        Ok(())
    }

    /// Reserves `count` consecutive global spectrum ids, returning the
    /// first. Every kept spectrum of a session must be registered (via
    /// [`ClusterStore::absorb`]) under exactly one reserved id before
    /// [`ClusterStore::union_assignment`] is meaningful again.
    pub fn reserve_ids(&mut self, count: u64) -> Result<u64, StoreError> {
        let base = self.next_id;
        self.next_id = base
            .checked_add(count)
            .ok_or(StoreError::IdSpaceExhausted)?;
        Ok(base)
    }

    /// Appends a new cluster to bucket `key` (creating the bucket if
    /// absent) with the given medoid hypervector row and medoid spectrum
    /// id, returning the cluster's local index. The medoid itself still
    /// needs to be registered as a member via [`ClusterStore::absorb`].
    pub fn add_cluster(
        &mut self,
        key: i64,
        medoid_words: &[u64],
        medoid_id: u64,
    ) -> Result<u32, StoreError> {
        if medoid_id >= self.next_id {
            return Err(StoreError::InvalidSpectrumId {
                id: medoid_id,
                next: self.next_id,
            });
        }
        let dim = self.dim;
        let keep_rows = self.keep_rows;
        let bucket = self.buckets.entry(key).or_insert_with(|| StoredBucket {
            medoids: HvPack::new(dim),
            clusters: Vec::new(),
            members: Vec::new(),
            member_rows: keep_rows.then(|| HvPack::new(dim)),
        });
        let local = u32::try_from(bucket.clusters.len())
            .map_err(|_| StoreError::Corrupt(format!("bucket {key} exceeds 2^32 clusters")))?;
        bucket.medoids.try_push_row_words(medoid_words)?;
        bucket.clusters.push(StoredCluster {
            medoid_id,
            members: 0,
        });
        Ok(local)
    }

    /// Registers spectrum `id` as a member of cluster `cluster` in bucket
    /// `key`, bumping that cluster's member count. Row-keeping stores
    /// must use [`ClusterStore::absorb_with_row`] instead, so every
    /// member has a row — mixing the two would desynchronize the
    /// membership list from the row pack.
    pub fn absorb(&mut self, key: i64, cluster: u32, id: u64) -> Result<(), StoreError> {
        if self.keep_rows {
            return Err(StoreError::MemberRowMode { keeps_rows: true });
        }
        self.absorb_inner(key, cluster, id, None)
    }

    /// [`ClusterStore::absorb`] for row-keeping stores: registers the
    /// member *and* its hypervector row (the same words the member was
    /// encoded to — what [`ClusterStore::refresh`] later re-medoids
    /// over). Fails with [`StoreError::MemberRowMode`] on a row-less
    /// store and with [`StoreError::Pack`] if the row does not fit the
    /// store's dimensionality.
    pub fn absorb_with_row(
        &mut self,
        key: i64,
        cluster: u32,
        id: u64,
        row_words: &[u64],
    ) -> Result<(), StoreError> {
        if !self.keep_rows {
            return Err(StoreError::MemberRowMode { keeps_rows: false });
        }
        self.absorb_inner(key, cluster, id, Some(row_words))
    }

    fn absorb_inner(
        &mut self,
        key: i64,
        cluster: u32,
        id: u64,
        row_words: Option<&[u64]>,
    ) -> Result<(), StoreError> {
        if id >= self.next_id {
            return Err(StoreError::InvalidSpectrumId {
                id,
                next: self.next_id,
            });
        }
        let bucket = self
            .buckets
            .get_mut(&key)
            .ok_or(StoreError::UnknownBucket { key })?;
        let meta = bucket
            .clusters
            .get_mut(cluster as usize)
            .ok_or(StoreError::UnknownCluster { key, cluster })?;
        if let Some(words) = row_words {
            // Validate the row before any state changes so a malformed
            // row leaves the bucket untouched.
            bucket
                .member_rows
                .as_mut()
                .expect("row-keeping store bucket has member rows")
                .try_push_row_words(words)?;
        }
        meta.members = meta.members.checked_add(1).ok_or_else(|| {
            StoreError::Corrupt(format!("cluster {key}/{cluster} count overflow"))
        })?;
        bucket.members.push(StoredMember { id, cluster });
        Ok(())
    }

    /// The maintenance pass: re-medoids every cluster over its kept
    /// member rows and garbage-collects clusters that merge under the
    /// refreshed medoids. **Explicitly outside the stable-label
    /// contract** — unlike incremental absorption, a refresh may change
    /// existing spectra's labels (that is its purpose: absorbed members
    /// drift the true center away from the founding medoid).
    ///
    /// Per bucket, in ascending key order:
    ///
    /// 1. **Re-medoid**: each cluster's medoid becomes the member with
    ///    the minimum total Hamming distance to the rest of the cluster
    ///    (ties broken by the lowest spectrum id).
    /// 2. **Merge**: clusters whose refreshed medoids are within
    ///    `threshold_bits` of each other (connected components of the
    ///    pairwise threshold graph) are merged; the combined cluster is
    ///    re-medoided over its full membership.
    /// 3. **Compact**: the bucket is rebuilt canonically — surviving
    ///    clusters keep their relative order (by smallest original
    ///    index), members keep absorption order, and orphaned medoid
    ///    rows are dropped from the pack.
    ///
    /// Requires a row-keeping store ([`StoreError::MemberRowMode`]
    /// otherwise). Deterministic: the same store and threshold always
    /// produce the same refreshed store, and re-running on the result
    /// re-medoids to a fixed point.
    pub fn refresh(&mut self, threshold_bits: u32) -> Result<RefreshReport, StoreError> {
        if !self.keep_rows {
            return Err(StoreError::MemberRowMode { keeps_rows: false });
        }
        // Validate everything before mutating anything: refresh either
        // completes in full or leaves the store untouched.
        for (key, bucket) in &self.buckets {
            for (c, meta) in bucket.clusters.iter().enumerate() {
                if meta.members == 0 {
                    return Err(StoreError::Corrupt(format!(
                        "cluster {c} of bucket {key} has no members; \
                         refresh requires a fully-registered store"
                    )));
                }
            }
        }
        let mut report = RefreshReport::default();
        for bucket in self.buckets.values_mut() {
            let rows = bucket
                .member_rows
                .as_ref()
                .expect("row-keeping store bucket has member rows");
            let cluster_count = bucket.clusters.len();
            let mut positions: Vec<Vec<usize>> = vec![Vec::new(); cluster_count];
            for (pos, m) in bucket.members.iter().enumerate() {
                positions[m.cluster as usize].push(pos);
            }

            // 1. Re-medoid each cluster over its member rows.
            let medoid_pos: Vec<usize> = positions
                .iter()
                .map(|p| medoid_position(rows, &bucket.members, p))
                .collect();
            for (c, &pos) in medoid_pos.iter().enumerate() {
                if bucket.members[pos].id != bucket.clusters[c].medoid_id {
                    report.refreshed += 1;
                }
            }

            // 2. Merge clusters whose refreshed medoids are within the
            // threshold: connected components via union-find, root =
            // smallest cluster index.
            let mut root: Vec<usize> = (0..cluster_count).collect();
            fn find(root: &mut [usize], mut i: usize) -> usize {
                while root[i] != i {
                    root[i] = root[root[i]];
                    i = root[i];
                }
                i
            }
            for i in 0..cluster_count {
                for j in (i + 1)..cluster_count {
                    if rows.hamming(medoid_pos[i], medoid_pos[j]) <= threshold_bits {
                        let (a, b) = (find(&mut root, i), find(&mut root, j));
                        let (lo, hi) = (a.min(b), a.max(b));
                        root[hi] = lo;
                    }
                }
            }

            // 3. Rebuild the bucket canonically. Groups are keyed by
            // their smallest original cluster index, which keeps
            // surviving clusters in their original relative order.
            let mut group_of = vec![usize::MAX; cluster_count];
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for c in 0..cluster_count {
                let r = find(&mut root, c);
                if group_of[r] == usize::MAX {
                    group_of[r] = groups.len();
                    groups.push(Vec::new());
                }
                group_of[c] = group_of[r];
                groups[group_of[c]].push(c);
            }
            report.merged += (cluster_count - groups.len()) as u64;

            let mut clusters = Vec::with_capacity(groups.len());
            let mut medoids = HvPack::with_capacity(self.dim, groups.len());
            for (g, members_of_group) in groups.iter().enumerate() {
                let pos = if members_of_group.len() == 1 {
                    medoid_pos[members_of_group[0]]
                } else {
                    // A merged cluster is re-medoided over its combined
                    // membership, in member order.
                    let combined: Vec<usize> = bucket
                        .members
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| group_of[m.cluster as usize] == g)
                        .map(|(p, _)| p)
                        .collect();
                    medoid_position(rows, &bucket.members, &combined)
                };
                let member_total: u32 = members_of_group
                    .iter()
                    .map(|&c| bucket.clusters[c].members)
                    .sum();
                clusters.push(StoredCluster {
                    medoid_id: bucket.members[pos].id,
                    members: member_total,
                });
                medoids.push_row_words(rows.row(pos));
            }
            let members: Vec<StoredMember> = bucket
                .members
                .iter()
                .map(|m| StoredMember {
                    id: m.id,
                    cluster: group_of[m.cluster as usize] as u32,
                })
                .collect();
            bucket.clusters = clusters;
            bucket.medoids = medoids;
            bucket.members = members;
        }
        Ok(report)
    }

    /// Replays every bucket through [`ShardLabelMerger`] in ascending key
    /// order, producing the dense global assignment over all
    /// `next_spectrum_id` spectra plus the medoid spectrum id per dense
    /// cluster — the exact merge the batch and streaming pipelines use,
    /// which is what keeps labels stable across sessions.
    ///
    /// Fails with [`StoreError::Corrupt`] if the memberships do not cover
    /// every reserved id exactly once (a store mid-session, or a
    /// hand-edited file that slipped past the checksum).
    pub fn union_assignment(&self) -> Result<(ClusterAssignment, Vec<u64>), StoreError> {
        let total = usize::try_from(self.next_id)
            .map_err(|_| StoreError::Corrupt("id space exceeds usize".into()))?;
        let mut seen = vec![false; total];
        for (key, bucket) in &self.buckets {
            for m in &bucket.members {
                let idx = m.id as usize; // < next_id, enforced by absorb/load
                if idx >= total || seen[idx] {
                    return Err(StoreError::Corrupt(format!(
                        "spectrum id {} of bucket {key} is out of range or duplicated",
                        m.id
                    )));
                }
                seen[idx] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            let missing = seen.iter().filter(|&&s| !s).count();
            return Err(StoreError::Corrupt(format!(
                "{missing} reserved spectrum ids have no bucket membership"
            )));
        }
        let mut merger = ShardLabelMerger::new(total);
        for bucket in self.buckets.values() {
            let members: Vec<usize> = bucket.members.iter().map(|m| m.id as usize).collect();
            let labels: Vec<usize> = bucket.members.iter().map(|m| m.cluster as usize).collect();
            let medoids: Vec<usize> = bucket
                .clusters
                .iter()
                .map(|c| c.medoid_id as usize)
                .collect();
            merger.add_shard(&members, &labels, &medoids, &HacStats::default());
        }
        let (assignment, consensus, _) = merger.finish();
        Ok((
            assignment,
            consensus.into_iter().map(|c| c as u64).collect(),
        ))
    }

    /// Serializes the store into the versioned `SHPK` byte format (see
    /// the [crate docs](crate) for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::to_bytes(self)
    }

    /// Deserializes a store from `SHPK` bytes, validating structure,
    /// checksum, and internal consistency before any state is built.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        format::from_bytes(bytes)
    }

    /// Durably writes the store to `path` via [`DiskIo`]:
    /// [`ClusterStore::to_bytes`] goes to `<path>.tmp`, is fsynced,
    /// the previous generation (if any) is rotated to `<path>.bak`, the
    /// temp file is atomically renamed into place, and the parent
    /// directory is fsynced. A crash or I/O failure at any point leaves
    /// at least one checksum-valid generation recoverable through
    /// [`ClusterStore::load_or_recover`]; on `Ok` the new generation is
    /// committed at `path` and the previous one survives as `.bak`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.save_with(&DiskIo, path)
    }

    /// [`ClusterStore::save`] over an explicit [`StoreIo`] backend — the
    /// injectable seam the fault-injection suites drive.
    pub fn save_with<I: StoreIo + ?Sized>(
        &self,
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<(), StoreError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = crate::io::pending_path(path);
        io.write(&tmp, &bytes)
            .map_err(|e| StoreError::io(&tmp, e))?;
        io.sync_file(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        if io.exists(path) {
            let bak = crate::io::backup_path(path);
            io.rename(path, &bak).map_err(|e| StoreError::io(path, e))?;
        }
        io.rename(&tmp, path).map_err(|e| StoreError::io(&tmp, e))?;
        io.sync_parent_dir(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(())
    }

    /// Reads a store back from `path`; the round trip is bit-identical
    /// (`load(save(s)) == s` and re-saving reproduces the same bytes).
    /// Fails if the primary file is missing or damaged — use
    /// [`ClusterStore::load_or_recover`] to fall back to surviving
    /// generations after a crash.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::load_with(&DiskIo, path)
    }

    /// [`ClusterStore::load`] over an explicit [`StoreIo`] backend.
    pub fn load_with<I: StoreIo + ?Sized>(
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes = io.read(path).map_err(|e| StoreError::io(path, e))?;
        Self::from_bytes(&bytes)
    }

    /// Loads `path`, falling back to the newest surviving generation
    /// when the primary is missing or fails SHPK validation: first the
    /// pending `<path>.tmp` (a fully-synced *newer* generation whose
    /// commit rename was interrupted), then the previous `<path>.bak`.
    ///
    /// On success the [`RecoveryReport`] says which generation was used
    /// and, when it was not the primary, why the primary was rejected.
    /// Fails with the primary's error only when no candidate passes the
    /// checksum — recovery never yields a partially-written store.
    pub fn load_or_recover(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        Self::load_or_recover_with(&DiskIo, path)
    }

    /// [`ClusterStore::load_or_recover`] over an explicit [`StoreIo`]
    /// backend.
    pub fn load_or_recover_with<I: StoreIo + ?Sized>(
        io: &I,
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let path = path.as_ref();
        let primary_error = match Self::load_with(io, path) {
            Ok(store) => {
                return Ok((
                    store,
                    RecoveryReport {
                        source: RecoverySource::Primary,
                        loaded_from: path.to_path_buf(),
                        primary_error: None,
                    },
                ))
            }
            Err(e) => e,
        };
        let candidates = [
            (RecoverySource::Pending, crate::io::pending_path(path)),
            (RecoverySource::Backup, crate::io::backup_path(path)),
        ];
        for (source, candidate) in candidates {
            let Ok(bytes) = io.read(&candidate) else {
                continue;
            };
            if let Ok(store) = Self::from_bytes(&bytes) {
                return Ok((
                    store,
                    RecoveryReport {
                        source,
                        loaded_from: candidate,
                        primary_error: Some(Box::new(primary_error)),
                    },
                ));
            }
        }
        Err(primary_error)
    }

    pub(crate) fn buckets(&self) -> &BTreeMap<i64, StoredBucket> {
        &self.buckets
    }

    pub(crate) fn from_parts(
        dim: usize,
        fingerprint: u64,
        next_id: u64,
        keep_rows: bool,
        buckets: BTreeMap<i64, StoredBucket>,
    ) -> Self {
        Self {
            dim,
            fingerprint,
            next_id,
            keep_rows,
            buckets,
        }
    }
}

/// The member (by position into `members`/`rows`) minimizing total
/// Hamming distance to the rest of `positions`; ties break toward the
/// lowest spectrum id, so the choice is deterministic regardless of
/// absorption order.
fn medoid_position(rows: &HvPack, members: &[StoredMember], positions: &[usize]) -> usize {
    debug_assert!(!positions.is_empty(), "medoid of an empty cluster");
    let mut best = positions[0];
    let mut best_key = (u64::MAX, u64::MAX);
    for &candidate in positions {
        let total: u64 = positions
            .iter()
            .map(|&other| u64::from(rows.hamming(candidate, other)))
            .sum();
        let key = (total, members[candidate].id);
        if key < best_key {
            best_key = key;
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_hdc::BinaryHypervector;
    use spechd_rng::Xoshiro256StarStar;

    fn row(dim: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng).words().to_vec()
    }

    /// A small two-bucket store: bucket 10 has clusters {0: ids 0,2} and
    /// {1: id 3}, bucket -4 has cluster {0: id 1}.
    fn sample(dim: usize) -> ClusterStore {
        let mut store = ClusterStore::new(dim, 0xF00D).unwrap();
        assert_eq!(store.reserve_ids(4).unwrap(), 0);
        let c0 = store.add_cluster(10, &row(dim, 1), 0).unwrap();
        let c1 = store.add_cluster(10, &row(dim, 2), 3).unwrap();
        let d0 = store.add_cluster(-4, &row(dim, 3), 1).unwrap();
        store.absorb(10, c0, 0).unwrap();
        store.absorb(-4, d0, 1).unwrap();
        store.absorb(10, c0, 2).unwrap();
        store.absorb(10, c1, 3).unwrap();
        store
    }

    #[test]
    fn build_and_inspect() {
        let store = sample(100);
        assert_eq!(store.dim(), 100);
        assert_eq!(store.next_spectrum_id(), 4);
        assert_eq!(store.num_buckets(), 2);
        assert_eq!(store.num_clusters(), 3);
        assert_eq!(store.keys().collect::<Vec<_>>(), vec![-4, 10]);
        let b = store.bucket(10).unwrap();
        assert_eq!(b.clusters()[0].members, 2);
        assert_eq!(b.medoids().len(), 2);
        assert_eq!(store.cluster_count(7), 0);
    }

    #[test]
    fn union_assignment_is_dense_and_stable() {
        let store = sample(100);
        let (assignment, consensus) = store.union_assignment().unwrap();
        // Id order: 0 (bucket 10/c0), 1 (bucket -4/d0), 2 (10/c0), 3 (10/c1).
        assert_eq!(assignment.labels(), &[0, 1, 0, 2]);
        assert_eq!(consensus, vec![0, 1, 3]);
    }

    #[test]
    fn union_assignment_rejects_uncovered_ids() {
        let mut store = sample(100);
        store.reserve_ids(1).unwrap();
        let err = store.union_assignment().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn mutations_validate_their_references() {
        let mut store = ClusterStore::new(64, 1).unwrap();
        assert!(matches!(
            store.add_cluster(0, &[0], 0),
            Err(StoreError::InvalidSpectrumId { .. })
        ));
        store.reserve_ids(2).unwrap();
        assert!(matches!(
            store.absorb(0, 0, 0),
            Err(StoreError::UnknownBucket { key: 0 })
        ));
        let c = store.add_cluster(0, &[0], 0).unwrap();
        assert!(matches!(
            store.absorb(0, c + 1, 0),
            Err(StoreError::UnknownCluster { .. })
        ));
        assert!(matches!(
            store.absorb(0, c, 9),
            Err(StoreError::InvalidSpectrumId { id: 9, next: 2 })
        ));
        // A malformed medoid row is a PackError, not a panic.
        assert!(matches!(
            store.add_cluster(0, &[0, 0], 1),
            Err(StoreError::Pack(_))
        ));
    }

    #[test]
    fn zero_dim_is_rejected() {
        assert!(matches!(
            ClusterStore::new(0, 0),
            Err(StoreError::Pack(spechd_hdc::PackError::ZeroDim))
        ));
    }

    #[test]
    fn compatibility_gate() {
        let store = sample(100);
        store.ensure_compatible(100, 0xF00D).unwrap();
        assert!(matches!(
            store.ensure_compatible(64, 0xF00D),
            Err(StoreError::DimMismatch {
                store: 100,
                expected: 64
            })
        ));
        assert!(matches!(
            store.ensure_compatible(100, 1),
            Err(StoreError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn byte_round_trip_all_dims() {
        for dim in [63, 64, 65, 100, 2048] {
            let store = sample(dim);
            let bytes = store.to_bytes();
            let reloaded = ClusterStore::from_bytes(&bytes).unwrap();
            assert_eq!(reloaded, store, "dim {dim}");
            assert_eq!(reloaded.to_bytes(), bytes, "re-save must be identical");
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ClusterStore::new(2048, 42).unwrap();
        let reloaded = ClusterStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(reloaded, store);
        let (assignment, consensus) = reloaded.union_assignment().unwrap();
        assert!(assignment.is_empty());
        assert!(consensus.is_empty());
    }

    #[test]
    fn absorb_mode_is_enforced_both_ways() {
        let mut rowless = ClusterStore::new(64, 1).unwrap();
        rowless.reserve_ids(1).unwrap();
        let c = rowless.add_cluster(0, &[0b1], 0).unwrap();
        assert!(matches!(
            rowless.absorb_with_row(0, c, 0, &[0b1]),
            Err(StoreError::MemberRowMode { keeps_rows: false })
        ));
        assert!(matches!(
            rowless.refresh(4),
            Err(StoreError::MemberRowMode { keeps_rows: false })
        ));

        let mut rowed = ClusterStore::new_keeping_rows(64, 1).unwrap();
        assert!(rowed.keeps_member_rows());
        rowed.reserve_ids(1).unwrap();
        let c = rowed.add_cluster(0, &[0b1], 0).unwrap();
        assert!(matches!(
            rowed.absorb(0, c, 0),
            Err(StoreError::MemberRowMode { keeps_rows: true })
        ));
        // A malformed row is rejected before any bucket state changes.
        assert!(matches!(
            rowed.absorb_with_row(0, c, 0, &[0, 0]),
            Err(StoreError::Pack(_))
        ));
        assert!(rowed.bucket(0).unwrap().members().is_empty());
        rowed.absorb_with_row(0, c, 0, &[0b1]).unwrap();
        assert_eq!(rowed.bucket(0).unwrap().member_rows().unwrap().len(), 1);
    }

    /// A drifted cluster: founded on id 0's row, then absorbed members
    /// that move the true center. Refresh re-medoids to the member with
    /// the minimum total Hamming distance.
    #[test]
    fn refresh_re_medoids_a_drifted_cluster() {
        let mut store = ClusterStore::new_keeping_rows(64, 7).unwrap();
        store.reserve_ids(3).unwrap();
        // Pairwise distances: d(0,1)=8, d(0,2)=7, d(1,2)=1.
        // Totals: id0 = 15, id1 = 9, id2 = 8 → new medoid is id 2.
        let rows: [&[u64]; 3] = [&[0x00], &[0xFF], &[0xFE]];
        let c = store.add_cluster(3, rows[0], 0).unwrap();
        for (id, row) in rows.iter().enumerate() {
            store.absorb_with_row(3, c, id as u64, row).unwrap();
        }
        let report = store.refresh(0).unwrap();
        assert_eq!(
            report,
            RefreshReport {
                refreshed: 1,
                merged: 0
            }
        );
        let bucket = store.bucket(3).unwrap();
        assert_eq!(bucket.clusters()[0].medoid_id, 2);
        assert_eq!(bucket.medoids().row(0), &[0xFE]);
        assert_eq!(bucket.clusters()[0].members, 3);
        // Refresh is a fixed point on an unchanged store.
        let again = store.refresh(0).unwrap();
        assert_eq!(again, RefreshReport::default());
    }

    #[test]
    fn refresh_merges_colliding_clusters_and_compacts_the_bucket() {
        let mut store = ClusterStore::new_keeping_rows(64, 7).unwrap();
        store.reserve_ids(4).unwrap();
        // Three clusters; 0 and 2 sit within threshold 2 of each other
        // (d = 1) while cluster 1 is far from both.
        let c0 = store.add_cluster(5, &[0b0011], 0).unwrap();
        let c1 = store.add_cluster(5, &[u64::MAX], 1).unwrap();
        let c2 = store.add_cluster(5, &[0b0001], 2).unwrap();
        store.absorb_with_row(5, c0, 0, &[0b0011]).unwrap();
        store.absorb_with_row(5, c1, 1, &[u64::MAX]).unwrap();
        store.absorb_with_row(5, c2, 2, &[0b0001]).unwrap();
        store.absorb_with_row(5, c2, 3, &[0b0001]).unwrap();
        let report = store.refresh(2).unwrap();
        assert_eq!(report.merged, 1);
        let bucket = store.bucket(5).unwrap();
        assert_eq!(bucket.clusters().len(), 2);
        assert_eq!(bucket.medoids().len(), 2, "orphaned medoid rows GC'd");
        // The merged cluster keeps slot 0 (smallest original index) and
        // re-medoids over its combined membership: id 2's row ties with
        // id 3's, so the lowest id wins; total distances favor 0b0001.
        assert_eq!(bucket.clusters()[0].medoid_id, 2);
        assert_eq!(bucket.clusters()[0].members, 3);
        assert_eq!(bucket.clusters()[1].medoid_id, 1);
        let remapped: Vec<u32> = bucket.members().iter().map(|m| m.cluster).collect();
        assert_eq!(remapped, vec![0, 1, 0, 0]);
        // The compacted store round-trips bit-identically.
        let bytes = store.to_bytes();
        let reloaded = ClusterStore::from_bytes(&bytes).unwrap();
        assert_eq!(reloaded, store);
        assert_eq!(reloaded.to_bytes(), bytes);
        // Labels stay dense and coherent after compaction.
        let (assignment, consensus) = store.union_assignment().unwrap();
        assert_eq!(assignment.labels(), &[0, 1, 0, 0]);
        assert_eq!(consensus, vec![2, 1]);
    }

    #[test]
    fn refresh_rejects_half_registered_stores_untouched() {
        let mut store = ClusterStore::new_keeping_rows(64, 7).unwrap();
        store.reserve_ids(2).unwrap();
        let c = store.add_cluster(1, &[0b1], 0).unwrap();
        store.absorb_with_row(1, c, 0, &[0b1]).unwrap();
        // A founded-but-memberless cluster in a later bucket.
        store.add_cluster(2, &[0b10], 1).unwrap();
        let before = store.clone();
        assert!(matches!(store.refresh(0), Err(StoreError::Corrupt(_))));
        assert_eq!(store, before, "failed refresh must not mutate");
    }

    #[test]
    fn row_keeping_round_trip_all_dims() {
        for dim in [63, 64, 65, 100] {
            let mut store = ClusterStore::new_keeping_rows(dim, 0xF00D).unwrap();
            store.reserve_ids(2).unwrap();
            let r0 = row(dim, 1);
            let r1 = row(dim, 2);
            let c = store.add_cluster(10, &r0, 0).unwrap();
            store.absorb_with_row(10, c, 0, &r0).unwrap();
            store.absorb_with_row(10, c, 1, &r1).unwrap();
            let bytes = store.to_bytes();
            let reloaded = ClusterStore::from_bytes(&bytes).unwrap();
            assert_eq!(reloaded, store, "dim {dim}");
            assert_eq!(reloaded.to_bytes(), bytes, "dim {dim}");
        }
    }
}
