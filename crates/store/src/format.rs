//! The versioned `SHPK` byte format (see the [crate docs](crate) for the
//! layout diagram).
//!
//! The writer is canonical: buckets in ascending key order, sections laid
//! out back-to-back in table order, every reserved field zero. The reader
//! *requires* that canonical form, so `to_bytes ∘ from_bytes` is the
//! identity on valid files and any two stores with equal contents have
//! equal bytes. Validation is strictly ordered — truncation, magic,
//! version, header consistency, total length, checksum, then body — so a
//! hostile file always reports its outermost defect.

use crate::store::{ClusterStore, StoredBucket, StoredCluster, StoredMember};
use crate::StoreError;
use spechd_hdc::HvPack;
use std::collections::BTreeMap;

/// File magic, first four bytes of every store file.
pub(crate) const MAGIC: [u8; 4] = *b"SHPK";
/// Current (and only) format version.
pub(crate) const VERSION: u16 = 1;
/// Header flag bit: every bucket section carries a member hypervector
/// row per member record (a row-keeping store, see
/// [`ClusterStore::new_keeping_rows`]). All other flag bits are
/// reserved and must be zero.
pub(crate) const FLAG_MEMBER_ROWS: u16 = 0x0001;

const HEADER_LEN: usize = 36;
const TABLE_ENTRY_LEN: usize = 24;
const CLUSTER_META_LEN: usize = 16;
const MEMBER_LEN: usize = 12;
const FOOTER_LEN: usize = 8;

/// FNV-1a 64 over `bytes` — the footer checksum. Not cryptographic; it
/// exists to catch bit rot and truncated writes, not tampering.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn section_len(
    cluster_count: usize,
    member_count: usize,
    stride: usize,
    member_rows: bool,
) -> usize {
    let rows = if member_rows { member_count } else { 0 };
    cluster_count * CLUSTER_META_LEN
        + (cluster_count + rows) * stride * 8
        + member_count * MEMBER_LEN
}

pub(crate) fn to_bytes(store: &ClusterStore) -> Vec<u8> {
    let stride = store.dim().div_ceil(64);
    let keep_rows = store.keeps_member_rows();
    let buckets = store.buckets();
    let body_len: usize = buckets
        .values()
        .map(|b| section_len(b.clusters().len(), b.members().len(), stride, keep_rows))
        .sum();
    let total = HEADER_LEN + buckets.len() * TABLE_ENTRY_LEN + body_len + FOOTER_LEN;
    let mut out = Vec::with_capacity(total);

    // Header.
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let flags = if keep_rows { FLAG_MEMBER_ROWS } else { 0 };
    out.extend_from_slice(&flags.to_le_bytes());
    let dim = u32::try_from(store.dim()).expect("dim fits u32");
    out.extend_from_slice(&dim.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(stride)
            .expect("stride fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&store.fingerprint().to_le_bytes());
    out.extend_from_slice(&store.next_spectrum_id().to_le_bytes());
    let bucket_count = u32::try_from(buckets.len()).expect("bucket count fits u32");
    out.extend_from_slice(&bucket_count.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);

    // Section table: offsets are from the body start and strictly
    // sequential — the reader rejects anything else.
    let mut offset = 0u64;
    for (key, bucket) in buckets {
        out.extend_from_slice(&key.to_le_bytes());
        let clusters = u32::try_from(bucket.clusters().len()).expect("cluster count fits u32");
        let members = u32::try_from(bucket.members().len()).expect("member count fits u32");
        out.extend_from_slice(&clusters.to_le_bytes());
        out.extend_from_slice(&members.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        offset += section_len(
            bucket.clusters().len(),
            bucket.members().len(),
            stride,
            keep_rows,
        ) as u64;
    }

    // Body.
    for bucket in buckets.values() {
        for c in bucket.clusters() {
            out.extend_from_slice(&c.medoid_id.to_le_bytes());
            out.extend_from_slice(&c.members.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        }
        for word in bucket.medoids().words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
        for m in bucket.members() {
            out.extend_from_slice(&m.id.to_le_bytes());
            out.extend_from_slice(&m.cluster.to_le_bytes());
        }
        if keep_rows {
            let rows = bucket
                .member_rows()
                .expect("row-keeping store bucket has member rows");
            for word in rows.words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
    }

    // Footer.
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    debug_assert_eq!(out.len(), total);
    out
}

/// A bounds-checked little-endian cursor; every read names what it was
/// reading so truncation errors are self-describing.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        let available = self.bytes.len() - self.pos;
        if n > available {
            return Err(StoreError::Truncated {
                context,
                needed: n,
                available,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }
}

struct TableEntry {
    key: i64,
    cluster_count: usize,
    member_count: usize,
    offset: u64,
}

pub(crate) fn from_bytes(bytes: &[u8]) -> Result<ClusterStore, StoreError> {
    let mut r = Reader { bytes, pos: 0 };

    // Header — checked field by field so the first defect wins.
    let magic: [u8; 4] = r.take(4, "header magic")?.try_into().unwrap();
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = r.u16("header version")?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let flags = r.u16("header flags")?;
    if flags & !FLAG_MEMBER_ROWS != 0 {
        return Err(StoreError::Corrupt(format!(
            "reserved header flags must be zero, found {flags:#06x}"
        )));
    }
    let keep_rows = flags & FLAG_MEMBER_ROWS != 0;
    let dim = r.u32("header dim")?;
    let stride = r.u32("header stride")?;
    if dim == 0 || (dim as usize).div_ceil(64) != stride as usize {
        return Err(StoreError::StrideMismatch { dim, stride });
    }
    let fingerprint = r.u64("header fingerprint")?;
    let next_id = r.u64("header next_id")?;
    let bucket_count = r.u32("header bucket_count")? as usize;

    // Section table. Offsets must be exactly sequential (canonical form);
    // anything else would let sections alias each other.
    let stride = stride as usize;
    let mut table = Vec::with_capacity(bucket_count.min(1 << 16));
    let mut expected_offset = 0u64;
    for i in 0..bucket_count {
        let key = r.i64("table key")?;
        if let Some(prev) = table.last().map(|e: &TableEntry| e.key) {
            if key <= prev {
                return Err(StoreError::Corrupt(format!(
                    "bucket keys must be strictly ascending ({prev} then {key})"
                )));
            }
        }
        let cluster_count = r.u32("table cluster_count")? as usize;
        let member_count = r.u32("table member_count")? as usize;
        let offset = r.u64("table offset")?;
        if offset != expected_offset {
            return Err(StoreError::Corrupt(format!(
                "bucket {i} section offset {offset} is not sequential (expected {expected_offset})"
            )));
        }
        let len = u64::try_from(section_len(cluster_count, member_count, stride, keep_rows))
            .expect("section length fits u64");
        expected_offset = expected_offset.checked_add(len).ok_or_else(|| {
            StoreError::Corrupt("section offsets overflow the 64-bit file space".into())
        })?;
        table.push(TableEntry {
            key,
            cluster_count,
            member_count,
            offset,
        });
    }

    // Total length: header + table + body + footer must match the file
    // exactly before the checksum (and any section parse) is trusted.
    let body_len = usize::try_from(expected_offset)
        .map_err(|_| StoreError::Corrupt("body larger than addressable memory".into()))?;
    let expected_total = HEADER_LEN + bucket_count * TABLE_ENTRY_LEN + body_len + FOOTER_LEN;
    match bytes.len().cmp(&expected_total) {
        std::cmp::Ordering::Less => {
            return Err(StoreError::Truncated {
                context: "bucket sections",
                needed: expected_total,
                available: bytes.len(),
            })
        }
        std::cmp::Ordering::Greater => {
            return Err(StoreError::TrailingBytes {
                expected: expected_total,
                found: bytes.len(),
            })
        }
        std::cmp::Ordering::Equal => {}
    }
    let payload = &bytes[..expected_total - FOOTER_LEN];
    let stored = u64::from_le_bytes(bytes[expected_total - FOOTER_LEN..].try_into().unwrap());
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    // Body. The cursor walks sections in table order, which the offset
    // check above made equivalent to file order.
    let mut buckets = BTreeMap::new();
    for entry in &table {
        debug_assert_eq!(
            r.pos,
            HEADER_LEN + bucket_count * TABLE_ENTRY_LEN + entry.offset as usize
        );
        if entry.cluster_count == 0 && entry.member_count == 0 {
            return Err(StoreError::Corrupt(format!(
                "bucket {} is empty; empty buckets are never written",
                entry.key
            )));
        }
        let mut clusters = Vec::with_capacity(entry.cluster_count);
        for c in 0..entry.cluster_count {
            let medoid_id = r.u64("cluster medoid id")?;
            let members = r.u32("cluster member count")?;
            let reserved = r.u32("cluster reserved field")?;
            if reserved != 0 {
                return Err(StoreError::Corrupt(format!(
                    "cluster {c} of bucket {} has non-zero reserved field",
                    entry.key
                )));
            }
            if medoid_id >= next_id {
                return Err(StoreError::Corrupt(format!(
                    "medoid id {medoid_id} of bucket {} is outside the id space (next id {next_id})",
                    entry.key
                )));
            }
            clusters.push(StoredCluster { medoid_id, members });
        }
        let row_bytes = r.take(entry.cluster_count * stride * 8, "medoid rows")?;
        let words: Vec<u64> = row_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // Tail-invariant violations surface as StoreError::Pack here.
        let medoids = HvPack::from_raw_parts(dim as usize, words)?;
        let mut counted = vec![0u32; entry.cluster_count];
        let mut members = Vec::with_capacity(entry.member_count);
        for _ in 0..entry.member_count {
            let id = r.u64("member id")?;
            let cluster = r.u32("member cluster")?;
            if id >= next_id {
                return Err(StoreError::Corrupt(format!(
                    "member id {id} of bucket {} is outside the id space (next id {next_id})",
                    entry.key
                )));
            }
            let slot = counted.get_mut(cluster as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "member of bucket {} references cluster {cluster} of {}",
                    entry.key, entry.cluster_count
                ))
            })?;
            *slot += 1;
            members.push(StoredMember { id, cluster });
        }
        for (c, (meta, &count)) in clusters.iter().zip(&counted).enumerate() {
            if meta.members != count {
                return Err(StoreError::Corrupt(format!(
                    "cluster {c} of bucket {} declares {} members but {count} are listed",
                    entry.key, meta.members
                )));
            }
        }
        let member_rows = if keep_rows {
            let row_bytes = r.take(entry.member_count * stride * 8, "member rows")?;
            let words: Vec<u64> = row_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Some(HvPack::from_raw_parts(dim as usize, words)?)
        } else {
            None
        };
        buckets.insert(
            entry.key,
            StoredBucket {
                medoids,
                clusters,
                members,
                member_rows,
            },
        );
    }
    debug_assert_eq!(r.pos, expected_total - FOOTER_LEN);

    Ok(ClusterStore::from_parts(
        dim as usize,
        fingerprint,
        next_id,
        keep_rows,
        buckets,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_hdc::BinaryHypervector;
    use spechd_rng::Xoshiro256StarStar;

    fn sample_bytes(dim: usize) -> Vec<u8> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut store = ClusterStore::new(dim, 0xABCD).unwrap();
        store.reserve_ids(3).unwrap();
        let row: Vec<u64> = BinaryHypervector::random(dim, &mut rng).words().to_vec();
        let c = store.add_cluster(5, &row, 0).unwrap();
        store.absorb(5, c, 0).unwrap();
        store.absorb(5, c, 1).unwrap();
        let row: Vec<u64> = BinaryHypervector::random(dim, &mut rng).words().to_vec();
        let c = store.add_cluster(9, &row, 2).unwrap();
        store.absorb(9, c, 2).unwrap();
        store.to_bytes()
    }

    /// Same shape as [`sample_bytes`] but through a row-keeping store,
    /// so the member-rows section and flag bit are exercised.
    fn sample_bytes_with_rows(dim: usize) -> Vec<u8> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut store = ClusterStore::new_keeping_rows(dim, 0xABCD).unwrap();
        store.reserve_ids(3).unwrap();
        let rows: Vec<Vec<u64>> = (0..3)
            .map(|_| BinaryHypervector::random(dim, &mut rng).words().to_vec())
            .collect();
        let c = store.add_cluster(5, &rows[0], 0).unwrap();
        store.absorb_with_row(5, c, 0, &rows[0]).unwrap();
        store.absorb_with_row(5, c, 1, &rows[1]).unwrap();
        let c = store.add_cluster(9, &rows[2], 2).unwrap();
        store.absorb_with_row(9, c, 2, &rows[2]).unwrap();
        store.to_bytes()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn truncated_header_reports_context() {
        let bytes = sample_bytes(100);
        let err = from_bytes(&bytes[..10]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated {
                    context: "header dim",
                    ..
                }
            ),
            "{err}"
        );
        assert!(matches!(
            from_bytes(&[]).unwrap_err(),
            StoreError::Truncated {
                context: "header magic",
                ..
            }
        ));
    }

    #[test]
    fn bad_magic_wins_over_everything_else() {
        let mut bytes = sample_bytes(100);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::BadMagic {
                found: [b'X', b'H', b'P', b'K']
            }
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_bytes(100);
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::UnsupportedVersion { found: 2 }
        ));
    }

    #[test]
    fn stride_dim_disagreement_is_rejected() {
        let mut bytes = sample_bytes(100); // stride 2
        bytes[12..16].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::StrideMismatch {
                dim: 100,
                stride: 3
            }
        ));
    }

    #[test]
    fn truncated_body_and_trailing_bytes_are_distinguished() {
        let bytes = sample_bytes(100);
        let err = from_bytes(&bytes[..bytes.len() - 9]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated {
                    context: "bucket sections",
                    ..
                }
            ),
            "{err}"
        );
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            from_bytes(&longer).unwrap_err(),
            StoreError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let mut bytes = sample_bytes(100);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    /// Re-seals a tampered file so the corruption reaches the body parser
    /// instead of stopping at the checksum.
    fn reseal(bytes: &mut [u8]) {
        let payload_len = bytes.len() - FOOTER_LEN;
        let checksum = fnv1a64(&bytes[..payload_len]);
        bytes[payload_len..].copy_from_slice(&checksum.to_le_bytes());
    }

    #[test]
    fn non_sequential_offset_is_corrupt() {
        let mut bytes = sample_bytes(100);
        // Second table entry's offset field.
        let pos = HEADER_LEN + TABLE_ENTRY_LEN + 16;
        bytes[pos..pos + 8].copy_from_slice(&1u64.to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("not sequential"), "{err}");
    }

    #[test]
    fn member_referencing_missing_cluster_is_corrupt() {
        let mut bytes = sample_bytes(100);
        // Bucket 5's first member record sits after its single cluster
        // meta (16 B) and medoid row (stride 2 → 16 B); its cluster field
        // is 8 bytes in.
        let body = HEADER_LEN + 2 * TABLE_ENTRY_LEN;
        let pos = body + CLUSTER_META_LEN + 2 * 8 + 8;
        bytes[pos..pos + 4].copy_from_slice(&7u32.to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("references cluster 7"), "{err}");
    }

    #[test]
    fn member_count_mismatch_is_corrupt() {
        let mut bytes = sample_bytes(100);
        // Bucket 5's cluster meta declares 2 members; claim 3.
        let body = HEADER_LEN + 2 * TABLE_ENTRY_LEN;
        let pos = body + 8;
        bytes[pos..pos + 4].copy_from_slice(&3u32.to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("declares 3 members"), "{err}");
    }

    #[test]
    fn nonzero_tail_bits_surface_as_pack_error() {
        let mut bytes = sample_bytes(100);
        // Last byte of bucket 5's medoid row (word 1 of stride 2 holds
        // bits 64..100; byte 7 of that word is bits 120..128, all beyond
        // dim 100).
        let body = HEADER_LEN + 2 * TABLE_ENTRY_LEN;
        let pos = body + CLUSTER_META_LEN + 15;
        bytes[pos] = 0xFF;
        reseal(&mut bytes);
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::Pack(spechd_hdc::PackError::NonZeroTail { row: 0 })
        ));
    }

    #[test]
    fn out_of_range_ids_are_corrupt() {
        let mut bytes = sample_bytes(100);
        // Bucket 5's medoid id (first field of its first cluster meta).
        let body = HEADER_LEN + 2 * TABLE_ENTRY_LEN;
        bytes[body..body + 8].copy_from_slice(&99u64.to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("medoid id 99"), "{err}");
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_equivalent() {
        // Flipping any one bit either fails validation or (never) yields a
        // different store that round-trips to the same bytes. This is the
        // belt-and-braces sweep behind the targeted cases above.
        for bytes in [sample_bytes(65), sample_bytes_with_rows(65)] {
            let original = from_bytes(&bytes).unwrap();
            for i in 0..bytes.len() {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1;
                match from_bytes(&mutated) {
                    Err(_) => {}
                    Ok(store) => {
                        panic!(
                            "byte {i} flip silently accepted (stores {}equal)",
                            if store == original { "" } else { "un" }
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn member_rows_flag_round_trips_and_preserves_rowless_bytes() {
        let rowless = sample_bytes(100);
        let rowed = sample_bytes_with_rows(100);
        // The row-less encoding is byte-identical to pre-flag files:
        // flags stay zero and no member-rows section is emitted.
        assert_eq!(&rowless[6..8], &[0, 0]);
        assert_eq!(&rowed[6..8], &FLAG_MEMBER_ROWS.to_le_bytes());
        assert!(rowed.len() > rowless.len());
        let store = from_bytes(&rowed).unwrap();
        assert!(store.keeps_member_rows());
        assert_eq!(store.to_bytes(), rowed, "re-save must be identical");
        let b = store.bucket(5).unwrap();
        assert_eq!(b.member_rows().unwrap().len(), b.members().len());
        assert!(!from_bytes(&rowless).unwrap().keeps_member_rows());
    }

    #[test]
    fn member_rows_flag_on_rowless_body_is_rejected() {
        // Setting the flag without the section makes every bucket claim
        // more bytes than the file holds; the second bucket's table
        // offset no longer lines up, which is the first defect reported.
        let mut bytes = sample_bytes(100);
        bytes[6..8].copy_from_slice(&FLAG_MEMBER_ROWS.to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("not sequential"), "{err}");
    }

    #[test]
    fn unknown_flag_bits_stay_reserved() {
        let mut bytes = sample_bytes_with_rows(100);
        bytes[6..8].copy_from_slice(&(FLAG_MEMBER_ROWS | 0x0002).to_le_bytes());
        reseal(&mut bytes);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("reserved header flags"), "{err}");
    }

    #[test]
    fn member_row_tail_bits_surface_as_pack_error() {
        // Corrupt the very last member-row byte of the last bucket (a
        // tail byte beyond dim 100 in the stride-2 layout).
        let mut bytes = sample_bytes_with_rows(100);
        let pos = bytes.len() - FOOTER_LEN - 1;
        bytes[pos] = 0xFF;
        reseal(&mut bytes);
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            StoreError::Pack(spechd_hdc::PackError::NonZeroTail { .. })
        ));
    }
}
