//! Persistent, versioned cluster store for incremental SpecHD clustering.
//!
//! A repository-scale workload (PRIDE/MassIVE-style) grows by *runs
//! arriving over time*; reclustering the whole archive for every new run
//! throws away all prior work. This crate keeps the part of a clustering
//! that cannot be recomputed cheaply — the per-bucket **medoid
//! hypervector** of every cluster, plus the per-spectrum membership
//! bookkeeping — as a first-class on-disk artifact, so a later session can
//! route new spectra to their precursor bucket, score them against the
//! stored medoids, and recluster only the shards that actually changed
//! (`SpecHd::run_incremental` in `spechd-core` is that consumer).
//!
//! * [`ClusterStore`] — the in-memory model: per-bucket medoid rows in an
//!   [`HvPack`] plus [`StoredCluster`]/[`StoredMember`] bookkeeping, and
//!   the deterministic [`ClusterStore::union_assignment`] merge through
//!   [`spechd_cluster::ShardLabelMerger`] that keeps labels stable across
//!   sessions.
//! * [`format`](self) — the versioned `SHPK` byte format (diagram below),
//!   written by [`ClusterStore::save`] / [`ClusterStore::to_bytes`] and
//!   read back by [`ClusterStore::load`] / [`ClusterStore::from_bytes`].
//! * [`StoreError`] — every way a hostile or stale file can be rejected,
//!   as typed variants: truncation, bad magic, version skew, dim/stride
//!   mismatch, checksum mismatch, internal inconsistency. Loading never
//!   panics and never yields partial state.
//! * [`io`] — the crash-safety layer: [`ClusterStore::save`] routes all
//!   file I/O through the pluggable [`StoreIo`] trait and commits via
//!   temp-file write + fsync + atomic rename + directory fsync, keeping
//!   the previous generation as `.bak`; [`ClusterStore::load_or_recover`]
//!   falls back to the newest generation that passes the SHPK checksum
//!   and reports what it recovered. [`FaultIo`] injects ENOSPC, short
//!   writes, and crash-after-byte-*k* so the durability matrix in
//!   `tests/tests/store_durability.rs` can prove "any interrupted save
//!   leaves a loadable store" without crashing a real process.
//!
//! ## On-disk format (`SHPK`, version 1, little-endian)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (36 B): magic "SHPK" · version u16 · flags u16        │
//! │                dim u32 · stride u32 · fingerprint u64        │
//! │                next_id u64 · bucket_count u32                │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: bucket_count × 24 B                           │
//! │   key i64 · cluster_count u32 · member_count u32 · offset u64│
//! ├──────────────────────────────────────────────────────────────┤
//! │ body, one section per bucket (at its table offset):          │
//! │   cluster metas: cluster_count × (medoid_id u64 ·            │
//! │                  member_count u32 · reserved u32)            │
//! │   medoid rows:   cluster_count × stride × 8 B  (HvPack rows) │
//! │   members:       member_count × (id u64 · cluster u32)       │
//! │   member rows:   member_count × stride × 8 B — only when     │
//! │                  header flag bit 0 (member-rows) is set      │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer (8 B): FNV-1a 64 checksum of all preceding bytes      │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The `stride` field is redundant with `dim` by construction
//! (`stride = dim.div_ceil(64)`); storing both lets the reader reject a
//! corrupted header with a specific [`StoreError::StrideMismatch`] instead
//! of misreading every row after it. The `fingerprint` pins the exact
//! pipeline configuration (encoder seed and dimensions, preprocessing,
//! bucketing resolution, linkage, threshold) that produced the store:
//! hypervectors are only comparable across sessions when every one of
//! those knobs matches.
//!
//! Flag bit 0 marks a **row-keeping** store
//! ([`ClusterStore::new_keeping_rows`]): every bucket section carries one
//! hypervector row per member record, parallel to the membership list.
//! Keeping the rows costs `O(spectra)` extra storage and buys
//! [`ClusterStore::refresh`] — a medoid refresh / compaction pass that
//! re-medoids drifted clusters and merges clusters whose refreshed
//! medoids collide, without access to the original spectra. Row-less
//! stores (flags = 0) serialize bit-identically to files written before
//! the flag existed; all other flag bits remain reserved-must-be-zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
pub mod io;
mod store;

pub use error::StoreError;
pub use io::{
    DiskIo, FaultIo, FaultKind, FaultPlan, MemIo, RecoveryReport, RecoverySource, StoreIo,
};
pub use store::{ClusterStore, RefreshReport, StoredBucket, StoredCluster, StoredMember};

pub use spechd_hdc::HvPack;
