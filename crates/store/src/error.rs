//! Typed failures of the cluster store.

use spechd_hdc::PackError;

/// Everything that can go wrong constructing, mutating, serializing or
/// deserializing a [`crate::ClusterStore`].
///
/// Deserialization ([`crate::ClusterStore::from_bytes`]) is total: every
/// hostile input maps to one of these variants, never a panic, and the
/// store value is only produced once the whole file has validated — there
/// is no partial state to observe on error.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing a backing file failed; `path` names the file
    /// involved.
    Io {
        /// The file being read, written, renamed or synced.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// The file does not start with the `SHPK` magic.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// The version the file declares.
        found: u16,
    },
    /// The file ends before a required field or section.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes required to finish that read.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The file is longer than its own header accounts for.
    TrailingBytes {
        /// Total length the header/table imply.
        expected: usize,
        /// Actual file length.
        found: usize,
    },
    /// The header's row stride disagrees with its dimensionality
    /// (`stride` must equal `dim.div_ceil(64)`).
    StrideMismatch {
        /// Dimensionality the header declares.
        dim: u32,
        /// Stride the header declares.
        stride: u32,
    },
    /// The store's hypervector dimensionality does not match the engine's.
    DimMismatch {
        /// Dimensionality of the stored rows.
        store: usize,
        /// Dimensionality the caller requires.
        expected: usize,
    },
    /// The store was produced under a different pipeline configuration
    /// (encoder/preprocess/bucketing/linkage/threshold fingerprint).
    ConfigMismatch {
        /// Fingerprint recorded in the store.
        store: u64,
        /// Fingerprint the caller requires.
        expected: u64,
    },
    /// The footer checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum computed over the file.
        computed: u64,
    },
    /// The file parsed but its contents are internally inconsistent
    /// (overlapping sections, count mismatches, out-of-range ids, …).
    Corrupt(String),
    /// A medoid row violated the [`spechd_hdc::HvPack`] invariants.
    Pack(PackError),
    /// A mutation referenced a bucket the store does not hold.
    UnknownBucket {
        /// The requested bucket key.
        key: i64,
    },
    /// A mutation referenced a cluster the bucket does not hold.
    UnknownCluster {
        /// The bucket key.
        key: i64,
        /// The requested local cluster index.
        cluster: u32,
    },
    /// A member registration (or refresh) used the wrong row mode for
    /// this store: [`crate::ClusterStore::absorb`] on a row-keeping
    /// store, or [`crate::ClusterStore::absorb_with_row`] /
    /// [`crate::ClusterStore::refresh`] on a row-less one.
    MemberRowMode {
        /// Whether the store keeps member hypervector rows.
        keeps_rows: bool,
    },
    /// A mutation used a spectrum id outside the reserved id space.
    InvalidSpectrumId {
        /// The offending id.
        id: u64,
        /// The store's current id horizon (`next_spectrum_id`).
        next: u64,
    },
    /// The 64-bit spectrum id space is exhausted.
    IdSpaceExhausted,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store i/o error at {}: {source}", path.display())
            }
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"SHPK\")")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated store file: {context} needs {needed} bytes, {available} available"
            ),
            StoreError::TrailingBytes { expected, found } => write!(
                f,
                "store file has trailing bytes: header accounts for {expected}, file is {found}"
            ),
            StoreError::StrideMismatch { dim, stride } => write!(
                f,
                "header stride {stride} does not match dim {dim} (expected {})",
                (*dim as usize).div_ceil(64)
            ),
            StoreError::DimMismatch { store, expected } => write!(
                f,
                "store dimensionality {store} does not match engine dimensionality {expected}"
            ),
            StoreError::ConfigMismatch { store, expected } => write!(
                f,
                "store config fingerprint {store:#018x} does not match engine {expected:#018x}"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: footer {stored:#018x}, computed {computed:#018x}"
            ),
            StoreError::Corrupt(detail) => write!(f, "corrupt store file: {detail}"),
            StoreError::Pack(e) => write!(f, "malformed medoid row: {e}"),
            StoreError::UnknownBucket { key } => write!(f, "no bucket with key {key}"),
            StoreError::UnknownCluster { key, cluster } => {
                write!(f, "bucket {key} has no cluster {cluster}")
            }
            StoreError::MemberRowMode { keeps_rows } => {
                if *keeps_rows {
                    write!(
                        f,
                        "row-keeping store requires absorb_with_row (absorb drops the member row)"
                    )
                } else {
                    write!(f, "store does not keep member rows (see new_keeping_rows)")
                }
            }
            StoreError::InvalidSpectrumId { id, next } => write!(
                f,
                "spectrum id {id} is outside the reserved id space (next id {next})"
            ),
            StoreError::IdSpaceExhausted => write!(f, "64-bit spectrum id space exhausted"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Pack(e) => Some(e),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wraps an I/O failure with the path it happened on.
    pub fn io(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }
}

impl From<PackError> for StoreError {
    fn from(e: PackError) -> Self {
        StoreError::Pack(e)
    }
}
