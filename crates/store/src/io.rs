//! Pluggable storage I/O — the crash-safety boundary of the store.
//!
//! [`ClusterStore::save`](crate::ClusterStore::save) routes every byte
//! that touches a disk through the [`StoreIo`] trait, so the durability
//! protocol (temp-file write → fsync → atomic rename → directory fsync,
//! previous generation kept as `.bak`) can be exercised against an
//! in-memory filesystem ([`MemIo`]) and against injected faults
//! ([`FaultIo`]) without ever crashing a real process. [`DiskIo`] is the
//! production implementation over `std::fs`.
//!
//! ## The durability protocol
//!
//! For a target file `store.shpk`, a save performs, in order:
//!
//! 1. write the full image to `store.shpk.tmp`
//! 2. fsync `store.shpk.tmp`
//! 3. if `store.shpk` exists, rename it to `store.shpk.bak`
//! 4. rename `store.shpk.tmp` to `store.shpk`
//! 5. fsync the parent directory (persists both renames)
//!
//! A crash between any two steps leaves at least one checksum-valid
//! generation on disk: the primary until step 3, the pending `.tmp`
//! (already synced) and/or the `.bak` afterwards.
//! [`ClusterStore::load_or_recover`](crate::ClusterStore::load_or_recover)
//! tries those locations newest-first and reports which one it used.

use std::collections::BTreeMap;
use std::ffi::OsString;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The file-system operations [`crate::ClusterStore`] persistence is
/// built from.
///
/// Implementations must make each operation atomic on its own (all-or-
/// nothing per call) **except** `write`, which is explicitly allowed to
/// fail partway leaving a prefix of the bytes behind — that is the crash
/// window the durability protocol defends against, and what
/// [`FaultIo`] injects. `rename` must replace the destination atomically
/// when it exists, matching POSIX `rename(2)`.
pub trait StoreIo {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `bytes` to `path`, creating or truncating it. May leave a
    /// partial prefix behind on failure.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Forces the contents of `path` to stable storage (fsync).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Forces the directory containing `path` to stable storage, so
    /// completed renames survive a crash.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The sibling path holding a not-yet-committed generation during a save
/// (`<path>.tmp`).
pub fn pending_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

/// The sibling path holding the previous committed generation after a
/// successful save (`<path>.bak`).
pub fn backup_path(path: &Path) -> PathBuf {
    sibling(path, ".bak")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = OsString::from(path.as_os_str());
    name.push(suffix);
    PathBuf::from(name)
}

/// Production [`StoreIo`] over the real filesystem (`std::fs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskIo;

impl StoreIo for DiskIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let Some(dir) = dir else { return Ok(()) };
        match fs::File::open(dir) {
            // Some platforms cannot open directories for syncing; the
            // rename itself is still atomic there, so degrade silently.
            Ok(f) => f.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// In-memory [`StoreIo`]: a thread-safe map from path to file contents.
///
/// Clones share the same underlying map, so a test can keep a handle to
/// inspect the "disk" after a [`FaultIo`] wrapper has simulated a crash.
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<BTreeMap<PathBuf, Vec<u8>>>>,
}

impl MemIo {
    /// A fresh, empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current contents of `path`, if present.
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(path).cloned()
    }

    /// Plants a file directly (bypassing the durability protocol) — for
    /// staging pre-corrupted fixtures.
    pub fn plant(&self, path: &Path, bytes: Vec<u8>) {
        self.files.lock().unwrap().insert(path.to_path_buf(), bytes);
    }

    /// Every path currently present, in sorted order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.files.lock().unwrap().keys().cloned().collect()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl StoreIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.contents(path).ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.plant(path, bytes.to_vec());
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.exists(path) {
            Ok(())
        } else {
            Err(not_found(path))
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let bytes = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn sync_parent_dir(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }
}

/// What a [`FaultIo`] failure simulates once its budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device is full: writes keep failing (after an initial short
    /// write), but reads, renames and syncs still succeed — the process
    /// is alive and can observe the damage.
    Enospc,
    /// The process/machine died: every subsequent operation fails. The
    /// test then inspects the underlying filesystem through a fresh
    /// handle, exactly like a restart would.
    Crash,
}

/// When a [`FaultIo`] trips relative to the operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cumulative bytes allowed to reach the inner `write` before the
    /// fault fires mid-write (the tail of the offending write is dropped
    /// — a short write). `None` = unlimited.
    pub byte_budget: Option<u64>,
    /// Number of mutating operations (`write`, `sync_file`, `rename`,
    /// `sync_parent_dir`, `remove`) allowed to complete before the fault
    /// fires. `None` = unlimited.
    pub op_budget: Option<u64>,
    /// Failure semantics once a budget is exhausted.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Crash once `budget` bytes have been written (byte `budget` of the
    /// cumulative write stream is the first to be lost).
    pub fn crash_after_bytes(budget: u64) -> Self {
        Self {
            byte_budget: Some(budget),
            op_budget: None,
            kind: FaultKind::Crash,
        }
    }

    /// Crash once `budget` mutating operations have completed.
    pub fn crash_after_ops(budget: u64) -> Self {
        Self {
            byte_budget: None,
            op_budget: Some(budget),
            kind: FaultKind::Crash,
        }
    }

    /// Run out of disk space after `budget` written bytes.
    pub fn enospc_after_bytes(budget: u64) -> Self {
        Self {
            byte_budget: Some(budget),
            op_budget: None,
            kind: FaultKind::Enospc,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    remaining_bytes: Option<u64>,
    remaining_ops: Option<u64>,
    kind: FaultKind,
    tripped: bool,
}

/// A [`StoreIo`] wrapper that injects deterministic faults: short writes,
/// ENOSPC, and simulated crash-after-byte-*k* or crash-after-op-*n*.
///
/// The wrapper forwards to `inner` until a [`FaultPlan`] budget runs out,
/// then *trips*: the offending write is truncated to the remaining byte
/// budget (a short write really reaches `inner`), the call fails, and
/// subsequent calls fail according to [`FaultKind`]. Tests keep a clone
/// of the inner [`MemIo`] to play the part of the filesystem that
/// survived the crash.
#[derive(Debug)]
pub struct FaultIo<I> {
    inner: I,
    state: Mutex<FaultState>,
}

impl<I: StoreIo> FaultIo<I> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState {
                remaining_bytes: plan.byte_budget,
                remaining_ops: plan.op_budget,
                kind: plan.kind,
                tripped: false,
            }),
        }
    }

    /// Whether the fault has fired yet.
    pub fn tripped(&self) -> bool {
        self.state.lock().unwrap().tripped
    }

    /// A reference to the wrapped I/O (e.g. to inspect a [`MemIo`]).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn fault_error(kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Enospc => io::Error::other("injected fault: no space left on device"),
            FaultKind::Crash => io::Error::other("injected fault: simulated crash"),
        }
    }

    /// Gate for non-write mutating ops: consumes one op from the budget,
    /// or fails if already tripped / out of budget.
    fn mutate_gate(&self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.tripped {
            return match s.kind {
                FaultKind::Crash => Err(Self::fault_error(FaultKind::Crash)),
                FaultKind::Enospc => Ok(()), // renames/syncs need no space
            };
        }
        if let Some(ops) = &mut s.remaining_ops {
            if *ops == 0 {
                s.tripped = true;
                return Err(Self::fault_error(s.kind));
            }
            *ops -= 1;
        }
        Ok(())
    }
}

impl<I: StoreIo> StoreIo for FaultIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock().unwrap();
        if s.tripped && s.kind == FaultKind::Crash {
            return Err(Self::fault_error(FaultKind::Crash));
        }
        drop(s);
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.tripped {
            return Err(Self::fault_error(s.kind));
        }
        if let Some(ops) = &mut s.remaining_ops {
            if *ops == 0 {
                s.tripped = true;
                return Err(Self::fault_error(s.kind));
            }
            *ops -= 1;
        }
        if let Some(budget) = &mut s.remaining_bytes {
            let len = bytes.len() as u64;
            if len > *budget {
                let keep = usize::try_from(*budget).unwrap_or(usize::MAX);
                *budget = 0;
                s.tripped = true;
                let kind = s.kind;
                drop(s);
                // The prefix really lands: that is the short write.
                let _ = self.inner.write(path, &bytes[..keep]);
                return Err(Self::fault_error(kind));
            }
            *budget -= len;
        }
        drop(s);
        self.inner.write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.mutate_gate()?;
        self.inner.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.mutate_gate()?;
        self.inner.rename(from, to)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.mutate_gate()?;
        self.inner.sync_parent_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock().unwrap();
        if s.tripped && s.kind == FaultKind::Crash {
            return false;
        }
        drop(s);
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.mutate_gate()?;
        self.inner.remove(path)
    }
}

/// Where [`crate::ClusterStore::load_or_recover`] found a checksum-valid
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The primary file itself was valid — no recovery needed.
    Primary,
    /// The primary was damaged or missing; the synced-but-uncommitted
    /// `.tmp` generation (newer than the primary) was valid.
    Pending,
    /// The primary was damaged or missing; the previous `.bak`
    /// generation was valid.
    Backup,
}

/// Typed report of what [`crate::ClusterStore::load_or_recover`]
/// actually loaded.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Which generation the returned store came from.
    pub source: RecoverySource,
    /// The concrete file that was loaded.
    pub loaded_from: PathBuf,
    /// Why the primary file was rejected, when `source` is not
    /// [`RecoverySource::Primary`].
    pub primary_error: Option<Box<crate::StoreError>>,
}

impl RecoveryReport {
    /// Whether a fallback generation (not the primary) was used.
    pub fn recovered(&self) -> bool {
        self.source != RecoverySource::Primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_paths_append_suffixes() {
        let p = Path::new("/data/store.shpk");
        assert_eq!(pending_path(p), PathBuf::from("/data/store.shpk.tmp"));
        assert_eq!(backup_path(p), PathBuf::from("/data/store.shpk.bak"));
    }

    #[test]
    fn mem_io_round_trips_and_renames() {
        let io = MemIo::new();
        let a = Path::new("a");
        let b = Path::new("b");
        io.write(a, b"hello").unwrap();
        assert_eq!(io.read(a).unwrap(), b"hello");
        io.rename(a, b).unwrap();
        assert!(!io.exists(a));
        assert_eq!(io.read(b).unwrap(), b"hello");
        assert!(io.read(a).is_err());
        io.remove(b).unwrap();
        assert!(io.paths().is_empty());
    }

    #[test]
    fn byte_budget_produces_a_short_write_then_trips() {
        let mem = MemIo::new();
        let io = FaultIo::new(mem.clone(), FaultPlan::crash_after_bytes(3));
        let p = Path::new("f");
        assert!(io.write(p, b"abcdef").is_err());
        assert!(io.tripped());
        // The first 3 bytes really landed — a short write.
        assert_eq!(mem.contents(p).unwrap(), b"abc");
        // After a crash everything fails.
        assert!(io.read(p).is_err());
        assert!(io.rename(p, Path::new("g")).is_err());
    }

    #[test]
    fn enospc_keeps_reads_and_renames_working() {
        let mem = MemIo::new();
        let io = FaultIo::new(mem.clone(), FaultPlan::enospc_after_bytes(0));
        let p = Path::new("f");
        mem.write(p, b"old").unwrap();
        assert!(io.write(p, b"new").is_err());
        assert!(io.tripped());
        assert_eq!(io.read(p).unwrap(), b""); // short write truncated it
        io.rename(p, Path::new("g")).unwrap();
        assert!(io.write(Path::new("h"), b"x").is_err());
    }

    #[test]
    fn op_budget_fails_the_nth_mutating_op() {
        let mem = MemIo::new();
        let io = FaultIo::new(mem.clone(), FaultPlan::crash_after_ops(2));
        let p = Path::new("f");
        io.write(p, b"x").unwrap(); // op 0
        io.sync_file(p).unwrap(); // op 1
        assert!(io.rename(p, Path::new("g")).is_err()); // op 2: fails
        assert!(io.tripped());
        assert!(mem.exists(p), "failed rename must not have happened");
    }
}
