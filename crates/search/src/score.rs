//! PSM scoring: shared peak count and hyperscore.

use spechd_ms::fragment::{fragment_ions, IonSeries};
use spechd_ms::{Peak, Peptide};

/// Tally of matched fragment ions for one peptide-spectrum pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchedIons {
    /// Matched b ions.
    pub b_count: usize,
    /// Matched y ions.
    pub y_count: usize,
    /// Summed experimental intensity of matched b ions.
    pub b_intensity: f64,
    /// Summed experimental intensity of matched y ions.
    pub y_intensity: f64,
}

impl MatchedIons {
    /// Total matched ions.
    pub fn total(&self) -> usize {
        self.b_count + self.y_count
    }
}

/// Matches the theoretical b/y ladder of `peptide` against the sorted
/// experimental `peaks` (each theoretical ion claims the most intense
/// experimental peak within `± frag_tol_da`).
pub fn match_ions(peptide: &Peptide, peaks: &[Peak], frag_tol_da: f64) -> MatchedIons {
    let mut matched = MatchedIons::default();
    let max_frag_charge = 1;
    for ion in fragment_ions(peptide, max_frag_charge) {
        // Binary search for the window, then take the strongest peak.
        let lo = peaks.partition_point(|p| p.mz < ion.mz - frag_tol_da);
        let hi = peaks.partition_point(|p| p.mz <= ion.mz + frag_tol_da);
        if lo >= hi {
            continue;
        }
        let best = peaks[lo..hi]
            .iter()
            .map(|p| f64::from(p.intensity))
            .fold(0.0, f64::max);
        match ion.series {
            IonSeries::B => {
                matched.b_count += 1;
                matched.b_intensity += best;
            }
            IonSeries::Y => {
                matched.y_count += 1;
                matched.y_intensity += best;
            }
        }
    }
    matched
}

/// Number of spectrum peaks within `± frag_tol_da` of any theoretical
/// fragment of `peptide` — the simplest similarity used by legacy engines.
pub fn shared_peak_count(peptide: &Peptide, peaks: &[Peak], frag_tol_da: f64) -> usize {
    let ions = fragment_ions(peptide, 1);
    peaks
        .iter()
        .filter(|p| {
            let lo = ions.partition_point(|i| i.mz < p.mz - frag_tol_da);
            lo < ions.len() && (ions[lo].mz - p.mz).abs() <= frag_tol_da
        })
        .count()
}

/// X!Tandem-style hyperscore:
/// `ln(b_count!) + ln(y_count!) + ln(1 + Σ I_b) + ln(1 + Σ I_y)`.
///
/// Factorials of matched-ion counts reward consistent ladder coverage far
/// more than isolated matches, which is what separates true hits from
/// decoys.
pub fn hyperscore(matched: &MatchedIons) -> f64 {
    ln_factorial(matched.b_count)
        + ln_factorial(matched.y_count)
        + (1.0 + matched.b_intensity).ln()
        + (1.0 + matched.y_intensity).ln()
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|k| (k as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::fragment::theoretical_spectrum;

    fn peptide() -> Peptide {
        Peptide::new("SAMPLEK").unwrap()
    }

    #[test]
    fn perfect_spectrum_matches_all_ions() {
        let p = peptide();
        let mut peaks = theoretical_spectrum(&p, 1);
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        let m = match_ions(&p, &peaks, 0.02);
        assert_eq!(m.total(), 12, "6 b + 6 y ions for a 7-mer");
        assert_eq!(m.b_count, 6);
        assert_eq!(m.y_count, 6);
        assert!(m.b_intensity > 0.0 && m.y_intensity > 0.0);
    }

    #[test]
    fn wrong_peptide_matches_fewer() {
        let p = peptide();
        let other = Peptide::new("WWDNGHQR").unwrap();
        let mut peaks = theoretical_spectrum(&p, 1);
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        let right = match_ions(&p, &peaks, 0.02);
        let wrong = match_ions(&other, &peaks, 0.02);
        assert!(right.total() > wrong.total());
    }

    #[test]
    fn hyperscore_orders_right_above_wrong() {
        let p = peptide();
        let other = Peptide::new("WWDNGHQR").unwrap();
        let mut peaks = theoretical_spectrum(&p, 1);
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        let right = hyperscore(&match_ions(&p, &peaks, 0.02));
        let wrong = hyperscore(&match_ions(&other, &peaks, 0.02));
        assert!(right > wrong, "{right} vs {wrong}");
    }

    #[test]
    fn tolerance_controls_matching() {
        let p = peptide();
        let mut peaks = theoretical_spectrum(&p, 1);
        // Shift every peak by +0.05 Da.
        for peak in &mut peaks {
            *peak = Peak::new(peak.mz + 0.05, peak.intensity);
        }
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        assert_eq!(match_ions(&p, &peaks, 0.02).total(), 0);
        assert_eq!(match_ions(&p, &peaks, 0.1).total(), 12);
    }

    #[test]
    fn shared_peak_count_basics() {
        let p = peptide();
        let mut peaks = theoretical_spectrum(&p, 1);
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        assert_eq!(shared_peak_count(&p, &peaks, 0.02), 12);
        let empty: Vec<Peak> = Vec::new();
        assert_eq!(shared_peak_count(&p, &empty, 0.02), 0);
    }

    #[test]
    fn ln_factorial_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn hyperscore_monotone_in_matches() {
        let a = MatchedIons {
            b_count: 2,
            y_count: 2,
            b_intensity: 10.0,
            y_intensity: 10.0,
        };
        let b = MatchedIons {
            b_count: 4,
            y_count: 4,
            b_intensity: 10.0,
            y_intensity: 10.0,
        };
        assert!(hyperscore(&b) > hyperscore(&a));
    }
}
