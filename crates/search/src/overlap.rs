//! Peptide-set overlap (the Venn diagram of Fig. 11).

use std::collections::BTreeSet;

/// Region counts of a three-way Venn diagram over peptide sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Venn3 {
    /// Unique to set A.
    pub only_a: usize,
    /// Unique to set B.
    pub only_b: usize,
    /// Unique to set C.
    pub only_c: usize,
    /// In A and B only.
    pub ab: usize,
    /// In A and C only.
    pub ac: usize,
    /// In B and C only.
    pub bc: usize,
    /// In all three.
    pub abc: usize,
}

impl Venn3 {
    /// Total size of set A.
    pub fn total_a(&self) -> usize {
        self.only_a + self.ab + self.ac + self.abc
    }

    /// Total size of set B.
    pub fn total_b(&self) -> usize {
        self.only_b + self.ab + self.bc + self.abc
    }

    /// Total size of set C.
    pub fn total_c(&self) -> usize {
        self.only_c + self.ac + self.bc + self.abc
    }

    /// Size of the union.
    pub fn union(&self) -> usize {
        self.only_a + self.only_b + self.only_c + self.ab + self.ac + self.bc + self.abc
    }

    /// Relative difference of A versus B in percent:
    /// `(|A| − |B|) / |B| × 100` — the form of the Fig. 11 claims
    /// ("Spec-HD closely trails GLEAMS by a mere 1.38%").
    pub fn a_vs_b_percent(&self) -> f64 {
        let b = self.total_b();
        if b == 0 {
            return 0.0;
        }
        (self.total_a() as f64 - b as f64) / b as f64 * 100.0
    }
}

/// Computes the three-way Venn region counts of peptide string sets.
///
/// # Examples
///
/// ```
/// use spechd_search::overlap::venn3;
/// let a = ["P1", "P2", "P3"];
/// let b = ["P2", "P3", "P4"];
/// let c = ["P3", "P5"];
/// let v = venn3(
///     a.iter().copied(),
///     b.iter().copied(),
///     c.iter().copied(),
/// );
/// assert_eq!(v.abc, 1);     // P3
/// assert_eq!(v.ab, 1);      // P2
/// assert_eq!(v.only_c, 1);  // P5
/// assert_eq!(v.union(), 5);
/// ```
pub fn venn3<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
    c: impl IntoIterator<Item = &'a str>,
) -> Venn3 {
    let sa: BTreeSet<&str> = a.into_iter().collect();
    let sb: BTreeSet<&str> = b.into_iter().collect();
    let sc: BTreeSet<&str> = c.into_iter().collect();
    let mut v = Venn3::default();
    let all: BTreeSet<&str> = sa
        .union(&sb)
        .cloned()
        .collect::<BTreeSet<_>>()
        .union(&sc)
        .cloned()
        .collect();
    for item in all {
        match (sa.contains(item), sb.contains(item), sc.contains(item)) {
            (true, false, false) => v.only_a += 1,
            (false, true, false) => v.only_b += 1,
            (false, false, true) => v.only_c += 1,
            (true, true, false) => v.ab += 1,
            (true, false, true) => v.ac += 1,
            (false, true, true) => v.bc += 1,
            (true, true, true) => v.abc += 1,
            (false, false, false) => unreachable!("item came from the union"),
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_sets() {
        let v = venn3(["A"], ["B"], ["C"]);
        assert_eq!(v.only_a, 1);
        assert_eq!(v.only_b, 1);
        assert_eq!(v.only_c, 1);
        assert_eq!(v.abc, 0);
        assert_eq!(v.union(), 3);
    }

    #[test]
    fn identical_sets() {
        let items = ["X", "Y", "Z"];
        let v = venn3(items, items, items);
        assert_eq!(v.abc, 3);
        assert_eq!(v.union(), 3);
        assert_eq!(v.total_a(), 3);
        assert_eq!(v.a_vs_b_percent(), 0.0);
    }

    #[test]
    fn totals_consistent() {
        let a = ["1", "2", "3", "4"];
        let b = ["3", "4", "5"];
        let c = ["4", "5", "6", "7"];
        let v = venn3(a, b, c);
        assert_eq!(v.total_a(), 4);
        assert_eq!(v.total_b(), 3);
        assert_eq!(v.total_c(), 4);
        assert_eq!(v.union(), 7);
    }

    #[test]
    fn percent_difference() {
        let a = ["1", "2", "3"];
        let b = ["1", "2", "3", "4"];
        let v = venn3(a, b, std::iter::empty());
        assert!(
            (v.a_vs_b_percent() + 25.0).abs() < 1e-12,
            "A trails B by 25%"
        );
    }

    #[test]
    fn duplicates_collapse() {
        let v = venn3(["P", "P", "P"], ["P"], std::iter::empty());
        assert_eq!(v.ab, 1);
        assert_eq!(v.union(), 1);
    }

    #[test]
    fn empty_everything() {
        let v = venn3(std::iter::empty(), std::iter::empty(), std::iter::empty());
        assert_eq!(v.union(), 0);
        assert_eq!(v.a_vs_b_percent(), 0.0);
    }
}
